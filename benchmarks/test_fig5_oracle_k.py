"""Figure 5: oracle accuracy as a function of k.

Paper: at k=1 the oracle reaches only 65-85% (and can say nothing if
that one link fails); at k=3 the AP/AL oracles show ~97% of bytes are
theoretically predictable; unrestricted, 100%.  k=3 is therefore the
paper's headline operating point.
"""

from repro.experiments import figures

from repro.experiments.benchlib import print_block

KS = (1, 2, 3, 5, 10, 25, 100, 100000)


def test_fig5_oracle_accuracy_vs_k(paper_result, benchmark):
    curves = benchmark.pedantic(
        figures.fig5_oracle_accuracy_vs_k,
        args=(paper_result.overall_actuals,),
        kwargs={"ks": KS},
        rounds=1, iterations=1)
    header = "k:        " + "".join(f"{k:>8}" for k in KS)
    lines = [header]
    for name, points in curves.items():
        lines.append(name.ljust(10)
                     + "".join(f"{acc * 100:7.2f}%" for _k, acc in points))
    print_block("== Figure 5 — oracle accuracy vs k ==\n" + "\n".join(lines))

    for name, points in curves.items():
        accs = dict(points)
        assert accs[KS[-1]] > 0.9999           # unrestricted: perfect
        assert accs[1] < 0.93                  # top-1 misses real traffic
    ap = dict(curves["Oracle_AP"])
    al = dict(curves["Oracle_AL"])
    # ~97% of bytes predictable at k=3 for the fine-grained oracles
    assert ap[3] > 0.95
    assert al[3] > 0.93
    # A-grain oracle is visibly worse at small k
    a = dict(curves["Oracle_A"])
    assert a[1] < ap[1]
