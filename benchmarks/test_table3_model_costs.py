"""Tables 3 and 11: empirical model costs.

The paper's cost model: historical training is O(n) single-pass,
prediction O(1) lookup, model size O(unique tuples); Naive Bayes
prediction is O(l log l) over all links and its model can exceed the
historical model's size.  This benchmark measures all of it on the
full-size training set and checks the orderings.
"""

import time

from repro.core import (
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    HistoricalModel,
    NaiveBayesModel,
)
from repro.experiments import tables

from repro.experiments.benchlib import print_block


def _train(model, counts):
    start = time.perf_counter()
    counts.fit([model])
    return time.perf_counter() - start


def _predict_micros(model, contexts, k=3):
    start = time.perf_counter()
    for context in contexts:
        model.predict(context, k)
    return (time.perf_counter() - start) / len(contexts) * 1e6


def test_table3_and_11_model_costs(paper_train_counts, benchmark):
    counts = paper_train_counts
    contexts = [context for (context, _link) in
                list(counts.counts)[:2000]]

    hist_models = {
        "Hist_A": HistoricalModel(FEATURES_A),
        "Hist_AP": HistoricalModel(FEATURES_AP),
        "Hist_AL": HistoricalModel(FEATURES_AL),
    }
    nb_models = {
        "NB_A": NaiveBayesModel(FEATURES_A),
        "NB_AL": NaiveBayesModel(FEATURES_AL),
    }
    rows = []
    for name, model in {**hist_models, **nb_models}.items():
        train_s = _train(model, counts)
        predict_us = _predict_micros(model, contexts)
        rows.append(tables.CostRow(name, train_s, predict_us, model.size()))
    print_block(tables.format_block(
        "Tables 3/11 — measured model costs", rows, tables.COST_HEADER))

    by_name = {r.model: r for r in rows}
    # Table 1 ordering of model sizes: |A| <= |AL| <= |AP|
    assert (by_name["Hist_A"].size_entries
            <= by_name["Hist_AL"].size_entries
            <= by_name["Hist_AP"].size_entries)
    # historical prediction is a lookup: strictly cheaper than NB's
    # all-links scoring (paper: O(1) vs O(l log l))
    assert (by_name["Hist_AL"].predict_micros
            < by_name["NB_AL"].predict_micros)

    # benchmark the O(1) lookup itself
    hist_ap = hist_models["Hist_AP"]
    sample = contexts[0]
    benchmark(hist_ap.predict, sample, 3)
