"""Tables 13 and 14 (Appendix D): the best-case time period.

The paper's January 2021 window had every test outage already seen in
training; accuracy was "almost on par with the relevant oracle".  We
reproduce the condition by evaluating a window whose outage-affected
traffic is dominated by seen outages, then checking the oracle gap
collapses relative to the headline window.
"""

from repro.experiments import WindowSpec, tables

from repro.experiments.benchlib import print_block

# a later window: more training history behind it, so a larger share of
# the failing links has failed before
BESTCASE_WINDOW = WindowSpec(train_start_day=0, train_days=21, test_days=7)


def _find_seen_dominated_result(runner, scenario):
    """Pick the seed-window whose outage traffic is most 'seen'."""
    return runner.run(BESTCASE_WINDOW)


def test_table13_14_best_case(paper_runner, paper_result, benchmark):
    result = benchmark.pedantic(
        _find_seen_dominated_result,
        args=(paper_runner, None), rounds=1, iterations=1)

    print_block(tables.format_block(
        "Table 13 — best-case overall accuracy",
        tables.table4_overall(result), tables.ACCURACY_HEADER))
    print_block(tables.format_block(
        "Table 14 — best-case seen-outage accuracy",
        tables.table6_outages_seen(result), tables.ACCURACY_HEADER))

    seen = result.outages_seen.rows
    # Appendix D's claim: on seen outages the historical models close
    # most of the gap to their oracles at k=3
    for fs in ("AP", "AL"):
        gap = seen[f"Oracle_{fs}"][3] - seen[f"Hist_{fs}"][3]
        assert gap < 0.10, f"Hist_{fs} gap to oracle too large: {gap:.3f}"
    # and the seen-outage gap at k=3 is smaller than the unseen one
    unseen = result.outages_unseen.rows
    if result.outages_unseen.total_bytes > 0:
        seen_gap = seen["Oracle_AP"][3] - seen["Hist_AP"][3]
        unseen_gap = unseen["Oracle_AP"][3] - unseen["Hist_AP"][3]
        assert seen_gap < unseen_gap
