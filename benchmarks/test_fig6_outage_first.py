"""Figure 6: earliest time in a calendar year each peering link was down.

Paper: the rate of first-time outages grows almost linearly over the
year and covers ~80% of active peering links by year end.
"""

from repro.experiments import figures

from repro.experiments.benchlib import print_block


def test_fig6_first_outage_curve(paper_scenario, benchmark):
    points = benchmark.pedantic(
        figures.fig6_first_outage_curve,
        args=(paper_scenario.wan.link_ids,),
        kwargs={"horizon_days": 365, "seed": 1},
        rounds=1, iterations=1)
    samples = {d: f for d, f in points}
    lines = ["day    fraction-of-links-with-an-outage   (paper: ~0.8 at 365)"]
    for day in (30, 90, 180, 270, 365):
        lines.append(f"{day:4d}        {samples[day]:.2f}")
    print_block("== Figure 6 — earliest outage per link ==\n"
                + "\n".join(lines))

    assert 0.6 < samples[365] < 0.95
    # near-linear growth: the middle of the year is near half the total
    assert abs(samples[180] - samples[365] / 2) < samples[365] * 0.35
    # monotone
    fracs = [f for _d, f in points]
    assert fracs == sorted(fracs)
