"""Table 5: accuracy for traffic affected by any peering link outage.

Paper values (top3): Oracle_AL 97.33, Hist_AL 70.65, Hist_AL+G 76.42
(best), Hist_AP 64.08, Hist_A 67.45.  Key shape: outage traffic is much
harder than normal traffic, and geographic completion (AL+G) is the best
model overall under outages.
"""

from repro.experiments import paper, tables

from repro.experiments.benchlib import print_block


def test_table5_outages_all(paper_result, benchmark):
    rows = benchmark(tables.table5_outages_all, paper_result)
    print_block(tables.format_block(
        "Table 5 — accuracy on all outage-affected traffic", rows,
        tables.ACCURACY_HEADER))
    print_block(paper.format_comparison(
        paper_result.outages_all.rows, paper.PAPER_TABLE5, "Table 5"))
    stats = paper_result.stats
    print_block(
        f"outage bytes: {stats['outage_bytes']:.3g} "
        f"({stats['outage_bytes'] / stats['total_bytes']:.3%} of test "
        f"traffic); unseen fraction {stats['unseen_fraction']:.0%} "
        "(paper: ~57%)")

    got = paper_result.outages_all.rows
    overall = paper_result.overall.rows
    # outage traffic is harder than normal traffic for every Hist model
    for model in ("Hist_A", "Hist_AP", "Hist_AL"):
        assert got[model][1] < overall[model][1]
    # AL+G is the best non-oracle model at top-1 and top-3 (paper's bold)
    non_oracle = {m: ks for m, ks in got.items()
                  if not m.startswith("Oracle")}
    assert got["Hist_AL+G"][3] == max(ks[3] for ks in non_oracle.values())
    # geographic completion beats plain AL under outages
    assert got["Hist_AL+G"][3] > got["Hist_AL"][3]
