"""Table 9 (Appendix A): overall accuracy including Naive Bayes.

Paper values (top3): NB_A 87.48 < Hist_A 89.98; NB_AL 93.29 <
Hist_AL 94.39; Hist_AL/NB_AL 95.47 slightly above Hist_AL.  Key shape:
Naive Bayes is consistently inferior to the matching historical model,
and appending it to an ensemble adds only a little.
"""

from repro.experiments import paper, tables

from repro.experiments.benchlib import print_block


def test_table9_nb_overall(paper_result_nb, benchmark):
    rows = benchmark(tables.table9_nb_overall, paper_result_nb)
    print_block(tables.format_block(
        "Table 9 — overall accuracy with Naive Bayes", rows,
        tables.ACCURACY_HEADER))
    print_block(paper.format_comparison(
        paper_result_nb.overall.rows, paper.PAPER_TABLE9, "Table 9"))

    got = paper_result_nb.overall.rows
    assert "NB_A" in got and "NB_AL" in got
    # NB is inferior to the matching historical model (the paper's
    # reason to relegate it to the appendix)
    for k in (1, 2, 3):
        assert got["NB_A"][k] <= got["Hist_A"][k] + 0.02
        assert got["NB_AL"][k] <= got["Hist_AL"][k] + 0.02
    # the Hist/NB ensemble is at least as good as plain Hist_AL
    assert got["Hist_AL/NB_AL"][3] >= got["Hist_AL"][3] - 1e-9
