"""Figure 2: CDF of ingress bytes by source-AS distance.

Paper: ~60% of bytes come from ASes that peer directly (1 hop), 98.2%
from ASes at most 3 hops away — the "flattening Internet".
"""

from repro.experiments import figures

from repro.experiments.benchlib import print_block


def test_fig2_bytes_by_distance(paper_scenario, benchmark):
    dist = benchmark.pedantic(
        figures.fig2_bytes_by_distance,
        args=(paper_scenario, 21 * 24, 22 * 24),
        rounds=1, iterations=1)
    cum = 0.0
    lines = ["distance  bytes%   cumulative%   (paper: 1 hop ~60%, <=3 ~98%)"]
    for d, frac in sorted(dist.items()):
        cum += frac
        lines.append(f"   {d}      {frac * 100:5.1f}     {cum * 100:5.1f}")
    print_block("== Figure 2 — bytes by source-AS distance ==\n"
                + "\n".join(lines))

    one_hop = dist.get(1, 0.0)
    within_three = sum(v for d, v in dist.items() if d <= 3)
    assert 0.40 < one_hop < 0.80
    assert within_three > 0.93
