"""§6's East Asia incident (06 September 2021), replayed end to end.

Paper account: a hot East Asia link; CMS withdrew two /24 prefixes;
TIPSY identified three shift targets across two transit providers — two
in the same metro, one in a different country — all with capacity;
traffic shifted as predicted; prefixes re-announced 2 hours later.
"""

from repro.experiments import build_east_asia_world, replay_east_asia

from repro.experiments.benchlib import print_block


def test_incident_east_asia(benchmark):
    world = build_east_asia_world(seed=0)
    report = benchmark.pedantic(replay_east_asia, args=(world,),
                                rounds=1, iterations=1)

    names = {world.hot: "hot(hkg,P)", world.alt_same_peer: "hkg,P",
             world.alt_other_peer: "hkg,Q",
             world.alt_other_country: "tpe,P"}
    shift = [names.get(l, str(l)) for l in report.actual_shift_links]
    print_block(
        "== §6 East Asia incident ==\n"
        f"withdrawn /24s: {len(report.withdrawn_prefixes)} "
        f"(paper: 2)\n"
        f"traffic shifted to: {shift} "
        "(paper: 3 links, 2 transits, 2 same-metro + 1 other country)\n"
        f"peak alternate utilization: {report.max_alt_utilization:.0%} "
        "(paper: all had sufficient capacity)\n"
        f"re-announced after: {report.hours_until_reannounce} h "
        "(paper: 2 h)")

    assert len(report.withdrawn_prefixes) == 2
    assert set(report.actual_shift_links) == {
        world.alt_same_peer, world.alt_other_peer, world.alt_other_country}
    assert set(report.actual_shift_links) <= set(report.predicted_links)
    assert report.max_alt_utilization < 0.85
    assert report.hours_until_reannounce == 2
