"""Tables 12 and 15 (Appendices C and D): peering links at risk.

Algorithm 1 over the test week with the Hist_AL model, exactly as the
paper runs it: for every hour and every link, predict where the link's
flows would land under an outage; report links pushed over 70% in hours
where they otherwise would not be, sorted by extra over-threshold hours.
The paper highlights "operationally surprising" rows involving different
peers or distant routers.
"""

from repro.cms import RiskAnalyzer
from repro.experiments import tables

from repro.experiments.benchlib import PAPER_WINDOW, print_block


def _analyze(paper_scenario, paper_runner):
    train_lo, train_hi = PAPER_WINDOW.train_hours
    test_lo, test_hi = PAPER_WINDOW.test_hours
    counts = paper_runner.counts_from(
        paper_runner.collect_window(train_lo, train_hi))
    models = {m.name: m for m in paper_runner.build_models(counts)}
    analyzer = RiskAnalyzer(paper_scenario.wan, models["Hist_AL"],
                            threshold=0.70)

    def hours():
        for cols in paper_scenario.stream(test_lo, test_hi):
            yield cols.hour, paper_scenario.risk_entries_for(cols)

    return analyzer.analyze(hours(), min_extra_hours=2)


def test_table12_links_at_risk(paper_scenario, paper_runner, benchmark):
    findings = benchmark.pedantic(
        _analyze, args=(paper_scenario, paper_runner),
        rounds=1, iterations=1)
    rows = tables.risk_rows(findings, paper_scenario.wan, limit=12)
    print_block(tables.format_block(
        "Table 12/15 — links at risk under single outages", rows,
        tables.RISK_HEADER))

    assert findings, "risk analysis found no at-risk links"
    # sorted by predicted extra hours, like the paper's table
    extras = [f.predicted_extra_high_hours for f in findings]
    assert extras == sorted(extras, reverse=True)
    # at-risk links are normally fine: predicted extra hours dominate
    top = findings[0]
    assert top.predicted_extra_high_hours > top.typical_high_hours
    # at least one operationally-surprising (cross-peer) dependency
    surprising = [f for f in findings
                  if f.peer_asn != f.affecting_peer_asn]
    print_block(f"{len(surprising)} of {len(findings)} findings involve a "
                "different peer (operationally surprising)")
    assert surprising
