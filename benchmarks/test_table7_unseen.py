"""Table 7: accuracy for outages never experienced during training.

Paper values (top3): Hist_AL+G 64.56 (best), Hist_AP/AL/A 57.6,
Hist_AL 54.66, Hist_A 53.97, Hist_AP 42.75 — with oracles above 92,
i.e. the shift IS deterministic, pure history just cannot know it.

Key shape: AL+G dominates (hot-potato geography predicts where traffic
lands when history is silent), AP collapses relative to its seen-outage
performance, and the oracle gap is the largest of all tables.
"""

from repro.experiments import paper, tables

from repro.experiments.benchlib import print_block


def test_table7_outages_unseen(paper_result, benchmark):
    rows = benchmark(tables.table7_outages_unseen, paper_result)
    print_block(tables.format_block(
        "Table 7 — accuracy on unseen outages", rows,
        tables.ACCURACY_HEADER))
    print_block(paper.format_comparison(
        paper_result.outages_unseen.rows, paper.PAPER_TABLE7, "Table 7"))

    got = paper_result.outages_unseen.rows
    assert paper_result.outages_unseen.total_bytes > 0, \
        "test window produced no unseen outages"
    # AL+G is the best non-oracle model at every k (paper's bold column)
    non_oracle = {m: ks for m, ks in got.items()
                  if not m.startswith("Oracle")}
    for k in (1, 2, 3):
        assert got["Hist_AL+G"][k] == max(ks[k] for ks in non_oracle.values())
    # geography adds a real margin over plain AL here (paper: ~10 points
    # at top-3)
    assert got["Hist_AL+G"][3] - got["Hist_AL"][3] > 0.03
    # the oracle gap is much larger than in the overall table: the shift
    # is knowable, history alone just can't know it
    unseen_gap = got["Oracle_AP"][3] - got["Hist_AP"][3]
    overall = paper_result.overall.rows
    overall_gap = overall["Oracle_AP"][3] - overall["Hist_AP"][3]
    assert unseen_gap > overall_gap * 3
