"""§5.1.1 design rationale: IPFIX vs SNMP as the outage ground truth.

"While using IPFIX data to find outages may not seem intuitive, it is
the ground truth about the operating state of the network.  We found
that other sources, such as SNMP, were far less reliable."  This
benchmark runs both inference paths over the same test week and scores
them against the scheduled outages.
"""

from repro.pipeline import OutageInference
from repro.telemetry import (
    SnmpPoller,
    compare_inference,
    infer_outages_from_snmp,
)

from repro.experiments.benchlib import PAPER_WINDOW, print_block


def test_ipfix_vs_snmp_outage_inference(paper_scenario, paper_runner,
                                        benchmark):
    test_lo, test_hi = PAPER_WINDOW.test_hours
    scenario = paper_scenario
    truth = [o for o in scenario.outage_schedule
             if o.start_hour < test_hi and o.end_hour > test_lo]

    # IPFIX path: the paper's rule over sampled link bytes
    acc = paper_runner.collect_window(test_lo, test_hi)
    ipfix_inference = OutageInference(scenario.wan.link_ids,
                                      acc.link_matrix)
    ipfix_intervals = [
        type(o)(o.link_id, o.start_hour + test_lo, o.end_hour + test_lo)
        for o in ipfix_inference.intervals()
    ]
    # restrict scoring to links that actually carry traffic: a link with
    # no flows is invisible to the data plane by construction
    carrying = {
        scenario.wan.link_ids[i]
        for i in range(len(scenario.wan.link_ids))
        if acc.link_matrix[i].sum() > 0
    }
    truth_carrying = [o for o in truth if o.link_id in carrying]

    ipfix_quality = compare_inference(
        truth_carrying,
        [o for o in ipfix_intervals if o.link_id in carrying],
        test_lo, test_hi)

    # SNMP path: realistic poller unreliability
    def snmp_run():
        poller = SnmpPoller(sorted(carrying), truth_carrying, seed=3)
        readings = poller.poll_window(test_lo, test_hi)
        return infer_outages_from_snmp(readings)

    snmp_intervals = benchmark.pedantic(snmp_run, rounds=1, iterations=1)
    snmp_quality = compare_inference(truth_carrying, snmp_intervals,
                                     test_lo, test_hi)

    print_block(
        "== §5.1.1 — outage inference source comparison ==\n"
        f"IPFIX:  recall {ipfix_quality.recall:.3f}  "
        f"precision {ipfix_quality.precision:.3f}\n"
        f"SNMP:   recall {snmp_quality.recall:.3f}  "
        f"precision {snmp_quality.precision:.3f}\n"
        "(IPFIX false positives are sampling dropouts on thin links; "
        "SNMP misses come from stale agents and missed polls)")

    # the paper's claim: data-plane inference catches what SNMP misses
    assert ipfix_quality.recall >= snmp_quality.recall
    assert ipfix_quality.recall > 0.95
