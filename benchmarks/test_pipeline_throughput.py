"""Operational costs of the pipeline (paper §4.2-§4.3).

The paper's pipeline aggregates TBs/day on Spark; training is a single
pass.  Here we measure the laptop-scale equivalents: telemetry
streaming rate, hourly aggregation (with its compression accounting),
and one-pass training of the full suite over three weeks of data.
"""


from repro.core import (
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    HistoricalModel,
)
from repro.pipeline import HourlyAggregator
from repro.telemetry import MetadataStore

from repro.experiments.benchlib import print_block


def test_streaming_throughput(paper_scenario, benchmark):
    """Hours of telemetry generated per second (warm caches)."""
    # warm the simulator/expansion caches first
    for _ in paper_scenario.stream(0, 2):
        pass

    def stream_day():
        total = 0
        for cols in paper_scenario.stream(0, 24):
            total += len(cols.flow_rows)
        return total

    entries = benchmark(stream_day)
    print_block(f"streamed 24h of telemetry: {entries} (flow, link) "
                "entries per day")
    assert entries > 0


def test_aggregation_compression(paper_scenario, benchmark):
    """Record-level aggregation and its §4.2 compression accounting."""
    aggregator = HourlyAggregator(
        MetadataStore(paper_scenario.wan, paper_scenario.geoip))
    cols = next(iter(paper_scenario.stream(12, 13)))
    ipfix = paper_scenario.ipfix_records_for(cols)

    result = benchmark(aggregator.aggregate_hour, 12, ipfix)
    ratio = aggregator.stats.ratio
    print_block(f"aggregated {len(ipfix)} IPFIX records -> {len(result)} "
                f"chunks (ratio {ratio:.3f}; the paper's 2% applies to "
                "raw flow export, which the synthetic feed pre-merges)")
    assert 0.0 < ratio <= 1.0


def test_single_pass_training(paper_train_counts, benchmark):
    """Training the three historical models is one pass over counts."""
    def train_suite():
        models = [HistoricalModel(FEATURES_A), HistoricalModel(FEATURES_AP),
                  HistoricalModel(FEATURES_AL)]
        paper_train_counts.fit(models)
        return models

    models = benchmark.pedantic(train_suite, rounds=1, iterations=1)
    sizes = {m.name: m.size() for m in models}
    print_block(f"trained on {len(paper_train_counts)} (flow, link) "
                f"observations; model sizes: {sizes}")
    assert sizes["Hist_A"] <= sizes["Hist_AL"] <= sizes["Hist_AP"]
