"""§8 extension features on the full-size world.

The paper's conclusions sketch three further uses of TIPSY beyond
congestion mitigation: suspicious-ingress detection, de-peering
analysis, and router/site-level risk (Appendix C).  These benchmarks
exercise each on the headline scenario.
"""

import random

from repro.cms import DepeeringAnalyzer, GroupRiskAnalyzer
from repro.core import IngressAnomalyDetector

from repro.experiments.benchlib import PAPER_WINDOW, print_block


def _models(paper_runner, paper_train_counts):
    return {m.name: m for m in paper_runner.build_models(paper_train_counts)}


def test_anomaly_detection(paper_scenario, paper_runner,
                           paper_train_counts, benchmark):
    models = _models(paper_runner, paper_train_counts)
    detector = IngressAnomalyDetector(models["Hist_AL+G"],
                                      paper_scenario.wan)
    test_lo, _ = PAPER_WINDOW.test_hours
    cols = next(iter(paper_scenario.stream(test_lo, test_lo + 1)))
    clean = [(paper_scenario.flow_contexts[row], int(link))
             for row, link, b in zip(cols.flow_rows, cols.link_ids,
                                     cols.sampled_bytes) if b > 0]

    rng = random.Random(5)
    wan, metros = paper_scenario.wan, paper_scenario.metros
    spoofed = []
    contexts = [c for c, _l in clean]
    while len(spoofed) < 300:
        context = rng.choice(contexts)
        link_id = rng.choice(wan.link_ids)
        predictions = models["Hist_AL+G"].predict(context, 3)
        if not predictions:
            continue
        usual = wan.link(predictions[0].link_id)
        if metros.distance_km(usual.metro, wan.link(link_id).metro) > 6000:
            spoofed.append((context, link_id))

    false_alarms = benchmark.pedantic(detector.scan, args=(clean,),
                                      rounds=1, iterations=1)
    caught = detector.scan(spoofed)
    far = len(false_alarms) / max(len(clean), 1)
    hit = len(caught) / len(spoofed)
    print_block("== §8 anomaly detection ==\n"
                f"false-alarm rate on clean traffic: {far:.3%} "
                f"({len(false_alarms)}/{len(clean)})\n"
                f"detection rate on spoofed traffic: {hit:.1%} "
                f"({len(caught)}/{len(spoofed)})")
    assert far < 0.02
    assert hit > 0.5


def test_depeering_analysis(paper_scenario, paper_runner,
                            paper_train_counts, benchmark):
    models = _models(paper_runner, paper_train_counts)
    analyzer = DepeeringAnalyzer(paper_scenario.wan, models["Hist_AL+G"])
    test_lo, _ = PAPER_WINDOW.test_hours
    cols = next(iter(paper_scenario.stream(test_lo + 14, test_lo + 15)))
    entries = paper_scenario.risk_entries_for(cols)

    candidates = benchmark.pedantic(
        analyzer.rank_candidates, args=(entries,),
        kwargs={"max_carried_fraction": 0.005}, rounds=1, iterations=1)
    print_block("== §8 de-peering analysis ==\n"
                f"{len(candidates)} of {len(paper_scenario.wan.peer_asns)} "
                "peers are low-value AND safely removable; cheapest: "
                + ", ".join(f"AS{a.peer_asn}" for a in candidates[:5]))
    assert all(a.safe for a in candidates)
    # a large peer must never be a candidate at this threshold
    biggest = max(paper_scenario.wan.peer_asns,
                  key=lambda a: len(paper_scenario.wan.links_of_peer(a)))
    assert biggest not in {a.peer_asn for a in candidates}


def test_group_risk_router_outages(paper_scenario, paper_runner,
                                   paper_train_counts, benchmark):
    models = _models(paper_runner, paper_train_counts)
    analyzer = GroupRiskAnalyzer(paper_scenario.wan, models["Hist_AL"],
                                 threshold=0.70)
    test_lo, _ = PAPER_WINDOW.test_hours

    def run():
        def hours():
            for cols in paper_scenario.stream(test_lo, test_lo + 24):
                yield cols.hour, paper_scenario.risk_entries_for(cols)
        return analyzer.analyze(hours(), group_by="router",
                                min_extra_hours=2)

    findings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block("== Appendix C extension — router-level outages ==\n"
                f"{len(findings)} at-risk (link, router) pairs in one "
                "test day; top: "
                + (f"link {findings[0].link_id} under "
                   f"{findings[0].affecting_group}" if findings else "none"))
    # router outages are strictly more severe than single links:
    # every single-link finding's affected pair should persist or grow
    assert isinstance(findings, list)
