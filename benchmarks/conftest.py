"""Shared state for the benchmark harness.

The full-size scenario and its evaluation are built once per session;
individual benchmarks print their table/figure next to the paper's
numbers and time the operation the paper's Table 3 / Table 11 cost model
describes.  Expect the first benchmark to take a few minutes while the
session fixtures warm up.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    EvaluationRunner,
    Scenario,
    ScenarioParams,
    WindowSpec,
)

#: the paper's headline window: 3 weeks of training, 1 week of testing
PAPER_WINDOW = WindowSpec(train_start_day=0, train_days=21, test_days=7)


def print_block(text: str) -> None:
    """Benchmarks print their reproduced tables through this."""
    print("\n" + text)


@pytest.fixture(scope="session")
def paper_scenario() -> Scenario:
    """The full-size synthetic world used for the headline tables."""
    return Scenario(ScenarioParams(seed=1))


@pytest.fixture(scope="session")
def paper_runner(paper_scenario) -> EvaluationRunner:
    return EvaluationRunner(paper_scenario)


@pytest.fixture(scope="session")
def paper_result(paper_runner):
    """Tables 4-7 evaluation (3 weeks train / 1 week test)."""
    return paper_runner.run(PAPER_WINDOW)


@pytest.fixture(scope="session")
def paper_result_nb(paper_runner):
    """Appendix A evaluation including the Naive Bayes models."""
    return paper_runner.run(PAPER_WINDOW, include_naive_bayes=True)


@pytest.fixture(scope="session")
def medium_scenario() -> Scenario:
    """Mid-size world for the Appendix B sweeps (many re-runs)."""
    return Scenario(ScenarioParams.medium(seed=2))


@pytest.fixture(scope="session")
def paper_train_counts(paper_runner):
    lo, hi = PAPER_WINDOW.train_hours
    return paper_runner.counts_from(paper_runner.collect_window(lo, hi))
