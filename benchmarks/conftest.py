"""Shared state for the benchmark harness.

The full-size scenario and its evaluation are built once per session;
individual benchmarks print their table/figure next to the paper's
numbers and time the operation the paper's Table 3 / Table 11 cost model
describes.  Expect the first benchmark to take a few minutes while the
session fixtures warm up.

With ``--bench-record`` the session's pytest-benchmark timings are also
written as a ``BENCH_<date>.pytest.json`` throughput report (see
:mod:`repro.perf.regression`) and compared against the most recent
committed baseline of the same profile; add ``--bench-compare`` to fail
the run when a metric regresses past ``--bench-tolerance``.
"""

from __future__ import annotations

import datetime
import os
import sys

import pytest

# make the suite importable no matter where pytest was started from
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import (  # noqa: E402
    EvaluationRunner,
    Scenario,
    ScenarioParams,
)
from repro.experiments.benchlib import PAPER_WINDOW, print_block  # noqa: E402,F401
from repro.perf.regression import (  # noqa: E402
    BenchReport,
    compare_reports,
    default_meta,
    find_baseline,
    load_report,
    save_report,
)

BASELINE_DIR = os.path.join(_REPO_ROOT, "benchmarks", "baselines")


@pytest.fixture(scope="session")
def paper_scenario() -> Scenario:
    """The full-size synthetic world used for the headline tables."""
    return Scenario(ScenarioParams(seed=1))


@pytest.fixture(scope="session")
def paper_runner(paper_scenario) -> EvaluationRunner:
    return EvaluationRunner(paper_scenario)


@pytest.fixture(scope="session")
def paper_result(paper_runner):
    """Tables 4-7 evaluation (3 weeks train / 1 week test)."""
    return paper_runner.run(PAPER_WINDOW)


@pytest.fixture(scope="session")
def paper_result_nb(paper_runner):
    """Appendix A evaluation including the Naive Bayes models."""
    return paper_runner.run(PAPER_WINDOW, include_naive_bayes=True)


@pytest.fixture(scope="session")
def medium_scenario() -> Scenario:
    """Mid-size world for the Appendix B sweeps (many re-runs)."""
    return Scenario(ScenarioParams.medium(seed=2))


@pytest.fixture(scope="session")
def paper_train_counts(paper_runner):
    lo, hi = PAPER_WINDOW.train_hours
    return paper_runner.counts_from(paper_runner.collect_window(lo, hi))


# -- benchmark-regression recording -------------------------------------------

def pytest_addoption(parser):
    group = parser.getgroup("bench-regression")
    group.addoption("--bench-record", action="store_true",
                    help="write this session's benchmark throughputs to a "
                         "BENCH_<date>.pytest.json report")
    group.addoption("--bench-compare", action="store_true",
                    help="fail the session when a recorded metric regresses "
                         "past the tolerance vs the committed baseline")
    group.addoption("--bench-dir", default=BASELINE_DIR,
                    help="directory holding BENCH_*.json reports")
    group.addoption("--bench-tolerance", type=float, default=0.30,
                    help="fractional throughput drop that counts as a "
                         "regression (default 0.30)")


def _session_report(session) -> BenchReport:
    today = datetime.date.today().isoformat()
    report = BenchReport(date=today, profile="pytest", meta=default_meta())
    bench_session = getattr(session.config, "_benchmarksession", None)
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        # pytest-benchmark exposes Stats directly or via a wrapper,
        # depending on where in the session the metadata is read
        mean = getattr(stats, "mean", None)
        if mean is None:
            mean = stats.stats.mean
        if mean > 0.0:
            # throughput in operations/second: higher is better
            report.record(bench.fullname, 1.0 / mean)
    return report


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    config = session.config
    if not config.getoption("--bench-record"):
        return
    report = _session_report(session)
    if not report.metrics:
        return
    directory = config.getoption("--bench-dir")
    baseline_path = find_baseline(directory, profile="pytest",
                                  before=report.date)
    # load before saving: a same-date baseline shares our filename
    baseline = load_report(baseline_path) if baseline_path else None
    path = save_report(report, directory)
    lines = [f"wrote benchmark report {path}"]
    if baseline is not None:
        tolerance = config.getoption("--bench-tolerance")
        regressions = compare_reports(report, baseline, tolerance)
        lines.append(f"compared against {baseline_path}: "
                     f"{len(regressions)} regression(s) at "
                     f"{tolerance:.0%} tolerance")
        lines += [f"  REGRESSION {r}" for r in regressions]
        if regressions and config.getoption("--bench-compare"):
            session.exitstatus = 1
    else:
        lines.append("no committed pytest-profile baseline to compare against")
    print_block("\n".join(lines))
