"""Table 10 (Appendix A): outage accuracy including Naive Bayes.

Paper values (top3): NB_A 51.87 < Hist_A 66.53; NB_AL 65.07 <
Hist_AL 73.82; Hist_AL/NB_AL 74.74 >= Hist_AL.  Key shape: NB degrades
more than Hist under outages, but the Hist/NB ensemble recovers a bit
of transfer learning.
"""

from repro.experiments import paper, tables

from repro.experiments.benchlib import print_block


def test_table10_nb_outages(paper_result_nb, benchmark):
    rows = benchmark(tables.table10_nb_outages, paper_result_nb)
    print_block(tables.format_block(
        "Table 10 — outage accuracy with Naive Bayes", rows,
        tables.ACCURACY_HEADER))
    print_block(paper.format_comparison(
        paper_result_nb.outages_all.rows, paper.PAPER_TABLE10, "Table 10"))

    got = paper_result_nb.outages_all.rows
    assert paper_result_nb.outages_all.total_bytes > 0
    # NB stays below the matching Hist model under outages too
    assert got["NB_AL"][3] <= got["Hist_AL"][3] + 0.02
    # outages hurt NB as well: below its own overall accuracy
    overall = paper_result_nb.overall.rows
    assert got["NB_AL"][1] < overall["NB_AL"][1]
