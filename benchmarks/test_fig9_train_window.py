"""Figure 9 (Appendix B.1): accuracy vs training-window length.

Paper: top-3 accuracy of Hist_AL/AP/A rises quickly with more training
days and flattens by ~21 days, which is why the paper trains on 3 weeks.
"""

from repro.experiments import figures

from repro.experiments.benchlib import print_block

TRAIN_LENGTHS = (3, 7, 14, 21)
TEST_STARTS = (21, 24)


def test_fig9_training_window_sweep(medium_scenario, benchmark):
    points = benchmark.pedantic(
        figures.fig9_training_window_sweep,
        args=(medium_scenario,),
        kwargs={"train_lengths": TRAIN_LENGTHS, "test_starts": TEST_STARTS,
                "test_days": 3},
        rounds=1, iterations=1)
    lines = ["train-days   mean-top3   min     max"]
    for point in points:
        lines.append(f"   {point.train_days:3d}       {point.mean * 100:6.2f}"
                     f"   {point.min * 100:6.2f}  {point.max * 100:6.2f}")
    print_block("== Figure 9 — accuracy vs training window ==\n"
                + "\n".join(lines))

    by_length = {p.train_days: p for p in points}
    assert set(by_length) == set(TRAIN_LENGTHS)
    # more training helps: 21 days beats 3 days
    assert by_length[21].mean > by_length[3].mean
    # and the curve flattens: the 14->21 gain is smaller than 3->7
    gain_early = by_length[7].mean - by_length[3].mean
    gain_late = by_length[21].mean - by_length[14].mean
    assert gain_late < max(gain_early, 0.02) + 1e-9
