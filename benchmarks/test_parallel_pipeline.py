"""Throughput of the repro.perf layer (vectorised + parallel pipeline).

The paper's production pipeline keeps up with TBs/day by fanning
aggregation out over a Spark cluster (§4.3).  These benchmarks measure
the reproduction's equivalents at paper scale: the columnar aggregation
fast path against the per-record reference, and the process-pool hourly
pipeline against its serial twin.
"""

import os
import time

from repro.perf import ParallelPipelineRunner, default_workers
from repro.pipeline import HourlyAggregator

from repro.experiments.benchlib import print_block


def test_columnar_ingest_speedup(paper_scenario, benchmark):
    """One hour of IPFIX, stream->aggregate: columnar vs per-record."""
    cols = next(iter(paper_scenario.stream(12, 13)))
    agg = HourlyAggregator(paper_scenario.metadata,
                           encoders=paper_scenario.encoders)

    def ingest_columnar():
        arrays = paper_scenario.ipfix_columns_for(cols)
        return agg.aggregate_hour_columns(cols.hour, *arrays)

    ingest_columnar()  # warm the metadata join caches
    out = benchmark(ingest_columnar)

    # per-record reference path, timed once for the printed comparison
    t0 = time.perf_counter()
    records = paper_scenario.ipfix_records_for(cols)
    serial = agg.aggregate_hour(cols.hour, records)
    serial_s = time.perf_counter() - t0
    columnar_s = benchmark.stats.stats.min
    speedup = serial_s / columnar_s
    print_block(
        f"ingested {len(records)} IPFIX records -> {out.n_records} chunks; "
        f"columnar {columnar_s * 1e3:.1f}ms vs per-record "
        f"{serial_s * 1e3:.1f}ms ({speedup:.1f}x)")
    assert out.to_records() == serial  # fast path is bit-identical
    assert speedup >= 2.0


def test_parallel_pipeline_throughput(paper_scenario, benchmark):
    """A day of telemetry through the process-pool pipeline."""
    workers = default_workers()
    with ParallelPipelineRunner(scenario=paper_scenario,
                                n_workers=workers) as runner:
        # serial reference, timed once (same code path, in-process)
        t0 = time.perf_counter()
        sum(1 for _ in runner.iter_hour_columns(0, 24, parallel=False))
        serial_s = time.perf_counter() - t0
        # pay pool startup outside the measured region
        sum(1 for _ in runner.iter_hour_columns(0, 2))

        benchmark(lambda: sum(
            1 for _ in runner.iter_hour_columns(0, 24)))

    parallel_s = benchmark.stats.stats.min
    speedup = serial_s / parallel_s
    print_block(
        f"24h of telemetry: serial {serial_s:.2f}s, {workers}-process "
        f"{parallel_s:.2f}s ({speedup:.1f}x on {os.cpu_count()} CPUs)")
    if (os.cpu_count() or 1) >= 4:
        # the bit-identical fan-out must actually buy wall-clock time
        assert speedup >= 2.0
