"""Figure 10 (Appendix B.2): daily accuracy decay after training ends.

Paper: with a 3-week trained model, accuracy decays almost linearly day
by day — the justification for daily retraining and a 7-day test window.
"""

import numpy as np

from repro.experiments.benchlib import print_block

MODEL = "Hist_AL/AP/A"


def test_fig10_staleness_curve(medium_scenario, benchmark):
    from repro.experiments import EvaluationRunner

    runner = EvaluationRunner(medium_scenario)
    per_day = benchmark.pedantic(
        runner.run_staleness,
        kwargs={"train_start_day": 0, "train_days": 14,
                "max_offset_days": 14},
        rounds=1, iterations=1)
    lines = ["days-after-training   top1     top2     top3"]
    top3_series = []
    for offset in sorted(per_day):
        rows = per_day[offset][MODEL]
        top3_series.append(rows[3])
        lines.append(f"        {offset:3d}          "
                     f"{rows[1] * 100:6.2f}  {rows[2] * 100:6.2f}  "
                     f"{rows[3] * 100:6.2f}")
    print_block("== Figure 10 — model staleness ==\n" + "\n".join(lines))

    assert len(top3_series) >= 10
    # accuracy decays over time: a negative linear trend
    days = np.arange(len(top3_series))
    slope = np.polyfit(days, top3_series, 1)[0]
    assert slope < 0.0
    # fresh model beats the stale end of the window (averaged against
    # day-level noise)
    assert np.mean(top3_series[:3]) > np.mean(top3_series[-3:])
