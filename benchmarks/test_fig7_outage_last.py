"""Figure 7: days since each peering link's last outage.

Paper: looking back from the end of the period, roughly a third of
links experienced an outage within the previous 50 days, with a mostly
even spread further back.
"""

from repro.experiments import figures

from repro.experiments.benchlib import print_block


def test_fig7_last_outage_curve(paper_scenario, benchmark):
    points = benchmark.pedantic(
        figures.fig7_last_outage_curve,
        args=(paper_scenario.wan.link_ids,),
        kwargs={"horizon_days": 365, "seed": 1},
        rounds=1, iterations=1)
    samples = {d: f for d, f in points}
    lines = ["look-back days   fraction   (paper: ~1/3 within 50 days)"]
    for age in (10, 50, 100, 200, 364):
        lines.append(f"   {age:4d}          {samples[age]:.2f}")
    print_block("== Figure 7 — days since last outage ==\n"
                + "\n".join(lines))

    assert 0.15 < samples[50] < 0.6
    fracs = [f for _d, f in points]
    assert fracs == sorted(fracs)
    # the total equals Figure 6's year-end coverage (same links)
    assert abs(samples[364] - 0.8) < 0.25
