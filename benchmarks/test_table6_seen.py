"""Table 6: accuracy for outages that were also seen during training.

Paper values (top3): Hist_AP 92.52, Hist_AP/AL/A 94.57 (best),
Hist_AL 91.97, Hist_A 85.42.  Key shape: seen outages are the easy
outage case — past re-routing behaviour is still valid, so the specific
AP models lead (paper §5.3.2: "for seen outages, past behavior of how
flows were re-routed is still valid").
"""

from repro.experiments import paper, tables

from repro.experiments.benchlib import print_block


def test_table6_outages_seen(paper_result, benchmark):
    rows = benchmark(tables.table6_outages_seen, paper_result)
    print_block(tables.format_block(
        "Table 6 — accuracy on seen outages", rows,
        tables.ACCURACY_HEADER))
    print_block(paper.format_comparison(
        paper_result.outages_seen.rows, paper.PAPER_TABLE6, "Table 6"))

    got = paper_result.outages_seen.rows
    # the AP-led models lead on seen outages at k=2,3
    for k in (2, 3):
        assert got["Hist_AP/AL/A"][k] >= got["Hist_AL"][k]
        assert got["Hist_AP"][k] >= got["Hist_AL"][k] - 0.02
    # seen outages are far more predictable than unseen at k=2,3
    unseen = paper_result.outages_unseen.rows
    if paper_result.outages_unseen.total_bytes > 0:
        assert got["Hist_AP"][3] > unseen["Hist_AP"][3]
