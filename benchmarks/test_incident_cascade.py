"""§2 cascading-congestion incident: blind CMS vs TIPSY-guided CMS.

Paper narrative: I1 (400G, L1) hits 90%; blind withdrawal shifts the
/10's traffic onto I2 (same peer/metro) which overloads; the next
withdrawal overloads I3 and I4 (100G, L2); only the third round
disperses the traffic.  TIPSY's post-incident model identified I2 then
I3/I4 in advance, enabling one simultaneous withdrawal.
"""

from repro.experiments import build_incident_world, replay_incident

from repro.experiments.benchlib import print_block


def test_incident_cascade(benchmark):
    world = build_incident_world(seed=0)
    blind = replay_incident(world, with_tipsy=False)
    guided = benchmark.pedantic(
        replay_incident, args=(world, True), rounds=1, iterations=1)

    names = {world.i1: "I1", world.i2: "I2", world.i3: "I3", world.i4: "I4"}
    lines = ["mode      rounds  congested-link-hours  withdrawal order"]
    for report, mode in ((blind, "blind"), (guided, "tipsy")):
        order = [names.get(a.link_id, str(a.link_id))
                 for a in report.actions if a.kind.startswith("withdraw")]
        lines.append(f"{mode:<9s} {report.withdrawal_rounds:>5d}  "
                     f"{report.congested_link_hours:>19d}  {order}")
    print_block("== §2 incident replay ==\n" + "\n".join(lines))

    # blind CMS reproduces the paper's cascade: I1, then I2, then I3+I4
    withdraws = [a.link_id for a in blind.actions if a.kind == "withdraw"]
    assert withdraws[0] == world.i1
    assert withdraws[1] == world.i2
    assert set(withdraws[2:4]) == {world.i3, world.i4}
    assert blind.withdrawal_rounds == 3

    # guided CMS collapses it into one coordinated round
    assert guided.withdrawal_rounds == 1
    coordinated = {a.link_id for a in guided.actions
                   if a.kind == "withdraw-coordinated"}
    assert coordinated == {world.i1, world.i2, world.i3, world.i4}
    assert guided.congested_link_hours < blind.congested_link_hours
