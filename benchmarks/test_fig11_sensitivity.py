"""Figure 11 (Appendix B.3): accuracy distribution across many windows.

Paper: across 28 single-day test windows, overall accuracy is tight and
high, while outage-affected accuracy — seen and especially unseen —
varies widely depending on what failed in each window.
"""


from repro.experiments import figures

from repro.experiments.benchlib import print_block


def test_fig11_outage_sensitivity(medium_scenario, benchmark):
    out = benchmark.pedantic(
        figures.fig11_outage_sensitivity,
        args=(medium_scenario,),
        kwargs={"n_windows": 8, "train_days": 14},
        rounds=1, iterations=1)
    lines = ["partition        n    q1      median  q3      whiskers (Tukey)"]
    for name, values in out.items():
        if not values:
            lines.append(f"{name:<16s} 0    (no qualifying windows)")
            continue
        s = figures.tukey_summary(values)
        lines.append(
            f"{name:<16s} {len(values):<4d} "
            f"{s.q1 * 100:6.2f}  {s.median * 100:6.2f}  {s.q3 * 100:6.2f}  "
            f"[{s.whisker_low * 100:.2f}, {s.whisker_high * 100:.2f}]"
            + (f" +{len(s.outliers)} outliers" if s.outliers else ""))
    print_block("== Figure 11 — per-window accuracy by outage type ==\n"
                + "\n".join(lines))

    assert len(out["overall"]) >= 6
    # overall accuracy is tight and high across windows
    assert min(out["overall"]) > 0.8
    overall_spread = max(out["overall"]) - min(out["overall"])
    # outage partitions vary far more across windows than overall does
    if len(out["outages_all"]) >= 3:
        outage_spread = max(out["outages_all"]) - min(out["outages_all"])
        assert outage_spread > overall_spread
