"""Ablations of the design choices DESIGN.md §4 calls out.

1. Hot-potato locality: weakening geographic preference (locality -> 1)
   should erase AL+G's advantage on outage traffic.
2. Pocketed CDNs: removing pockets shrinks the 1-hop link spread that
   makes Figure 3's inversion.
3. Routing drift: disabling drift should flatten the Figure-10 staleness
   decay.
"""

import numpy as np

from repro.experiments import (
    EvaluationRunner,
    Scenario,
    ScenarioParams,
    WindowSpec,
    figures,
)

from repro.experiments.benchlib import print_block

WINDOW = WindowSpec(train_start_day=0, train_days=14, test_days=7)


def _small(seed=21, **overrides):
    params = ScenarioParams.small(seed=seed, horizon_days=28)
    for key, value in overrides.items():
        setattr(params, key, value)
    return params


def test_ablation_hot_potato_strictness(benchmark):
    """AL+G's edge over AL on outage traffic scales with how
    geographically constrained rerouting is.  Under strict hot potato
    (candidate pool of 1: traffic always exits at the single nearest
    link), history records exactly one link per flow and rerouting goes
    to the next-nearest link — geography is the *only* usable signal, so
    the AL+G completion's edge grows sharply relative to the calibrated
    baseline."""
    from repro.bgp import SimulatorParams

    base_params = _small()
    strict_params = _small()
    strict_params.simulator = SimulatorParams(candidate_pool_size=1)

    def run(params):
        return EvaluationRunner(Scenario(params)).run(WINDOW)

    base = run(base_params)
    strict = benchmark.pedantic(run, args=(strict_params,),
                                rounds=1, iterations=1)

    def geo_edge(result):
        block = result.outages_all
        if block.total_bytes == 0:
            return 0.0
        return block.rows["Hist_AL+G"][3] - block.rows["Hist_AL"][3]

    print_block("== Ablation: hot-potato strictness ==\n"
                f"AL+G edge over AL (outages, top3): "
                f"baseline {geo_edge(base) * 100:+.2f} pts, "
                f"strict hot-potato {geo_edge(strict) * 100:+.2f} pts")
    assert geo_edge(base) > 0.0
    assert geo_edge(strict) >= geo_edge(base)


def test_ablation_cdn_pockets(benchmark):
    """Without pockets, direct peers spray over fewer links (Figure 3's
    inversion weakens)."""
    from repro.topology import TopologyParams

    base = Scenario(_small())
    no_pocket_params = _small()
    no_pocket_params.topology = TopologyParams(
        n_tier1=3, n_transit=10, n_access=24, n_cdn=3, n_stub=70,
        cdn_pocket_fraction=0.0)
    no_pockets = benchmark.pedantic(Scenario, args=(no_pocket_params,),
                                    rounds=1, iterations=1)

    def one_hop_spread(scenario):
        groups = figures.fig3_link_spread(scenario, 0, 72)
        points = groups.get(1, [])
        if not points:
            return 0
        for spread, cum in points:
            if cum >= 0.5:
                return spread
        return points[-1][0]

    base_spread = one_hop_spread(base)
    ablated_spread = one_hop_spread(no_pockets)
    print_block("== Ablation: CDN pockets ==\n"
                f"1-hop median link spread: with pockets {base_spread}, "
                f"without {ablated_spread}")
    assert base_spread >= ablated_spread


def test_ablation_routing_drift(benchmark):
    """With drift disabled, model staleness decay flattens."""
    from repro.bgp import SimulatorParams

    frozen_params = _small()
    frozen_params.simulator = SimulatorParams(
        minor_drift_daily=0.0, major_drift_daily=0.0)

    def staleness_slope(params):
        runner = EvaluationRunner(Scenario(params))
        per_day = runner.run_staleness(0, 14, 14)
        series = [per_day[d]["Hist_AP/AL/A"][3] for d in sorted(per_day)]
        return float(np.polyfit(np.arange(len(series)), series, 1)[0])

    base_slope = staleness_slope(_small())
    frozen_slope = benchmark.pedantic(
        staleness_slope, args=(frozen_params,), rounds=1, iterations=1)
    print_block("== Ablation: routing drift ==\n"
                f"staleness slope/day: with drift {base_slope:+.5f}, "
                f"without {frozen_slope:+.5f}")
    # drifting world decays at least as fast as the frozen one
    assert base_slope <= frozen_slope + 1e-4
