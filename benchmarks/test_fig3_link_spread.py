"""Figure 3: CDF of bytes vs number of links receiving an AS's traffic.

Paper: 50% of 1-hop bytes are sprayed across up to 182 peering links;
the further away a source AS is, the FEWER links receive its traffic —
the counterintuitive inversion caused by pocketed CDNs and public-
connectivity policies.
"""

from repro.experiments import figures

from repro.experiments.benchlib import print_block


def weighted_median(points):
    for spread, cum in points:
        if cum >= 0.5:
            return spread
    return points[-1][0]


def test_fig3_link_spread(paper_scenario, benchmark):
    groups = benchmark.pedantic(
        figures.fig3_link_spread,
        args=(paper_scenario, 21 * 24, 24 * 24),
        rounds=1, iterations=1)
    lines = ["distance  median-spread  p90-spread  (paper: closer sprays more)"]
    medians = {}
    for d, points in sorted(groups.items()):
        med = weighted_median(points)
        p90 = next((s for s, c in points if c >= 0.9), points[-1][0])
        medians[d] = med
        lines.append(f"   {d}          {med:5d}        {p90:5d}")
    print_block("== Figure 3 — link spread by AS distance ==\n"
                + "\n".join(lines))

    assert 1 in medians
    # the paper's inversion: 1-hop sources spray across at least as many
    # links as 3-hop sources
    far = medians.get(3, medians.get(2))
    assert medians[1] >= far
    # and direct peers genuinely spray: median spread well above 1
    assert medians[1] >= 4
