"""§4.1's rationale for excluding TE prefixes from TIPSY.

"Explicit attempts at ingress traffic engineering by altering outbound
BGP route announcements (e.g., by AS path prepending) can alter the
'normal' flow of ingress traffic.  Such human-induced meddling could
have adverse effects on the prediction accuracy of TIPSY."

This benchmark measures exactly that: train normally, then prepend a
destination prefix's hottest link during the test window.  Accuracy on
the meddled prefix's flows drops sharply versus the same flows left
alone — the paper's reason to exclude the 0.7% of TE prefixes.
"""


from repro.core.accuracy import evaluate_accuracy
from repro.experiments import EvaluationRunner, Scenario, ScenarioParams

from repro.experiments.benchlib import print_block

TRAIN_DAYS = 14
TEST_DAYS = 5


def _actuals_for_prefix(scenario, state, lo, hi, dest_prefix_id):
    actuals = {}
    flows = scenario.traffic.flows
    contexts = scenario.flow_contexts
    for cols in scenario.stream(lo, hi, state=state):
        for row, link, bytes_ in zip(cols.flow_rows, cols.link_ids,
                                     cols.sampled_bytes):
            if bytes_ <= 0 or flows[row].dest_prefix_id != dest_prefix_id:
                continue
            by_link = actuals.setdefault(contexts[row], {})
            by_link[int(link)] = by_link.get(int(link), 0.0) + float(bytes_)
    return actuals


def test_te_meddling_hurts_prediction(benchmark):
    scenario = Scenario(ScenarioParams.small(seed=31, horizon_days=28))
    runner = EvaluationRunner(scenario)
    counts = runner.counts_from(runner.collect_window(0, TRAIN_DAYS * 24))
    models = {m.name: m for m in runner.build_models(counts)}
    model = models["Hist_AP/AL/A"]
    lo, hi = TRAIN_DAYS * 24, (TRAIN_DAYS + TEST_DAYS) * 24

    # the busiest destination prefix and its hottest link in training
    # (contexts don't carry the dest prefix, so rank via the flow table)
    flows = scenario.traffic.flows
    dest_bytes = {}
    for flow in flows:
        dest_bytes[flow.dest_prefix_id] = dest_bytes.get(
            flow.dest_prefix_id, 0) + 1
    dest = max(dest_bytes, key=dest_bytes.get)
    link_mass = {}
    for flow in flows:
        if flow.dest_prefix_id != dest:
            continue
        for p in model.predict(scenario.flow_contexts[flow.flow_id], 1):
            link_mass[p.link_id] = link_mass.get(p.link_id, 0) + 1
    hot_link = max(link_mass, key=link_mass.get)

    def run_meddled():
        state = scenario.state_at(lo)
        state.prepend(dest, hot_link, times=4)
        return _actuals_for_prefix(scenario, state, lo, hi, dest)

    meddled = benchmark.pedantic(run_meddled, rounds=1, iterations=1)
    clean = _actuals_for_prefix(scenario, scenario.state_at(lo), lo, hi,
                                dest)

    # focus on the flows the meddling actually targets: those whose
    # byte-dominant prediction is the prepended link
    def targeted(actuals):
        return {
            context: by_link for context, by_link in actuals.items()
            if (preds := model.predict(context, 1))
            and preds[0].link_id == hot_link
        }

    clean, meddled = targeted(clean), targeted(meddled)
    acc = {k: (evaluate_accuracy(clean, model, k),
               evaluate_accuracy(meddled, model, k)) for k in (1, 3)}
    print_block(
        "== §4.1 — TE meddling vs prediction accuracy ==\n"
        f"destination prefix {scenario.wan.dest_prefix(dest).cidr}, "
        f"prepended 4x at link {hot_link}\n"
        f"accuracy on its flows (clean -> meddled): "
        f"top-1 {acc[1][0] * 100:.2f}% -> {acc[1][1] * 100:.2f}%, "
        f"top-3 {acc[3][0] * 100:.2f}% -> {acc[3][1] * 100:.2f}%")
    # meddling scrambles the byte-dominant link (top-1 collapses) even
    # though the top-3 set often survives — precisely why the paper
    # excludes TE prefixes rather than trusting k to absorb the shift
    assert acc[1][1] < acc[1][0] - 0.10
    assert acc[3][1] <= acc[3][0] + 0.01
