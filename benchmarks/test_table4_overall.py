"""Table 4: overall prediction accuracy (3 weeks train / 1 week test).

Paper values (Azure WAN, Nov-Dec 2021) for comparison:

    Model          Top1   Top2   Top3
    Oracle_A       61.74  84.03  90.55
    Hist_A         59.36  82.07  89.02
    Oracle_AP      80.66  98.13  99.46
    Hist_AP        75.62  95.28  97.09
    Oracle_AL      72.31  93.81  97.34
    Hist_AL        69.62  91.85  95.73
    Hist_AL+G      69.62  91.93  95.86
    Hist_AP/AL/A   76.02  95.95  97.88   (best)
    Hist_AL/AP/A   69.64  91.87  95.76

Expected shape: AP/AL models >90% @k=3, every Hist close to its oracle,
and the AP-led ensemble the best non-oracle model.
"""

from repro.experiments import paper, tables

from repro.experiments.benchlib import print_block


def test_table4_overall(paper_result, benchmark):
    rows = benchmark(tables.table4_overall, paper_result)
    print_block(tables.format_block(
        "Table 4 — overall accuracy", rows, tables.ACCURACY_HEADER))
    print_block(paper.format_comparison(
        paper_result.overall.rows, paper.PAPER_TABLE4, "Table 4"))

    got = paper_result.overall.rows
    # shape assertions (who wins, roughly by how much)
    assert got["Hist_AP"][3] > 0.90
    assert got["Hist_AL"][3] > 0.90
    assert got["Hist_AP/AL/A"][3] >= got["Hist_AP"][3] - 1e-9
    assert paper_result.overall.best_model(3) == "Hist_AP/AL/A"
    # each historical model sits close beneath its oracle
    for fs in ("A", "AP", "AL"):
        gap = got[f"Oracle_{fs}"][3] - got[f"Hist_{fs}"][3]
        assert 0.0 <= gap < 0.08
