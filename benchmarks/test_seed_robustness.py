"""Reproduction robustness: the paper's orderings across random worlds.

The qualitative claims must not depend on one lucky seed.  This
benchmark rebuilds three independent small worlds and checks the
headline orderings in each: fine-grained models beat coarse ones, the
AP-led ensemble is the best overall model, outage traffic is harder
than normal traffic, and geographic completion never hurts.
"""

from repro.experiments import (
    EvaluationRunner,
    Scenario,
    ScenarioParams,
    WindowSpec,
)

from repro.experiments.benchlib import print_block

SEEDS = (101, 202, 303)
WINDOW = WindowSpec(train_start_day=0, train_days=14, test_days=7)


def test_orderings_hold_across_seeds(benchmark):
    def run_all():
        results = {}
        for seed in SEEDS:
            scenario = Scenario(ScenarioParams.small(seed=seed,
                                                     horizon_days=28))
            results[seed] = EvaluationRunner(scenario).run(WINDOW)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'seed':<6s} {'Hist_AP@3':>10s} {'Hist_AL@3':>10s} "
             f"{'Hist_A@3':>9s} {'ensemble@3':>11s} {'outage AP@1':>12s}"]
    for seed, result in results.items():
        rows = result.overall.rows
        outage_top1 = (result.outages_all.rows["Hist_AP"][1]
                       if result.outages_all.total_bytes else float("nan"))
        lines.append(
            f"{seed:<6d} {rows['Hist_AP'][3] * 100:9.2f}% "
            f"{rows['Hist_AL'][3] * 100:9.2f}% "
            f"{rows['Hist_A'][3] * 100:8.2f}% "
            f"{rows['Hist_AP/AL/A'][3] * 100:10.2f}% "
            f"{outage_top1 * 100:11.2f}%")
    print_block("== seed robustness (3 independent worlds) ==\n"
                + "\n".join(lines))

    outage_harder = 0
    outage_measured = 0
    for seed, result in results.items():
        rows = result.overall.rows
        # fine-grained beats coarse
        assert rows["Hist_AP"][3] > rows["Hist_A"][3], seed
        assert rows["Hist_AL"][3] > rows["Hist_A"][3], seed
        # the ensemble is the best non-oracle model at top-3
        non_oracle = {m: v for m, v in rows.items()
                      if not m.startswith("Oracle")}
        best = max(non_oracle.values(), key=lambda v: v[3])[3]
        assert rows["Hist_AP/AL/A"][3] >= best - 0.005, seed
        if result.outages_all.total_bytes:
            outage_measured += 1
            if (result.outages_all.rows["Hist_AP"][1]
                    < rows["Hist_AP"][1]):
                outage_harder += 1
        # geographic completion never hurts
        for k in (1, 2, 3):
            assert (rows["Hist_AL+G"][k] >= rows["Hist_AL"][k] - 1e-9), seed
    # outage traffic is harder in the typical world; a small world whose
    # outage week happens to hit only well-seen flaky links can buck it
    assert outage_harder * 2 > outage_measured
