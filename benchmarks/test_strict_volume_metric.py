"""§3.1's stronger reading of prediction: byte-fraction apportionment.

The paper's predictions carry "the probability value predicting what
fraction of the flow's bytes will arrive on that link".  The library's
strict metric variant scores ``min(predicted fraction x flow bytes,
actual bytes)`` per link — a model earns credit only for volume it
apportioned correctly, not merely for naming the right links.
"""

from repro.core.accuracy import evaluate_accuracy

from repro.experiments.benchlib import print_block


def test_strict_volume_accuracy(paper_result, paper_runner,
                                paper_train_counts, benchmark):
    models = {m.name: m for m in paper_runner.build_models(
        paper_train_counts)}
    actuals = paper_result.overall_actuals

    def run():
        out = {}
        for name in ("Hist_AP", "Hist_AL", "Hist_AP/AL/A"):
            out[name] = (
                evaluate_accuracy(actuals, models[name], 3),
                evaluate_accuracy(actuals, models[name], 3,
                                  strict_volumes=True),
            )
        return out

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'Model':<14s} {'top-3 link':>11s} {'top-3 volume':>13s}"]
    for name, (loose, strict) in scores.items():
        lines.append(f"{name:<14s} {loose * 100:10.2f}% {strict * 100:12.2f}%")
    print_block("== §3.1 — link-set vs volume-apportioned accuracy ==\n"
                + "\n".join(lines))

    for name, (loose, strict) in scores.items():
        # strict is a lower bound by construction...
        assert strict <= loose + 1e-9
        # ...but the historical models predict byte fractions, so they
        # keep most of their accuracy under the stricter reading
        assert strict > loose * 0.75
