#!/usr/bin/env python
"""TIPSY as an online service: daily retraining over a live stream (§4).

The production deployment runs TIPSY as a prediction service retrained
daily on a rolling window.  This example wires :class:`TipsyService`
onto a scenario's telemetry stream and, once warmed up, answers the two
operational queries every day: a routine prediction, and the CMS's
"what-if" safety question for a hypothetical withdrawal.

Run:  python examples/online_service.py
"""

from repro.core import ServiceConfig, TipsyService
from repro.experiments import Scenario, ScenarioParams


def main() -> None:
    print("building a small synthetic world ...")
    scenario = Scenario(ScenarioParams.small(seed=9, horizon_days=14))
    service = TipsyService(scenario.wan,
                           ServiceConfig(training_window_days=7))

    print("streaming 12 days of telemetry into the service ...")
    for cols in scenario.stream(0, 12 * 24):
        service.ingest_hour(cols.hour, scenario.agg_records_for(cols))
        if cols.hour % 24 == 0 and service.ready:
            day = cols.hour // 24
            window = service.trained_days
            print(f"  day {day:>2d}: retrain #{service.retrain_count} on "
                  f"days [{min(window)}..{max(window)}]")

    # -- a routine prediction ---------------------------------------------------
    context = next(iter(scenario.flow_contexts))
    predictions = service.predict(context)
    print(f"\nflow {context}:")
    for p in predictions:
        link = scenario.wan.link(p.link_id)
        print(f"  {link.name:<28s} p={p.score:.2f}")

    # -- the CMS's what-if question ----------------------------------------------
    if predictions:
        target = predictions[0].link_id
        cols = next(iter(scenario.stream(12 * 24, 12 * 24 + 1)))
        flows = [(scenario.flow_contexts[row], float(b))
                 for row, link, b in zip(cols.flow_rows, cols.link_ids,
                                         cols.sampled_bytes)
                 if int(link) == target and b > 0]
        spill = service.what_if(flows, withdrawn=frozenset({target}))
        total = sum(b for _c, b in flows)
        print(f"\nwhat-if: withdrawing link {target} "
              f"({scenario.wan.link(target).name}) moves "
              f"{total:.3g}B; predicted landing spots:")
        for link_id, bytes_ in sorted(spill.items(),
                                      key=lambda kv: -kv[1])[:5]:
            if link_id < 0:
                print(f"  UNPLACEABLE: {bytes_:.3g}B (no alternative known)")
            else:
                print(f"  {scenario.wan.link(link_id).name:<28s} "
                      f"{bytes_:.3g}B")


if __name__ == "__main__":
    main()
