#!/usr/bin/env python
"""De-peering study: which peers could be removed safely? (paper §8)

"In the course of maintaining a large WAN, it is natural to consider
de-peering to reduce cost and operational overhead with peers that add
low value."  For every peer, the analyzer asks TIPSY what would happen
to the peer's traffic if all its links were withdrawn: does it land
safely elsewhere, or does it strand or overload?

Run:  python examples/depeering_study.py
"""

from repro.cms import DepeeringAnalyzer
from repro.experiments import EvaluationRunner, Scenario, ScenarioParams


def main() -> None:
    print("building a small synthetic world ...")
    scenario = Scenario(ScenarioParams.small(seed=5, horizon_days=14))
    runner = EvaluationRunner(scenario)

    print("training Hist_AL+G on days 0-9 ...")
    counts = runner.counts_from(runner.collect_window(0, 10 * 24))
    models = {m.name: m for m in runner.build_models(counts)}
    analyzer = DepeeringAnalyzer(scenario.wan, models["Hist_AL+G"])

    # use a peak-hour snapshot, as the CMS does (paper §4)
    cols = next(iter(scenario.stream(10 * 24 + 14, 10 * 24 + 15)))
    entries = scenario.risk_entries_for(cols)

    candidates = analyzer.rank_candidates(entries,
                                          max_carried_fraction=0.01)
    print(f"\n{len(candidates)} of {len(scenario.wan.peer_asns)} peers are "
          "low-value AND safely removable:\n")
    print(f"{'Peer':<9s} {'links':>5s} {'traffic share':>14s} "
          f"{'spill destinations':<30s}")
    for assessment in candidates[:10]:
        spill = ", ".join(
            scenario.wan.link(l).name
            for l, _b in assessment.predicted_spill[:2]) or "-"
        print(f"AS{assessment.peer_asn:<7d} {assessment.n_links:>5d} "
              f"{assessment.carried_fraction:>13.3%}  {spill}")

    # contrast: a big peer is NOT removable
    biggest = max(scenario.wan.peer_asns,
                  key=lambda a: len(scenario.wan.links_of_peer(a)))
    assessment = analyzer.assess(biggest, entries)
    print(f"\ncontrast — AS{biggest} ({assessment.n_links} links, "
          f"{assessment.carried_fraction:.1%} of traffic): "
          f"{'safe' if assessment.safe else 'NOT safe'} to remove"
          + (f"; would overload links {list(assessment.overloaded_links)}"
             if assessment.overloaded_links else "")
          + (f"; {assessment.unplaceable_bytes:.3g}B would strand"
             if assessment.unplaceable_bytes else ""))


if __name__ == "__main__":
    main()
