#!/usr/bin/env python
"""Capacity planning: find peering links at risk under single outages.

Appendix C of the paper uses TIPSY for "what-if" capacity analysis: if
peering link A fails, which other link B would exceed 70% utilization in
hours where it otherwise would not?  Surprising answers (different peers,
distant routers) are exactly the ones operators need weeks of lead time
to fix.

This example trains a TIPSY model on one week of a synthetic world, runs
the paper's Algorithm 1 over the next three days, and prints the
Table 12-style findings.

Run:  python examples/capacity_planning.py
"""

from repro.cms import RiskAnalyzer
from repro.experiments import EvaluationRunner, Scenario, ScenarioParams
from repro.experiments.tables import RISK_HEADER, risk_rows


def main() -> None:
    print("building a small synthetic world ...")
    scenario = Scenario(ScenarioParams.small(seed=11, horizon_days=14))
    runner = EvaluationRunner(scenario)

    print("training Hist_AL on days 0-6 ...")
    train_acc = runner.collect_window(0, 7 * 24)
    train_counts = runner.counts_from(train_acc)
    models = {m.name: m for m in runner.build_models(train_counts)}
    model = models["Hist_AL"]

    print("running Algorithm 1 over days 7-9 "
          "(what-if outage of every link, every hour) ...")
    analyzer = RiskAnalyzer(scenario.wan, model, threshold=0.70)

    def hours():
        for cols in scenario.stream(7 * 24, 10 * 24):
            yield cols.hour, scenario.risk_entries_for(cols)

    findings = analyzer.analyze(hours(), min_extra_hours=2)
    print(f"\n{len(findings)} at-risk (link, affecting-link) pairs found; "
          "top findings:\n")
    print(RISK_HEADER)
    for row in risk_rows(findings, scenario.wan, limit=10):
        print(row.formatted())

    surprising = [
        f for f in findings
        if f.peer_asn != f.affecting_peer_asn
    ]
    print(f"\n{len(surprising)} findings are 'operationally surprising' — "
          "the affecting link belongs to a different peer, so the "
          "dependency is invisible without TIPSY's what-if analysis.")


if __name__ == "__main__":
    main()
