#!/usr/bin/env python
"""Quickstart: build a synthetic world, train TIPSY, predict an ingress.

This walks the full pipeline end to end on a small world:

1. generate the synthetic Internet + cloud WAN + traffic,
2. stream a training window of sampled IPFIX telemetry,
3. train the paper's model suite (historical models + ensembles + AL+G),
4. predict where a flow will ingress — normally, and after its top link
   is withdrawn,
5. score everything with the paper's byte-weighted top-3 metric.

Run:  python examples/quickstart.py
"""

from repro.experiments import EvaluationRunner, Scenario, ScenarioParams, WindowSpec


def main() -> None:
    print("building a small synthetic world ...")
    scenario = Scenario(ScenarioParams.small(seed=7, horizon_days=14))
    print(f"  {scenario.wan.summary()}")
    print(f"  {len(scenario.graph)} ASes, {len(scenario.traffic)} flow "
          f"aggregates, {len(scenario.outage_schedule)} scheduled outages")

    runner = EvaluationRunner(scenario)

    # -- train the model suite on 10 days of telemetry -----------------------
    print("\ntraining on days 0-9 ...")
    train_acc = runner.collect_window(0, 10 * 24)
    train_counts = runner.counts_from(train_acc)
    models = runner.build_models(train_counts)
    by_name = {m.name: m for m in models}
    print(f"  {len(train_counts)} (flow, link) observations; model sizes: "
          + ", ".join(f"{m.name}={getattr(m, 'size', lambda: 0)()}"
                      for m in models[:3]))

    # -- make a prediction for one real flow ---------------------------------
    context = next(iter(train_counts.actuals()))
    model = by_name["Hist_AP/AL/A"]
    print(f"\nflow {context}:")
    predictions = model.predict(context, k=3)
    print("  predicted ingress links (normal operation):")
    for p in predictions:
        link = scenario.wan.link(p.link_id)
        print(f"    {link.name:<28s} ({link.metro}, "
              f"{link.capacity_gbps:g}G)  p={p.score:.2f}")

    # -- the what-if question CMS asks: what if the top link is withdrawn? ---
    if predictions:
        withdrawn = frozenset({predictions[0].link_id})
        shifted = by_name["Hist_AL+G"].predict(context, k=3,
                                               unavailable=withdrawn)
        print(f"  if link {predictions[0].link_id} is withdrawn, "
              "traffic shifts to:")
        for p in shifted:
            link = scenario.wan.link(p.link_id)
            print(f"    {link.name:<28s} ({link.metro})  score={p.score:.2f}")

    # -- full evaluation (Table 4 style) --------------------------------------
    print("\nevaluating on days 10-13 (byte-weighted top-k accuracy) ...")
    result = runner.run(WindowSpec(train_start_day=0, train_days=10,
                                   test_days=4))
    for name in ("Oracle_AP", "Hist_AP", "Hist_AL", "Hist_AL+G",
                 "Hist_AP/AL/A"):
        row = result.overall.rows[name]
        print(f"  {name:<14s} top1={row[1]*100:5.1f}%  "
              f"top2={row[2]*100:5.1f}%  top3={row[3]*100:5.1f}%")
    print(f"\n  traffic affected by outages: "
          f"{result.stats['outage_bytes'] / result.stats['total_bytes']:.2%} "
          f"of bytes ({result.stats['unseen_fraction']:.0%} from outages "
          "never seen in training)")


if __name__ == "__main__":
    main()
