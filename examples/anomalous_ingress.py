#!/usr/bin/env python
"""Spoofed-traffic detection: flag flows on exceedingly unlikely links.

The paper's conclusion describes using TIPSY to identify suspicious
ingress — e.g. traffic claiming to be from US national labs arriving on
peering links in countries far away — candidates for DoS scrubbing.

This example trains TIPSY on clean telemetry, then injects spoofed
records (legitimate source prefixes appearing on links far from their
usual geography) and runs :class:`repro.core.IngressAnomalyDetector`
over both.

Run:  python examples/anomalous_ingress.py
"""

import random

from repro.core import IngressAnomalyDetector
from repro.experiments import EvaluationRunner, Scenario, ScenarioParams


def main() -> None:
    print("building a small synthetic world ...")
    scenario = Scenario(ScenarioParams.small(seed=3, horizon_days=14))
    runner = EvaluationRunner(scenario)

    print("training Hist_AL+G on days 0-9 ...")
    train_acc = runner.collect_window(0, 10 * 24)
    train_counts = runner.counts_from(train_acc)
    models = {m.name: m for m in runner.build_models(train_counts)}
    detector = IngressAnomalyDetector(models["Hist_AL+G"], scenario.wan)

    # -- score one hour of clean traffic --------------------------------------
    cols = next(iter(scenario.stream(10 * 24, 10 * 24 + 1)))
    clean = [(scenario.flow_contexts[row], int(link))
             for row, link, b in zip(cols.flow_rows, cols.link_ids,
                                     cols.sampled_bytes) if b > 0]
    false_alarms = detector.scan(clean)
    print(f"\nclean traffic: {len(false_alarms)}/{len(clean)} observations "
          f"flagged ({len(false_alarms) / max(len(clean), 1):.2%} "
          "false-alarm rate)")

    # -- inject spoofed observations -------------------------------------------
    rng = random.Random(1)
    wan, metros = scenario.wan, scenario.metros
    spoofed = []
    contexts = [c for c, _l in clean]
    while len(spoofed) < 200:
        context = rng.choice(contexts)
        link_id = rng.choice(wan.link_ids)
        predictions = models["Hist_AL+G"].predict(context, 3)
        if not predictions:
            continue
        usual = wan.link(predictions[0].link_id)
        if metros.distance_km(usual.metro, wan.link(link_id).metro) > 6000:
            spoofed.append((context, link_id))  # far from usual geography
    caught = detector.scan(spoofed)
    print(f"spoofed traffic: {len(caught)}/{len(spoofed)} far-away "
          f"injections flagged ({len(caught) / len(spoofed):.0%} detection "
          "rate)")
    if caught:
        sample = caught[0]
        print(f"  e.g. {sample.reason} "
              f"(link {wan.link(sample.link_id).name})")
    print("\noperators would route flagged flows through DoS scrubbers "
          "(paper §8).")


if __name__ == "__main__":
    main()
