#!/usr/bin/env python
"""Bring your own telemetry: train TIPSY from a flow-trace file.

A real operator would not have the synthetic world — they would have
flow export from their own edge.  This example shows the full offline
path: export a week of (here: synthetic) IPFIX to a CSV trace, then
train and query TIPSY from the trace alone, exactly as you would with
your own data.

Run:  python examples/bring_your_own_trace.py
"""

import tempfile
from pathlib import Path

from repro.core import FEATURES_AL, FEATURES_AP, HistoricalModel, save_model
from repro.experiments import Scenario, ScenarioParams
from repro.pipeline import counts_from_trace, write_trace


def main() -> None:
    print("building a small synthetic world (stands in for your network)")
    scenario = Scenario(ScenarioParams.small(seed=17, horizon_days=10))

    workdir = Path(tempfile.mkdtemp(prefix="tipsy-trace-"))
    trace_path = workdir / "week1.csv"

    # --- the part an operator replaces: export YOUR flow records -----------
    print("exporting 7 days of IPFIX to", trace_path)
    def all_records():
        for cols in scenario.stream(0, 7 * 24):
            yield from scenario.ipfix_records_for(cols)
    n = write_trace(trace_path, all_records())
    print(f"  {n} sampled flow records "
          f"({trace_path.stat().st_size / 1e6:.1f} MB)")

    # --- the offline training path ------------------------------------------
    print("training from the trace (no simulator in sight) ...")
    counts = counts_from_trace(trace_path, scenario.metadata)
    hist_ap = HistoricalModel(FEATURES_AP)
    hist_al = HistoricalModel(FEATURES_AL)
    counts.fit([hist_ap, hist_al])
    print(f"  {len(counts)} (flow, link) observations -> "
          f"Hist_AP: {hist_ap.size()} tuples, Hist_AL: {hist_al.size()}")

    # --- query and persist ----------------------------------------------------
    context = next(iter(counts.actuals()))
    predictions = hist_ap.predict(context, 3)
    print(f"\nprediction for {context}:")
    for p in predictions:
        link = scenario.wan.link(p.link_id)
        print(f"  {link.name:<28s} p={p.score:.2f}")

    artifact = workdir / "hist_ap.json"
    save_model(hist_ap, artifact)
    print(f"\nmodel artifact written to {artifact} "
          f"({artifact.stat().st_size / 1e3:.0f} kB) — load it in your "
          "serving process with repro.core.load_model")


if __name__ == "__main__":
    main()
