#!/usr/bin/env python
"""Replay the paper's §2 cascading congestion incident, blind vs TIPSY.

On 04 January 2022 a 400G link (I1) with peer AS B hit 90% ingress
utilization.  The pre-TIPSY mitigation withdrew the hot anycast prefix at
I1, overloading the parallel link I2; withdrawing there overloaded the
two 100G links I3/I4 one metro over — three rounds of chasing congestion.
TIPSY's post-incident analysis showed the whole cascade was predictable.

This example rebuilds that world and runs the real CMS twice:

* blind (pre-TIPSY): withdraw and see what happens — the cascade;
* TIPSY-guided: the predicted spill is unsafe, so CMS plans a
  *coordinated* withdrawal at I1+I2+I3+I4 simultaneously.

Run:  python examples/cascade_incident.py
"""

from repro.experiments import build_incident_world, replay_incident


def describe(report, world) -> None:
    mode = "TIPSY-guided" if report.with_tipsy else "blind (pre-TIPSY)"
    print(f"\n=== {mode} ===")
    names = {world.i1: "I1", world.i2: "I2", world.i3: "I3", world.i4: "I4"}
    for action in report.actions:
        if not action.kind.startswith("withdraw") and action.kind != "reannounce":
            continue
        label = names.get(action.link_id,
                          world.wan.link(action.link_id).name)
        hour = action.sample_index - world.surge_start_hour
        print(f"  t+{hour:>2d}h  {action.kind:<21s} {label:<6s} "
              f"prefix {world.wan.dest_prefix(action.dest_prefix_id).cidr}")
    print(f"  withdrawal rounds: {report.withdrawal_rounds}")
    print(f"  congested link-hours: {report.congested_link_hours}")
    peaks = {names.get(l, l): f"{u:.0%}"
             for l, u in sorted(report.max_utilization.items())
             if u > 0.8}
    print(f"  peak utilizations >80%: {peaks}")


def main() -> None:
    print("building the §2 incident world (AS B: I1/I2 400G at L1, "
          "I3/I4 100G at L2) ...")
    world = build_incident_world(seed=0)
    print(f"  demand at incident start: "
          f"{world.demand_gbps(world.surge_start_hour):.0f} Gbps toward "
          f"{world.wan.dest_prefix(0).cidr} "
          f"({world.wan.dest_prefix(0).service})")

    blind = replay_incident(world, with_tipsy=False)
    describe(blind, world)

    guided = replay_incident(world, with_tipsy=True)
    describe(guided, world)

    print("\nsummary: TIPSY turned a "
          f"{blind.withdrawal_rounds}-round cascade with "
          f"{blind.congested_link_hours} congested link-hours into "
          f"{guided.withdrawal_rounds} coordinated round with "
          f"{guided.congested_link_hours} congested link-hour(s).")


if __name__ == "__main__":
    main()
