#!/usr/bin/env python
"""Documentation checker: markdown links and fenced CLI examples.

Run from the repo root (CI runs it in the ``docs`` job)::

    PYTHONPATH=src python tools/check_docs.py

Two families of checks over ``README.md`` and ``docs/*.md``:

1. **Links.**  Every relative markdown link must resolve to a file
   inside the repository, and every ``#anchor`` (same-file or
   cross-file) must match a heading in its target.  External links
   (``http(s)://``, ``mailto:``) are skipped — CI must not depend on
   the network — and so are GitHub-virtual paths that resolve outside
   the repo root (the README's ``../../actions/...`` badge).
2. **CLI examples.**  Inside fenced ``bash`` / ``console`` / ``sh``
   blocks, every ``repro <subcommand>`` invocation must name a real
   subcommand, and every ``--flag`` it passes must exist on that
   subcommand's parser.  The truth source is
   :func:`repro.__main__.build_parser` itself, so examples can never
   drift from the CLI silently.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: fence info strings whose contents are shell examples worth checking
_SHELL_LANGS = frozenset({"bash", "console", "sh", "shell"})

_FENCE_RE = re.compile(r"^(```+|~~~+)\s*([A-Za-z0-9_-]*)\s*$")
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md"))


def split_fences(text: str) -> Tuple[str, List[Tuple[str, List[str]]]]:
    """Separate prose from fenced code blocks.

    Returns (prose with code blocks blanked out, list of
    (language, block lines)).  Link checks run on the prose only;
    CLI checks run on the shell-language blocks only.
    """
    prose: List[str] = []
    blocks: List[Tuple[str, List[str]]] = []
    fence: str = ""
    language: str = ""
    body: List[str] = []
    for line in text.splitlines():
        match = _FENCE_RE.match(line.strip())
        if fence:
            if match and match.group(1)[0] == fence[0] \
                    and len(match.group(1)) >= len(fence):
                blocks.append((language, body))
                fence, language, body = "", "", []
            else:
                body.append(line)
            prose.append("")
        elif match:
            fence, language, body = match.group(1), match.group(2), []
            prose.append("")
        else:
            prose.append(line)
    if fence:  # unterminated fence: keep what we saw
        blocks.append((language, body))
    return "\n".join(prose), blocks


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    if path not in cache:
        prose, _ = split_fences(path.read_text(encoding="utf-8"))
        cache[path] = {
            github_anchor(m.group(1))
            for line in prose.splitlines()
            if (m := _HEADING_RE.match(line))
        }
    return cache[path]


def check_links(path: Path, prose: str,
                anchor_cache: Dict[Path, Set[str]]) -> Iterator[str]:
    prose = re.sub(r"`[^`]*`", "", prose)  # drop inline code spans
    for lineno, line in enumerate(prose.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                try:
                    resolved.relative_to(REPO_ROOT)
                except ValueError:
                    continue  # GitHub-virtual path (e.g. the CI badge)
                if not resolved.exists():
                    yield (f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                           f"broken link `{target}` "
                           f"({resolved.relative_to(REPO_ROOT)} missing)")
                    continue
            else:
                resolved = path
            if anchor and resolved.suffix == ".md":
                if anchor not in anchors_of(resolved, anchor_cache):
                    yield (f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                           f"link `{target}` names anchor `#{anchor}` "
                           f"not found in "
                           f"{resolved.relative_to(REPO_ROOT)}")


def cli_surface() -> Dict[str, Set[str]]:
    """Subcommand -> accepted option strings, from the parser itself."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.__main__ import build_parser

    surface: Dict[str, Set[str]] = {}
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                surface[name] = {
                    opt for sub_action in sub._actions
                    for opt in sub_action.option_strings}
    return surface


def shell_commands(body: List[str]) -> Iterator[str]:
    """Logical commands in a shell block: prompts stripped, backslash
    continuations joined, comments and output lines dropped."""
    pending = ""
    for raw in body:
        line = raw.strip()
        if line.startswith("$"):
            line = line[1:].strip()
        elif not pending and ("=" not in line.split(" ")[0]
                              and not line.startswith(("python", "repro",
                                                       "pip", "git", "mypy",
                                                       "pytest", "pre-commit",
                                                       "PYTHONPATH"))):
            continue  # console output, not a command
        line = re.sub(r"(?<!\S)#.*$", "", line).rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        command = (pending + line).strip()
        pending = ""
        if command:
            yield command


def repro_invocation(command: str) -> List[str]:
    """The argv after ``repro`` for a repro CLI invocation, else []."""
    tokens = [t for t in command.split() if "=" not in t or
              not re.match(r"^[A-Z_][A-Z0-9_]*=", t)]
    for shape in (["python", "-m", "repro"], ["repro"]):
        if tokens[:len(shape)] == shape and len(tokens) > len(shape):
            return tokens[len(shape):]
    return []


def check_cli_blocks(path: Path, blocks: List[Tuple[str, List[str]]],
                     surface: Dict[str, Set[str]]) -> Iterator[str]:
    rel = path.relative_to(REPO_ROOT)
    for language, body in blocks:
        if language.lower() not in _SHELL_LANGS:
            continue
        for command in shell_commands(body):
            argv = repro_invocation(command)
            if not argv:
                continue
            subcommand = argv[0]
            if subcommand.startswith("-"):
                continue  # e.g. `python -m repro --help`
            if subcommand not in surface:
                yield (f"{rel}: example names unknown subcommand "
                       f"`repro {subcommand}` (known: "
                       f"{', '.join(sorted(surface))})")
                continue
            known = surface[subcommand]
            for token in argv[1:]:
                if not token.startswith("--"):
                    continue
                flag = token.split("=")[0]
                if flag not in known:
                    yield (f"{rel}: `repro {subcommand}` example uses "
                           f"unknown flag `{flag}`")


def main() -> int:
    surface = cli_surface()
    anchor_cache: Dict[Path, Set[str]] = {}
    problems: List[str] = []
    checked = 0
    for path in doc_files():
        prose, blocks = split_fences(path.read_text(encoding="utf-8"))
        problems.extend(check_links(path, prose, anchor_cache))
        problems.extend(check_cli_blocks(path, blocks, surface))
        checked += 1
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"check_docs: {len(problems)} problem(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {checked} files, links and CLI examples OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
