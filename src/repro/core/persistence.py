"""Model persistence: save trained models, load them for serving.

The production deployment retrains daily and serves predictions from
the trained artifacts (paper §4).  This module round-trips every model
type through a plain-JSON representation — no pickle, so artifacts are
inspectable, diffable and safe to load.

Geo-augmented models need the WAN at load time (the link geography is
topology, not model state); pass ``wan=`` to :func:`model_from_dict` /
:func:`load_model` when loading them.

Alongside the JSON artifacts, :func:`train_models_from_store` is the
*out-of-core* training path over the columnar day segments that
``TipsyService.snapshot`` writes (``repro.store``, ``docs/storage.md``):
it streams one day segment at a time — load, project onto each grain,
fold into the models, free — so a multi-month window trains in memory
bounded by one day plus the models, not by the window.  Corrupt or
missing segments are skipped and reported, per the store's
degrade-to-rebuild contract.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..store import SegmentStore
from ..topology.wan import CloudWAN
from .base import IngressModel
from .ensemble import SequentialEnsemble
from .features import (
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    FEATURES_APL,
    FeatureSet,
)
from .geo_augment import GeoAugmentedModel
from .historical import HistoricalModel
from .naive_bayes import NaiveBayesModel
from .oracle import OracleModel
from .training import CountsAccumulator

FORMAT_VERSION = 1

_FEATURE_SETS: Dict[str, FeatureSet] = {
    fs.name: fs for fs in (FEATURES_A, FEATURES_AP, FEATURES_AL,
                           FEATURES_APL)
}


def _feature_set(name: str) -> FeatureSet:
    try:
        return _FEATURE_SETS[name]
    except KeyError:
        raise ValueError(f"unknown feature set {name!r}") from None


# -- to dict ---------------------------------------------------------------------


def model_to_dict(model: IngressModel) -> Dict[str, Any]:
    """Serialise a model to a JSON-compatible dict."""
    if isinstance(model, OracleModel):
        data = _historical_to_dict(model)
        data["type"] = "oracle"
        return data
    if isinstance(model, HistoricalModel):
        return _historical_to_dict(model)
    if isinstance(model, NaiveBayesModel):
        return _naive_bayes_to_dict(model)
    if isinstance(model, SequentialEnsemble):
        return {
            "format": FORMAT_VERSION,
            "type": "ensemble",
            "name": model.name,
            "models": [model_to_dict(m) for m in model.models],
        }
    if isinstance(model, GeoAugmentedModel):
        return {
            "format": FORMAT_VERSION,
            "type": "geo_augmented",
            "name": model.name,
            "base": model_to_dict(model.base),
        }
    raise TypeError(f"cannot serialise model type {type(model).__name__}")


def _historical_to_dict(model: HistoricalModel) -> Dict[str, Any]:
    counts = [
        [list(key), [[link, bytes_] for link, bytes_ in links.items()]]
        for key, links in model._counts.items()
    ]
    return {
        "format": FORMAT_VERSION,
        "type": "historical",
        "name": model.name,
        "features": model.feature_set.name,
        "keep_top": model.keep_top,
        "counts": counts,
    }


def _naive_bayes_to_dict(model: NaiveBayesModel) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "type": "naive_bayes",
        "name": model.name,
        "features": model.feature_set.name,
        "alpha": model.alpha,
        "link_bytes": [[link, b] for link, b in model._link_bytes.items()],
        "feature_bytes": [
            [[list((value, link)), b] for (value, link), b in table.items()]
            for table in model._feature_bytes
        ],
        "total": model._total,
    }


# -- from dict ----------------------------------------------------------------------


def model_from_dict(data: Dict[str, Any],
                    wan: Optional[CloudWAN] = None) -> IngressModel:
    """Reconstruct a model from :func:`model_to_dict` output."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format {version!r}")
    kind = data["type"]
    if kind in ("historical", "oracle"):
        cls = OracleModel if kind == "oracle" else HistoricalModel
        model = cls(_feature_set(data["features"]), name=data["name"])
        if kind == "historical":
            model.keep_top = data.get("keep_top")
        for key, links in data["counts"]:
            model._counts[tuple(key)] = {
                int(link): float(b) for link, b in links}
        model.finalize()
        return model
    if kind == "naive_bayes":
        model = NaiveBayesModel(_feature_set(data["features"]),
                                name=data["name"], alpha=data["alpha"])
        model._link_bytes = {int(l): float(b)
                             for l, b in data["link_bytes"]}
        model._feature_bytes = tuple(
            {(tuple(vl)[0], int(tuple(vl)[1])): float(b)
             for vl, b in table}
            for table in data["feature_bytes"]
        )
        model._total = float(data["total"])
        model.finalize()
        return model
    if kind == "ensemble":
        return SequentialEnsemble(
            [model_from_dict(m, wan) for m in data["models"]],
            name=data["name"])
    if kind == "geo_augmented":
        if wan is None:
            raise ValueError(
                "loading a geo-augmented model requires wan=")
        return GeoAugmentedModel(model_from_dict(data["base"], wan), wan,
                                 name=data["name"])
    raise ValueError(f"unknown model type {kind!r}")


# -- file IO -----------------------------------------------------------------------------


def save_model(model: IngressModel, path: Union[str, Path]) -> None:
    """Write a model artifact as JSON."""
    Path(path).write_text(json.dumps(model_to_dict(model)))


def load_model(path: Union[str, Path],
               wan: Optional[CloudWAN] = None) -> IngressModel:
    """Load a model artifact written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()), wan)


# -- out-of-core training over columnar day segments -------------------------


def train_models_from_store(
    store: SegmentStore,
    feature_sets: Sequence[FeatureSet],
    exact: bool = True,
    days: Optional[Sequence[int]] = None,
) -> Tuple[Tuple[HistoricalModel, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Train one :class:`HistoricalModel` per grain by streaming a store.

    Iterates the store's ``day_counts`` segments in day order, holding
    only one day's counts in memory at a time; each day is projected
    onto every grain and folded into the models with exact accumulation
    (``exact=True``, the default), so the result is bit-identical to an
    in-memory rebuild over the same days.  ``days`` restricts training
    to a subset (e.g. the service's trained window, excluding the
    still-accumulating current day); the default uses every day segment.

    Returns ``(models, days_used, days_lost)`` — a segment that fails
    the store's integrity checks is skipped and reported in
    ``days_lost``, never raised, so callers can replay the lost days
    from the pipeline.
    """
    models = tuple(HistoricalModel(fs, exact=exact) for fs in feature_sets)
    used: List[int] = []
    lost: List[int] = []
    wanted = None if days is None else frozenset(days)
    infos = sorted(
        (info for info in store.segments() if info.kind == "day_counts"),
        key=lambda info: int(info.meta.get("day", "-1")))
    for info in infos:
        if wanted is not None \
                and int(info.meta.get("day", "-1")) not in wanted:
            continue
        day = int(info.meta.get("day", "-1"))
        arrays = store.read(info.name)
        if arrays is None:
            lost.append(day)
            continue
        try:
            counts = CountsAccumulator.from_arrays(arrays)
        except (KeyError, ValueError):
            lost.append(day)
            continue
        for model in models:
            projection = counts.project(model.feature_set)
            for key, links in projection.items():
                for link_id, bytes_ in links.items():
                    model.observe_aggregate(key, link_id, bytes_)
        used.append(day)
    for model in models:
        model.finalize()
    return models, tuple(used), tuple(lost)
