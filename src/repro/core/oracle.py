"""The evaluation oracle (paper §5.1.2, Figure 5).

The oracle has perfect knowledge of the *testing* data — it knows exactly
which link received how many bytes for every flow — but is restricted to
returning at most ``k`` links per flow.  Its accuracy is the theoretical
ceiling for any model at that ``k``; comparing a model against the oracle
of the same feature set shows how much of the feasible signal the model
captures.

Mechanically it is a historical model trained on the evaluation records
themselves.
"""

from __future__ import annotations

from typing import Optional

from .features import FeatureSet
from .historical import HistoricalModel


class OracleModel(HistoricalModel):
    """A k-restricted perfect-knowledge predictor over test data."""

    def __init__(self, feature_set: FeatureSet, name: Optional[str] = None):
        super().__init__(feature_set, name=name or f"Oracle_{feature_set.name}")
