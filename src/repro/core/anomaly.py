"""Suspicious-ingress detection (paper §8).

The paper's conclusions describe using TIPSY to flag traffic arriving
where it is "exceedingly unlikely" — e.g. packets claiming US-lab source
addresses arriving on far-away peering links — as candidates for DoS
scrubbing.  The detector here scores an observation against a trained
model: an (observed flow, observed link) pair is suspicious when the
link is neither in the flow's wide predicted set nor geographically near
any predicted link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..pipeline.records import FlowContext
from ..topology.wan import CloudWAN
from .base import IngressModel


@dataclass(frozen=True)
class AnomalyVerdict:
    """The detector's judgement for one observation."""

    context: FlowContext
    link_id: int
    suspicious: bool
    reason: str
    nearest_predicted_km: Optional[float] = None


@dataclass
class AnomalyDetectorConfig:
    """Detection thresholds."""

    # how many predicted links form the flow's plausible set
    prediction_k: int = 10
    # observations beyond this distance from every predicted link are
    # suspicious (metro-level geolocation makes a wide margin sensible)
    distance_km: float = 4000.0


class IngressAnomalyDetector:
    """Flags traffic on links a flow's model says it should never use."""

    def __init__(self, model: IngressModel, wan: CloudWAN,
                 config: Optional[AnomalyDetectorConfig] = None):
        self.model = model
        self.wan = wan
        self.config = config or AnomalyDetectorConfig()

    def judge(self, context: FlowContext, link_id: int) -> AnomalyVerdict:
        """Judge one (flow, observed ingress link) observation."""
        predictions = self.model.predict(context, self.config.prediction_k)
        if not predictions:
            return AnomalyVerdict(context, link_id, False,
                                  "unknown flow: nothing to contradict")
        if any(p.link_id == link_id for p in predictions):
            return AnomalyVerdict(context, link_id, False,
                                  "link in predicted set")
        observed = self.wan.link(link_id)
        nearest = min(
            self.wan.metros.distance_km(observed.metro,
                                        self.wan.link(p.link_id).metro)
            for p in predictions
        )
        if nearest > self.config.distance_km:
            return AnomalyVerdict(
                context, link_id, True,
                f"link {nearest:.0f} km from every predicted ingress",
                nearest_predicted_km=nearest)
        return AnomalyVerdict(
            context, link_id, False,
            f"link {nearest:.0f} km from a predicted ingress",
            nearest_predicted_km=nearest)

    def scan(self, observations: Iterable[Tuple[FlowContext, int]],
             ) -> List[AnomalyVerdict]:
        """Judge a batch; returns only the suspicious verdicts."""
        return [
            verdict
            for context, link_id in observations
            if (verdict := self.judge(context, link_id)).suspicious
        ]
