"""Geographic-distance completion (paper §3.3.1, "Geographic distance of
peering") — the ``AL+G`` model.

Some flow aggregates never showed ``k`` alternative ingress links in
training even though alternatives exist.  The completion takes the base
model's best match (k=1, *ignoring* the availability prior so a withdrawn
top link still anchors the geography), reads off its peer AS and metro,
and appends that AS's other peering links ranked by geographic distance —
hot-potato routing says the nearest surviving link of the same peer is
where traffic most likely lands (paper §5.3: "hot potato routing is not
uncommon for outages").
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..pipeline.records import FlowContext
from ..topology.wan import CloudWAN
from .base import NO_LINKS, IngressModel, Prediction


class GeoAugmentedModel(IngressModel):
    """Wraps a base model, completing rankings with geographic fallback."""

    def __init__(self, base: IngressModel, wan: CloudWAN,
                 name: Optional[str] = None):
        self.base = base
        self.wan = wan
        self.name = name or f"{base.name}+G"

    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        predictions = list(self.base.predict(context, k, unavailable))
        if len(predictions) >= k:
            return predictions
        anchor = self.base.predict(context, 1)
        if not anchor:
            return predictions
        anchor_link = self.wan.link(anchor[0].link_id)
        have = {p.link_id for p in predictions}
        candidates = [
            link for link in self.wan.links_of_peer(anchor_link.peer_asn)
            if link.link_id not in have and link.link_id not in unavailable
        ]
        candidates.sort(key=lambda l: (
            self.wan.metros.distance_km(anchor_link.metro, l.metro),
            l.link_id,
        ))
        # score appended links below the base ranking's tail
        tail = predictions[-1].score if predictions else anchor[0].score
        for i, link in enumerate(candidates[: k - len(predictions)]):
            predictions.append(Prediction(link.link_id,
                                          tail * 0.5 ** (i + 1)))
        return predictions

    def has_prediction(self, context: FlowContext,
                       unavailable: FrozenSet[int] = NO_LINKS) -> bool:
        if self.base.has_prediction(context, unavailable):
            return True
        return bool(self.predict(context, 1, unavailable))

    def group_key(self, context: FlowContext) -> object:
        """The completion is a pure function of the base model's answers."""
        return self.base.group_key(context)

    def size(self) -> int:
        return getattr(self.base, "size", lambda: 0)()
