"""TIPSY core: feature sets, prediction models, accuracy metric, training.

The paper's contribution: byte-weighted historical models (Hist_A /
Hist_AP / Hist_AL), specific-to-general ensembles, the geographic
AL+G completion for never-seen withdrawals, Naive Bayes baselines and
the oracle, all scored by byte-weighted top-k accuracy (§5.1.2).  Also
home to :class:`~repro.core.service.TipsyService`, the online §4
surface: rolling-window ingestion, incremental daily retraining, and
batched ``predict_batch`` / ``what_if`` serving with a bounded memo.
"""

from .features import (
    ALL_FEATURE_SETS,
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    FEATURES_APL,
    FeatureSet,
)
from .base import NO_LINKS, IngressModel, Prediction, TrainableModel
from .historical import HistoricalModel
from .naive_bayes import NaiveBayesModel
from .ensemble import SequentialEnsemble
from .geo_augment import GeoAugmentedModel
from .oracle import OracleModel
from .accuracy import (
    ActualsMap,
    accuracy_table,
    evaluate_accuracy,
    matched_bytes,
    merge_actuals,
    total_bytes,
    volume_matched_bytes,
)
from .training import CountsAccumulator
from .anomaly import (
    AnomalyDetectorConfig,
    AnomalyVerdict,
    IngressAnomalyDetector,
)
from .service import ServiceConfig, TipsyService
from .persistence import load_model, model_from_dict, model_to_dict, save_model

__all__ = [
    "AnomalyDetectorConfig", "AnomalyVerdict", "IngressAnomalyDetector",
    "ServiceConfig", "TipsyService",
    "load_model", "model_from_dict", "model_to_dict", "save_model",
    "ALL_FEATURE_SETS", "FEATURES_A", "FEATURES_AL", "FEATURES_AP",
    "FEATURES_APL", "FeatureSet",
    "NO_LINKS", "IngressModel", "Prediction", "TrainableModel",
    "HistoricalModel", "NaiveBayesModel", "SequentialEnsemble",
    "GeoAugmentedModel", "OracleModel",
    "ActualsMap", "accuracy_table", "evaluate_accuracy", "matched_bytes",
    "merge_actuals", "total_bytes", "volume_matched_bytes",
    "CountsAccumulator",
]
