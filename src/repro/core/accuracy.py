"""Byte-weighted top-k prediction accuracy (paper §5.1.2).

Accuracy is *the sum of all bytes a model correctly matched to the actual
links that received the traffic, divided by the sum of all bytes for all
flows*.  Predicting three links is not "three guesses, one must hit": a
model only earns the bytes that genuinely arrived on links it named.

Two variants:

* ``link_matched`` (default, used for all tables): bytes arriving on any
  of the model's top-k links count as matched.  The unrestricted oracle
  scores exactly 100% under it.
* ``volume_matched`` (stricter): each predicted link only earns
  ``min(predicted fraction x flow bytes, actual bytes)``, penalising
  mis-apportioned volumes even when the link set is right.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence

from ..pipeline.records import FlowContext
from .base import NO_LINKS, IngressModel, Prediction

#: actual test traffic: flow context -> {link_id: bytes}
ActualsMap = Mapping[FlowContext, Mapping[int, float]]


def matched_bytes(actual_by_link: Mapping[int, float],
                  predictions: Sequence[Prediction]) -> float:
    """Bytes that arrived on any predicted link."""
    return sum(actual_by_link.get(p.link_id, 0.0) for p in predictions)


def volume_matched_bytes(actual_by_link: Mapping[int, float],
                         predictions: Sequence[Prediction]) -> float:
    """Bytes matched when the model must also apportion volumes."""
    total = sum(actual_by_link.values())
    return sum(
        min(p.score * total, actual_by_link.get(p.link_id, 0.0))
        for p in predictions
    )


def evaluate_accuracy(
    actuals: ActualsMap,
    model: IngressModel,
    k: int,
    unavailable: FrozenSet[int] = NO_LINKS,
    strict_volumes: bool = False,
) -> float:
    """Top-k byte-weighted accuracy of a model over evaluation actuals.

    Args:
        actuals: per-flow-context actual bytes per ingress link.
        model: the model under evaluation.
        k: prediction budget.
        unavailable: the availability prior handed to the model (links in
            outage / withdrawn during this evaluation slice).
        strict_volumes: use the volume-matched variant.

    Returns:
        Matched bytes / total bytes, in [0, 1].  0.0 if there are no bytes.
    """
    matcher = volume_matched_bytes if strict_volumes else matched_bytes
    total = 0.0
    matched = 0.0
    for context, by_link in actuals.items():
        flow_bytes = sum(by_link.values())
        if flow_bytes <= 0.0:
            continue
        total += flow_bytes
        predictions = model.predict(context, k, unavailable)
        if predictions:
            matched += matcher(by_link, predictions)
    if total <= 0.0:
        return 0.0
    return matched / total


def accuracy_table(
    actuals: ActualsMap,
    models: Sequence[IngressModel],
    ks: Sequence[int] = (1, 2, 3),
    unavailable: FrozenSet[int] = NO_LINKS,
) -> Dict[str, Dict[int, float]]:
    """Accuracy of several models at several k (one paper-table block)."""
    return {
        model.name: {
            k: evaluate_accuracy(actuals, model, k, unavailable) for k in ks
        }
        for model in models
    }


def merge_actuals(parts: Iterable[ActualsMap]) -> Dict[FlowContext, Dict[int, float]]:
    """Merge several actuals maps by summing bytes."""
    merged: Dict[FlowContext, Dict[int, float]] = {}
    for part in parts:
        for context, by_link in part.items():
            target = merged.setdefault(context, {})
            for link, bytes_ in by_link.items():
                target[link] = target.get(link, 0.0) + bytes_
    return merged


def total_bytes(actuals: ActualsMap) -> float:
    """Total bytes in an actuals map."""
    return sum(sum(v.values()) for v in actuals.values())
