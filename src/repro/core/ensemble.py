"""Sequential ensembles (paper §3.3.1, "Ensemble models").

``A/B`` means: use model A's prediction when it has one for the flow,
otherwise fall back to model B — *not* majority voting, so the most
specific (most accurate) model answers first and broader models add
transfer learning only where needed.  ``Hist_AP/AL/A`` and
``Hist_AL/AP/A`` from the paper are pre-built at the bottom.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from ..pipeline.records import FlowContext
from .base import NO_LINKS, IngressModel, Prediction


class SequentialEnsemble(IngressModel):
    """First-model-with-an-answer composition of ingress models."""

    def __init__(self, models: Sequence[IngressModel], name: Optional[str] = None):
        if not models:
            raise ValueError("an ensemble needs at least one model")
        self.models = tuple(models)
        self.name = name or "/".join(m.name for m in self.models)

    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        for model in self.models:
            predictions = model.predict(context, k, unavailable)
            if predictions:
                return predictions
        return []

    def has_prediction(self, context: FlowContext,
                       unavailable: FrozenSet[int] = NO_LINKS) -> bool:
        return any(m.has_prediction(context, unavailable) for m in self.models)

    def group_key(self, context: FlowContext) -> object:
        """Component keys jointly determine the first model that answers."""
        return tuple(m.group_key(context) for m in self.models)

    def answering_model(self, context: FlowContext,
                        unavailable: FrozenSet[int] = NO_LINKS) -> Optional[str]:
        """Which component would answer this flow (for explainability)."""
        for model in self.models:
            if model.has_prediction(context, unavailable):
                return model.name
        return None

    def size(self) -> int:
        """Sum of component sizes (paper §4.3: ensemble cost is the sum)."""
        return sum(getattr(m, "size", lambda: 0)() for m in self.models)
