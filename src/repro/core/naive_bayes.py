"""Naive Bayes ingress models (paper Appendix A).

``p(l | f) ∝ p(l) · Π p(f_i | l)`` with byte-weighted counts and Laplace
smoothing.  Unlike the historical model, Naive Bayes transfers across
tuples: it can score a tuple never seen in training from the per-feature
conditionals of similar flows — at the cost of an O(l · |features|)
prediction (paper Table 11) and generally lower accuracy (Tables 9, 10).

The implementation vectorises the per-link log-likelihoods with numpy so
that a prediction is a handful of array adds plus a top-k selection.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..pipeline.records import FlowContext
from .base import NO_LINKS, Prediction, TrainableModel
from .features import FeatureSet


class NaiveBayesModel(TrainableModel):
    """Byte-weighted multinomial Naive Bayes over the feature set."""

    def __init__(self, feature_set: FeatureSet, name: Optional[str] = None,
                 alpha: float = 1.0):
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        self.feature_set = feature_set
        self.name = name or f"NB_{feature_set.name}"
        self.alpha = alpha
        # training accumulators
        self._link_bytes: Dict[int, float] = {}
        self._feature_bytes: Tuple[Dict[Tuple[int, int], float], ...] = tuple(
            {} for _ in feature_set.fields)  # (value, link) -> bytes
        self._total = 0.0
        # frozen state
        self._links: Optional[Tuple[int, ...]] = None
        self._link_index: Dict[int, int] = {}
        self._log_prior: Optional[np.ndarray] = None
        self._log_cond: Tuple[Dict[int, np.ndarray], ...] = ()
        self._log_default: Tuple[np.ndarray, ...] = ()

    # -- training -------------------------------------------------------------

    def observe(self, context: FlowContext, link_id: int, bytes_: float) -> None:
        if bytes_ <= 0.0:
            return
        self._links = None
        self._link_bytes[link_id] = self._link_bytes.get(link_id, 0.0) + bytes_
        self._total += bytes_
        key = self.feature_set.key(context)
        for i, value in enumerate(key):
            table = self._feature_bytes[i]
            fk = (value, link_id)
            table[fk] = table.get(fk, 0.0) + bytes_

    def finalize(self) -> None:
        links = tuple(sorted(self._link_bytes))
        self._links = links
        self._link_index = {l: i for i, l in enumerate(links)}
        n = len(links)
        if n == 0:
            self._log_prior = np.zeros(0, dtype=np.float64)
            self._log_cond = tuple({} for _ in self.feature_set.fields)
            self._log_default = tuple(np.zeros(0, dtype=np.float64) for _ in self.feature_set.fields)
            return
        totals = np.array([self._link_bytes[l] for l in links],
                          dtype=np.float64)
        self._log_prior = np.log(totals / self._total)

        conds: List[Dict[int, np.ndarray]] = []
        defaults: List[np.ndarray] = []
        for i, field in enumerate(self.feature_set.fields):
            table = self._feature_bytes[i]
            values = sorted({v for (v, _l) in table})
            cardinality = max(len(values), 1)
            denom = totals + self.alpha * cardinality
            per_value: Dict[int, np.ndarray] = {}
            for value in values:
                numer = np.full(n, self.alpha, dtype=np.float64)
                for j, link in enumerate(links):
                    b = table.get((value, link))
                    if b:
                        numer[j] += b
                per_value[value] = np.log(numer / denom)
            conds.append(per_value)
            defaults.append(np.log(self.alpha / denom))
        self._log_cond = tuple(conds)
        self._log_default = tuple(defaults)

    # -- prediction -----------------------------------------------------------

    def _scores(self, context: FlowContext) -> Tuple[np.ndarray, bool]:
        """Per-link log scores and whether any feature value was known."""
        if self._links is None:
            self.finalize()
        if not self._links:
            return np.zeros(0, dtype=np.float64), False
        log_p = self._log_prior.copy()
        key = self.feature_set.key(context)
        any_known = False
        for i, value in enumerate(key):
            vec = self._log_cond[i].get(value)
            if vec is None:
                log_p += self._log_default[i]
            else:
                any_known = True
                log_p += vec
        return log_p, any_known

    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        log_p, any_known = self._scores(context)
        if log_p.size == 0 or not any_known:
            return []
        if unavailable:
            mask = np.array(
                [l in unavailable for l in self._links], dtype=np.bool_)
            if mask.all():
                return []
            log_p = np.where(mask, -np.inf, log_p)
        # normalise to probabilities for interpretable scores
        finite = log_p[np.isfinite(log_p)]
        if finite.size == 0:
            return []
        shifted = np.exp(log_p - finite.max())
        shifted[~np.isfinite(log_p)] = 0.0
        total = shifted.sum()
        if total <= 0.0:
            return []
        probs = shifted / total
        k = min(k, int(np.count_nonzero(probs > 0.0)))
        if k == 0:
            return []
        top = np.argpartition(-probs, k - 1)[:k]
        top = top[np.argsort(-probs[top], kind="stable")]
        return [Prediction(self._links[i], float(probs[i])) for i in top]

    def has_prediction(self, context: FlowContext,
                       unavailable: FrozenSet[int] = NO_LINKS) -> bool:
        log_p, any_known = self._scores(context)
        if log_p.size == 0 or not any_known:
            return False
        if unavailable:
            return any(l not in unavailable for l in self._links)
        return True

    def group_key(self, context: FlowContext) -> object:
        """Scores depend only on the projected feature tuple."""
        return self.feature_set.key(context)

    # -- introspection ----------------------------------------------------------

    def size(self) -> int:
        """Stored (feature value, link) entries + priors (Table 11 size)."""
        return len(self._link_bytes) + sum(
            len(t) for t in self._feature_bytes)
