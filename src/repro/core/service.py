"""TIPSY as an online prediction service (paper §4).

"We designed TIPSY to run online as a prediction service and to retrain
its models daily" over a rolling training window (3 weeks in §5).  The
service ingests the hourly aggregated stream, keeps per-day counts,
rebuilds the model suite when the day rolls over, and serves the two
queries the CMS needs:

* ``predict`` — top-k ingress links for one flow under an availability
  prior, answered by the best general-purpose model (the AP-led
  ensemble, with AL+G for availability-constrained queries);
* ``what_if`` — given flows and a hypothetical withdrawal set, the
  predicted byte spill per link (paper §4.4's safety question).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..pipeline.records import AggRecord, FlowContext
from ..topology.wan import CloudWAN
from .base import NO_LINKS, IngressModel, Prediction
from .ensemble import SequentialEnsemble
from .features import FEATURES_A, FEATURES_AL, FEATURES_AP
from .geo_augment import GeoAugmentedModel
from .historical import HistoricalModel
from .training import CountsAccumulator


@dataclass
class ServiceConfig:
    """Rolling-window and retraining policy."""

    training_window_days: int = 21
    prediction_k: int = 3
    # model answering plain predictions
    primary_model: str = "Hist_AP/AL/A"
    # model answering availability-constrained (withdrawal) questions
    withdrawal_model: str = "Hist_AL+G"


class TipsyService:
    """Rolling-window, daily-retrained ingress prediction service."""

    def __init__(self, wan: CloudWAN, config: Optional[ServiceConfig] = None):
        self.wan = wan
        self.config = config or ServiceConfig()
        # day -> that day's finest-grain counts
        self._days: "OrderedDict[int, CountsAccumulator]" = OrderedDict()
        self._current_day: Optional[int] = None
        self._models: Dict[str, IngressModel] = {}
        self._trained_on: Tuple[int, ...] = ()
        self.retrain_count = 0

    # -- ingestion ------------------------------------------------------------

    def ingest_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        """Feed one hour of the aggregated telemetry stream.

        Crossing into a new day triggers a retrain over the rolling
        window (the paper retrains daily).
        """
        day = hour // 24
        if self._current_day is not None and day < self._current_day:
            raise ValueError("telemetry must be ingested in time order")
        if day != self._current_day:
            self._current_day = day
            self._days.setdefault(day, CountsAccumulator())
            self._evict_old(day)
            self.retrain()
        self._days[day].consume_hour(hour, records)

    def _evict_old(self, today: int) -> None:
        horizon = today - self.config.training_window_days
        for day in list(self._days):
            if day < horizon:
                del self._days[day]

    # -- training ---------------------------------------------------------------

    def retrain(self) -> None:
        """Rebuild the model suite from the rolling window's counts."""
        merged = CountsAccumulator()
        trained_on = []
        for day, counts in self._days.items():
            if day == self._current_day:
                continue  # today is still accumulating
            merged.merge(counts)
            trained_on.append(day)
        hist_a = HistoricalModel(FEATURES_A)
        hist_ap = HistoricalModel(FEATURES_AP)
        hist_al = HistoricalModel(FEATURES_AL)
        merged.fit([hist_a, hist_ap, hist_al])
        self._models = {
            "Hist_A": hist_a,
            "Hist_AP": hist_ap,
            "Hist_AL": hist_al,
            "Hist_AL+G": GeoAugmentedModel(hist_al, self.wan,
                                           name="Hist_AL+G"),
            "Hist_AP/AL/A": SequentialEnsemble([hist_ap, hist_al, hist_a],
                                               name="Hist_AP/AL/A"),
        }
        self._trained_on = tuple(trained_on)
        self.retrain_count += 1

    @property
    def trained_days(self) -> Tuple[int, ...]:
        """Days of data behind the currently-served models."""
        return self._trained_on

    @property
    def ready(self) -> bool:
        return bool(self._trained_on)

    def model(self, name: str) -> IngressModel:
        if not self._models:
            raise RuntimeError("service has no trained models yet")
        return self._models[name]

    # -- queries ------------------------------------------------------------------

    def predict(self, context: FlowContext, k: Optional[int] = None,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        """Top-k ingress prediction for one flow."""
        k = k or self.config.prediction_k
        name = (self.config.withdrawal_model if unavailable
                else self.config.primary_model)
        return self.model(name).predict(context, k, unavailable)

    def what_if(
        self,
        flows: Sequence[Tuple[FlowContext, float]],
        withdrawn: FrozenSet[int],
        k: Optional[int] = None,
    ) -> Dict[int, float]:
        """Predicted per-link byte spill if ``withdrawn`` links go away.

        This is the CMS's safety question (§4.4): it passes the flows it
        wants to move and the links it would withdraw from; the answer
        is where those bytes land, byte-weighted by prediction scores.
        Bytes with no prediction are returned under link id ``-1``
        (unplaceable).
        """
        k = k or self.config.prediction_k
        model = self.model(self.config.withdrawal_model)
        spill: Dict[int, float] = {}
        for context, bytes_ in flows:
            predictions = model.predict(context, k, withdrawn)
            total = sum(p.score for p in predictions)
            if total <= 0.0:
                spill[-1] = spill.get(-1, 0.0) + bytes_
                continue
            for p in predictions:
                spill[p.link_id] = spill.get(p.link_id, 0.0) + (
                    bytes_ * p.score / total)
        return spill
