"""TIPSY as an online prediction service (paper §4).

"We designed TIPSY to run online as a prediction service and to retrain
its models daily" over a rolling training window (3 weeks in §5).  The
service ingests the hourly aggregated stream, keeps per-day counts, and
serves the two queries the CMS needs:

* ``predict`` / ``predict_batch`` — top-k ingress links under an
  availability prior, answered by the best general-purpose model (the
  AP-led ensemble, with AL+G for availability-constrained queries);
* ``what_if`` — given flows and a hypothetical withdrawal set, the
  predicted byte spill per link (paper §4.4's safety question).

Retraining is *incremental*: each completed day is projected once onto
every model's feature grain, and the daily retrain adds the day that
entered the window and exactly subtracts the day that left — O(one day's
delta) instead of O(window).  The models use exact (order-free,
correctly-rounded) accumulation, so the incrementally-maintained suite
is bit-identical to one rebuilt from scratch; ``retrain(strict_rebuild=
True)`` performs that from-scratch rebuild as an escape hatch and as the
reference the equivalence tests compare against.

Serving is *batched*: queries group flows by the answering model's
feature key and answer each distinct key once (the paper's tuple space
is far smaller than its flow space), through a bounded LRU memo that is
invalidated on every retrain.

State is *persistent*: :meth:`TipsyService.snapshot` writes the whole
rolling window — per-day counts and the exact base-model state — as
columnar segments (``repro.store``), and :meth:`TipsyService.restore`
resumes from them in a fresh process with bit-identical answers and
bit-identical future retrains.  Corrupt or missing segments degrade to
a rebuild from whatever survives (``docs/storage.md``); restarting a
daemon costs a segment load, not a window recomputation.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (AbstractSet, Callable, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Tuple, Union)

import numpy as np

from ..obs import runtime as obs
from ..pipeline.records import AggRecord, FlowContext
from ..store import SegmentStore
from ..topology.wan import CloudWAN
from .base import NO_LINKS, IngressModel, Prediction
from .ensemble import SequentialEnsemble
from .features import FEATURES_A, FEATURES_AL, FEATURES_AP
from .geo_augment import GeoAugmentedModel
from .historical import HistoricalModel
from .training import CountsAccumulator

#: one day's counts projected onto a feature grain: key -> link -> bytes
GrainProjection = Dict[Tuple[object, ...], Dict[int, float]]

#: flow-group answer: the group's predictions plus its summed bytes
GroupAnswer = Tuple[Tuple[Prediction, ...], float]


def group_flows(
    group_key: Callable[[FlowContext], object],
    flows: Sequence[Tuple[FlowContext, float]],
) -> Tuple[List[object], List[FlowContext], List[float]]:
    """Group byte-weighted flows by a model's feature key.

    Returns aligned (keys, representative contexts, summed bytes) in
    first-occurrence order.  Both the single-process ``what_if`` and the
    sharded daemon (:mod:`repro.serve`) group through this one function,
    so their byte accumulation order — and therefore their float sums —
    are identical by construction.
    """
    group_index: Dict[object, int] = {}
    group_keys: List[object] = []
    group_contexts: List[FlowContext] = []
    group_bytes: List[float] = []
    for context, bytes_ in flows:
        key = group_key(context)
        index = group_index.get(key)
        if index is None:
            group_index[key] = len(group_contexts)
            group_keys.append(key)
            group_contexts.append(context)
            group_bytes.append(bytes_)
        else:
            group_bytes[index] += bytes_
    return group_keys, group_contexts, group_bytes


def spill_from_groups(groups: Iterable[GroupAnswer]) -> Dict[int, float]:
    """Per-link byte spill from grouped predictions.

    The accumulation half of ``what_if``: byte-weight each group's
    predictions by score, sum per link with numpy, and report bytes with
    no prediction under link id ``-1``.  Shared by
    :meth:`TipsyService.what_if` and the sharded daemon so both paths
    produce bit-identical spill for the same groups in the same order.
    """
    link_ids: List[int] = []
    link_weights: List[float] = []
    unplaceable = 0.0
    for predictions, bytes_ in groups:
        total = sum(p.score for p in predictions)
        if total <= 0.0:
            unplaceable += bytes_
            continue
        for p in predictions:
            link_ids.append(p.link_id)
            link_weights.append(bytes_ * p.score / total)
    spill: Dict[int, float] = {}
    if link_ids:
        links = np.asarray(link_ids, dtype=np.int64)
        unique, inverse = np.unique(links, return_inverse=True)
        sums = np.bincount(inverse.ravel(),
                           weights=np.asarray(link_weights,
                                              dtype=np.float64),
                           minlength=len(unique))
        spill = {int(link): float(total_)
                 for link, total_
                 in zip(unique.tolist(), sums.tolist())}
    if unplaceable > 0.0:
        spill[-1] = spill.get(-1, 0.0) + unplaceable
    return spill

#: snapshot layout version, stamped into the store manifest meta; bump
#: on any change to segment naming, column sets, or the state dict
SNAPSHOT_FORMAT = 1


class SnapshotError(RuntimeError):
    """The directory holds no usable snapshot (absent/corrupt manifest).

    Raised only when there is nothing to restore *from* — per-segment
    corruption never raises; it degrades (see :class:`RestoreReport`).
    """


@dataclass(frozen=True)
class RestoreReport:
    """What a snapshot restore recovered, lost, and had to rebuild.

    ``days_lost`` lists day segments that failed the store's integrity
    checks (missing file, bad checksum, version skew, undecodable
    columns) — the caller can replay exactly those days from the
    pipeline.  ``models_rebuilt`` is True when the trained model
    segments could not be used (corrupt, absent, or referencing a lost
    day) and the suite was rebuilt from the surviving day counts
    instead.
    """

    days_restored: Tuple[int, ...]
    days_lost: Tuple[int, ...]
    models_rebuilt: bool
    degraded: Tuple[Tuple[str, str], ...]

    @property
    def clean(self) -> bool:
        """True when nothing was lost and nothing had to be rebuilt."""
        return not self.days_lost and not self.models_rebuilt


@dataclass
class ServiceConfig:
    """Rolling-window, retraining and serving policy."""

    training_window_days: int = 21
    prediction_k: int = 3
    # model answering plain predictions
    primary_model: str = "Hist_AP/AL/A"
    # model answering availability-constrained (withdrawal) questions
    withdrawal_model: str = "Hist_AL+G"
    # bounded LRU memo of (model, feature key, availability, k) answers;
    # invalidated on retrain
    memo_size: int = 65536


class PredictionMemo:
    """Bounded LRU memo of prediction answers with hit/miss counters."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: "OrderedDict[Tuple[object, ...], Tuple[Prediction, ...]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple[object, ...]
            ) -> Optional[Tuple[Prediction, ...]]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Tuple[object, ...],
            value: Tuple[Prediction, ...]) -> None:
        if self.maxsize <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every memoized answer (counters are kept)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class TipsyService:
    """Rolling-window, daily-retrained ingress prediction service."""

    #: feature grains of the base model suite, in ensemble order
    _GRAINS = (FEATURES_AP, FEATURES_AL, FEATURES_A)

    def __init__(self, wan: CloudWAN, config: Optional[ServiceConfig] = None):
        self.wan = wan
        self.config = config or ServiceConfig()
        # day -> that day's finest-grain counts
        self._days: "OrderedDict[int, CountsAccumulator]" = OrderedDict()
        # day -> its counts projected onto each base model's grain,
        # computed once when the day completes and reused at eviction
        self._projections: Dict[int, Tuple[GrainProjection, ...]] = {}
        self._current_day: Optional[int] = None
        self._last_hour: Optional[int] = None
        # base models in _GRAINS order (AP, AL, A); exact accumulation so
        # window subtraction is bit-exact
        self._base: Optional[Tuple[HistoricalModel, ...]] = None
        self._models: Dict[str, IngressModel] = {}
        self._trained_on: Tuple[int, ...] = ()
        self.retrain_count = 0
        self._memo = PredictionMemo(self.config.memo_size)
        #: set by :meth:`restore`; None on a service built from scratch
        self.restore_report: Optional[RestoreReport] = None

    # -- ingestion ------------------------------------------------------------

    def ingest_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        """Feed one hour of the aggregated telemetry stream.

        Hours must arrive in time order (equal hours may repeat, e.g.
        several telemetry batches of the same hour).  Crossing into a
        new day triggers a retrain over the rolling window (the paper
        retrains daily).
        """
        if self._last_hour is not None and hour < self._last_hour:
            raise ValueError("telemetry must be ingested in time order")
        self._last_hour = hour
        day = hour // 24
        if day != self._current_day:
            self._current_day = day
            self._days.setdefault(day, CountsAccumulator())
            self._evict_old(day)
            self.retrain()
        self._days[day].consume_hour(hour, records)
        if obs.enabled():
            obs.count("service.ingest.hours")
            obs.count("service.ingest.records", float(len(records)))

    def _evict_old(self, today: int) -> None:
        horizon = today - self.config.training_window_days
        for day in list(self._days):
            if day < horizon:
                del self._days[day]

    # -- training ---------------------------------------------------------------

    def _project_day(self, day: int, fresh: bool = False
                     ) -> Tuple[GrainProjection, ...]:
        """The day's counts at each base grain (computed once, cached)."""
        projections = None if fresh else self._projections.get(day)
        if projections is None:
            counts = self._days[day]
            projections = tuple(counts.project(fs) for fs in self._GRAINS)
            self._projections[day] = projections
        return projections

    @staticmethod
    def _apply_projection(model: HistoricalModel,
                          projection: GrainProjection,
                          sign: int) -> None:
        if sign > 0:
            for key, links in projection.items():
                for link_id, bytes_ in links.items():
                    model.observe_aggregate(key, link_id, bytes_)
        else:
            for key, links in projection.items():
                for link_id, bytes_ in links.items():
                    model.unobserve_aggregate(key, link_id, bytes_)

    def retrain(self, strict_rebuild: bool = False) -> None:
        """Bring the model suite up to date with the rolling window.

        The default path is incremental: only the days that entered or
        left the window since the last retrain are applied, as exact
        deltas, and rankings re-freeze lazily per touched tuple.
        ``strict_rebuild=True`` discards the suite and rebuilds it from
        the per-day counts from scratch — the escape hatch, and the
        reference that incremental maintenance is provably (bit-for-bit)
        equivalent to.
        """
        with obs.timed("service.retrain"):
            self._retrain(strict_rebuild)
        if obs.enabled():
            obs.count("service.retrain.strict" if strict_rebuild
                      else "service.retrain.incremental")
            self.export_gauges()

    def _retrain(self, strict_rebuild: bool) -> None:
        target = tuple(sorted(
            day for day in self._days if day != self._current_day))
        if strict_rebuild or self._base is None:
            base = tuple(
                HistoricalModel(fs, exact=True) for fs in self._GRAINS)
            for day in target:
                projections = self._project_day(day, fresh=strict_rebuild)
                for model, projection in zip(base, projections):
                    self._apply_projection(model, projection, +1)
            for model in base:
                model.finalize()
            self._base = base
            self._install_models(base)
        else:
            trained = set(self._trained_on)
            wanted = set(target)
            for day in sorted(wanted - trained):
                projections = self._project_day(day)
                for model, projection in zip(self._base, projections):
                    self._apply_projection(model, projection, +1)
            for day in sorted(trained - wanted):
                projections = self._projections[day]
                for model, projection in zip(self._base, projections):
                    self._apply_projection(model, projection, -1)
            # wrapper models hold references to the base suite, so the
            # served dict needs no rebuild on the incremental path
        for day in [d for d in self._projections if d not in self._days]:
            del self._projections[day]
        self._trained_on = target
        self.retrain_count += 1
        self._memo.clear()

    def _install_models(self, base: Tuple[HistoricalModel, ...]) -> None:
        """Build the served model dict around a base suite (AP, AL, A)."""
        ap, al, a = base
        self._models = {
            "Hist_AP": ap,
            "Hist_AL": al,
            "Hist_A": a,
            "Hist_AL+G": GeoAugmentedModel(al, self.wan,
                                           name="Hist_AL+G"),
            "Hist_AP/AL/A": SequentialEnsemble([ap, al, a],
                                               name="Hist_AP/AL/A"),
        }

    @property
    def trained_days(self) -> Tuple[int, ...]:
        """Days of data behind the currently-served models."""
        return self._trained_on

    @property
    def ready(self) -> bool:
        return bool(self._trained_on)

    def model(self, name: str) -> IngressModel:
        if not self._models:
            raise RuntimeError("service has no trained models yet")
        return self._models[name]

    def window_counts(self) -> CountsAccumulator:
        """The merged finest-grain counts behind the served models."""
        merged = CountsAccumulator()
        for day in self._trained_on:
            counts = self._days.get(day)
            if counts is not None:
                merged.merge(counts)
        return merged

    # -- snapshot / restore -------------------------------------------------------

    def snapshot(self, directory: Union[str, Path]) -> SegmentStore:
        """Persist the full rolling-window state as a columnar store.

        Writes one ``day_counts`` segment per window day (finest-grain
        counts, accumulation order preserved) and one ``model_grain``
        segment per base model (counts *plus* the exact Shewchuk
        partials), under a checksummed manifest carrying the service
        config and scalars.  Everything a fresh process needs to resume
        the window exactly where it left off — :meth:`restore` of an
        intact snapshot is bit-identical to never having restarted.

        Returns the written :class:`~repro.store.SegmentStore`.
        """
        with obs.timed("service.snapshot"):
            store = SegmentStore(directory, create=True)
            for day, counts in self._days.items():
                arrays = counts.to_arrays()
                store.write(f"day-{day:06d}", arrays, kind="day_counts",
                            rows=len(arrays["value"]),
                            meta={"day": str(day)})
            if self._base is not None:
                for model in self._base:
                    arrays = model.to_arrays()
                    store.write(f"model-{model.feature_set.name}", arrays,
                                kind="model_grain",
                                rows=len(arrays["value"]),
                                meta={"features": model.feature_set.name})
            store.set_meta({
                "snapshot_format": str(SNAPSHOT_FORMAT),
                "config": json.dumps(asdict(self.config), sort_keys=True),
                "state": json.dumps({
                    "current_day": self._current_day,
                    "last_hour": self._last_hour,
                    "trained_on": list(self._trained_on),
                    "retrain_count": self.retrain_count,
                    "has_models": self._base is not None,
                }, sort_keys=True),
            })
        if obs.enabled():
            obs.count("service.snapshot.writes")
            obs.gauge_set("service.snapshot.bytes",
                          float(store.total_bytes()))
        return store

    @classmethod
    def _load_base(cls, store: SegmentStore,
                   ) -> Optional[Tuple[HistoricalModel, ...]]:
        """The snapshotted base suite, or None if any grain is degraded."""
        models: List[HistoricalModel] = []
        for fs in cls._GRAINS:
            arrays = store.read(f"model-{fs.name}")
            if arrays is None:
                return None
            try:
                model = HistoricalModel.from_arrays(arrays, fs, exact=True)
            except (KeyError, ValueError):
                return None
            models.append(model)
        return tuple(models)

    @classmethod
    def restore(cls, directory: Union[str, Path], wan: CloudWAN,
                rebuild_models: bool = False) -> "TipsyService":
        """Resume a service from a :meth:`snapshot` directory.

        An intact snapshot restores bit-identically: the returned
        service answers ``predict_batch``/``what_if`` byte-equal to the
        uninterrupted original *and* keeps doing so as ingestion
        continues (the exact partials make future window evictions
        invert precisely).  Per-segment corruption degrades instead of
        erroring: lost days are dropped (and reported), a damaged model
        segment triggers a rebuild from the surviving day counts —
        ``rebuild_models=True`` forces that path, which is also the
        out-of-core benchmark's measured case.  Check
        ``service.restore_report`` for what happened; only an unusable
        manifest raises :class:`SnapshotError`.
        """
        with obs.timed("service.restore"):
            store = SegmentStore(directory)
            state_raw = store.meta.get("state")
            if (store.meta.get("snapshot_format") != str(SNAPSHOT_FORMAT)
                    or state_raw is None):
                raise SnapshotError(
                    f"{directory}: no usable snapshot (manifest absent, "
                    f"corrupt, or version-skewed)")
            config_raw = store.meta.get("config")
            try:
                config = (ServiceConfig(**json.loads(config_raw))
                          if config_raw else None)
                state = json.loads(state_raw)
            except (TypeError, ValueError) as error:
                raise SnapshotError(
                    f"{directory}: snapshot metadata unusable "
                    f"({error})") from None
            service = cls(wan, config)
            days_restored: List[int] = []
            days_lost: List[int] = []
            day_infos = sorted(
                (info for info in store.segments()
                 if info.kind == "day_counts"),
                key=lambda info: int(info.meta.get("day", "-1")))
            for info in day_infos:
                day = int(info.meta.get("day", "-1"))
                arrays = store.read(info.name)
                if arrays is None:
                    days_lost.append(day)
                    continue
                try:
                    counts = CountsAccumulator.from_arrays(arrays)
                except (KeyError, ValueError):
                    days_lost.append(day)
                    continue
                service._days[day] = counts
                days_restored.append(day)
            service._current_day = state.get("current_day")
            service._last_hour = state.get("last_hour")
            trained_on = tuple(int(day)
                               for day in state.get("trained_on", []))
            base = None
            if (not rebuild_models and state.get("has_models")
                    and not set(days_lost).intersection(trained_on)):
                base = cls._load_base(store)
            models_rebuilt = False
            if base is not None:
                service._base = base
                service._install_models(base)
                service._trained_on = trained_on
                # projections back future evictions; recomputing them
                # from the restored counts reproduces the originals
                # exactly (same dicts, same iteration order)
                for day in trained_on:
                    if day in service._days:
                        service._project_day(day)
            elif service._days:
                models_rebuilt = True
                service.retrain()
            service.retrain_count = int(state.get("retrain_count", 0))
            service.restore_report = RestoreReport(
                days_restored=tuple(days_restored),
                days_lost=tuple(days_lost),
                models_rebuilt=models_rebuilt,
                degraded=tuple(store.degraded))
        if obs.enabled():
            obs.count("service.restore.count")
            obs.count("service.restore.days_lost", float(len(days_lost)))
        return service

    # -- queries ------------------------------------------------------------------

    def _query_model(self, unavailable: FrozenSet[int]
                     ) -> Tuple[str, IngressModel]:
        name = (self.config.withdrawal_model if unavailable
                else self.config.primary_model)
        return name, self.model(name)

    def _predict_grouped(self, name: str, model: IngressModel,
                         group_key: object, context: FlowContext, k: int,
                         unavailable: FrozenSet[int]
                         ) -> Tuple[Prediction, ...]:
        memo_key = (name, group_key, k, unavailable)
        cached = self._memo.get(memo_key)
        if cached is None:
            cached = tuple(model.predict(context, k, unavailable))
            self._memo.put(memo_key, cached)
        return cached

    def predict(self, context: FlowContext, k: Optional[int] = None,
                unavailable: AbstractSet[int] = NO_LINKS) -> List[Prediction]:
        """Top-k ingress prediction for one flow."""
        k = k or self.config.prediction_k
        prior = frozenset(unavailable)
        name, model = self._query_model(prior)
        return list(self._predict_grouped(
            name, model, model.group_key(context), context, k, prior))

    def predict_batch(self, contexts: Sequence[FlowContext],
                      k: Optional[int] = None,
                      unavailable: AbstractSet[int] = NO_LINKS,
                      ) -> List[List[Prediction]]:
        """Top-k predictions for many flows at once.

        Flows are grouped by the answering model's feature key and each
        distinct key is answered once — with the memo warm, a batch of a
        million flows over a few thousand tuples costs a few thousand
        model lookups plus fan-out.
        """
        k = k or self.config.prediction_k
        prior = frozenset(unavailable)
        name, model = self._query_model(prior)
        group_key = model.group_key
        answers: Dict[object, Tuple[Prediction, ...]] = {}
        out: List[List[Prediction]] = []
        with obs.timed("service.predict_batch"):
            for context in contexts:
                key = group_key(context)
                cached = answers.get(key)
                if cached is None:
                    cached = self._predict_grouped(
                        name, model, key, context, k, prior)
                    answers[key] = cached
                out.append(list(cached))
        if obs.enabled():
            obs.count("service.predict.batches")
            obs.count("service.predict.flows", float(len(out)))
            obs.count("service.predict.groups", float(len(answers)))
        return out

    def what_if(
        self,
        flows: Sequence[Tuple[FlowContext, float]],
        withdrawn: AbstractSet[int],
        k: Optional[int] = None,
    ) -> Dict[int, float]:
        """Predicted per-link byte spill if ``withdrawn`` links go away.

        This is the CMS's safety question (§4.4): it passes the flows it
        wants to move and the links it would withdraw from; the answer
        is where those bytes land, byte-weighted by prediction scores.
        Bytes with no prediction are returned under link id ``-1``
        (unplaceable).

        Flows are grouped by the withdrawal model's feature key: each
        distinct key is predicted once and the spill is accumulated with
        numpy over the grouped byte totals.  See
        :meth:`what_if_per_flow` for the walk-one-flow-at-a-time
        reference implementation this is benchmarked against.
        """
        if obs.enabled():
            obs.count("service.what_if.calls")
            obs.count("service.what_if.flows", float(len(flows)))
        with obs.timed("service.what_if"):
            model = self.model(self.config.withdrawal_model)
            _keys, group_contexts, group_bytes = group_flows(
                model.group_key, flows)
            if not group_contexts:
                return {}
            predictions = self.withdrawal_predictions(
                group_contexts, k, withdrawn)
            return spill_from_groups(zip(predictions, group_bytes))

    def withdrawal_predictions(
        self,
        contexts: Sequence[FlowContext],
        k: Optional[int] = None,
        withdrawn: AbstractSet[int] = NO_LINKS,
    ) -> List[Tuple[Prediction, ...]]:
        """Per-context predictions of the withdrawal model, memoized.

        The building block the sharded daemon scatters: each shard
        answers its own contexts and the parent re-runs the exact
        :func:`spill_from_groups` accumulation, so a sharded ``what_if``
        is bit-identical to the single-process one.
        """
        k = k or self.config.prediction_k
        prior = frozenset(withdrawn)
        name = self.config.withdrawal_model
        model = self.model(name)
        group_key = model.group_key
        return [self._predict_grouped(name, model, group_key(context),
                                      context, k, prior)
                for context in contexts]

    def what_if_per_flow(
        self,
        flows: Sequence[Tuple[FlowContext, float]],
        withdrawn: AbstractSet[int],
        k: Optional[int] = None,
    ) -> Dict[int, float]:
        """Reference ``what_if``: one model walk per flow, no batching."""
        k = k or self.config.prediction_k
        prior = frozenset(withdrawn)
        model = self.model(self.config.withdrawal_model)
        spill: Dict[int, float] = {}
        for context, bytes_ in flows:
            predictions = model.predict(context, k, prior)
            total = sum(p.score for p in predictions)
            if total <= 0.0:
                spill[-1] = spill.get(-1, 0.0) + bytes_
                continue
            for p in predictions:
                spill[p.link_id] = spill.get(p.link_id, 0.0) + (
                    bytes_ * p.score / total)
        return spill

    # -- observability -------------------------------------------------------------

    def clear_memo(self) -> None:
        """Drop memoized answers (e.g. before a cold-path measurement)."""
        self._memo.clear()

    def cache_stats(self) -> Dict[str, int]:
        """Serving-cache occupancy and efficiency, for logs and benches."""
        return {
            "memo_entries": len(self._memo),
            "memo_hits": self._memo.hits,
            "memo_misses": self._memo.misses,
            "memo_evictions": self._memo.evictions,
        }

    def export_gauges(self) -> None:
        """Publish serving state to the obs registry (no-op when off).

        Called automatically at the end of every retrain; callers that
        want fresher memo numbers between retrains (the CLI, benches)
        may call it directly.
        """
        if not obs.enabled():
            return
        obs.set_gauges({key: float(value)
                        for key, value in self.cache_stats().items()},
                       prefix="service.")
        obs.gauge_set("service.trained_days", float(len(self._trained_on)))
        obs.gauge_set("service.retrain_count", float(self.retrain_count))
