"""Historical models (paper §3.3.1).

``p(l | f) = B(f, l) / B(f)`` — the byte-weighted empirical distribution
of ingress links per flow tuple.  Training is a single counting pass;
prediction is a lookup, exactly the O(n)/O(1) costs of paper Table 3.

The defining limitation (and strength) is the absence of transfer
learning: a link never observed for a tuple can never be predicted for
it, and a tuple never observed yields no prediction at all — which is why
the ensembles of :mod:`repro.core.ensemble` exist.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..pipeline.records import FlowContext
from .base import NO_LINKS, Prediction, TrainableModel
from .features import FeatureSet


class HistoricalModel(TrainableModel):
    """Byte-weighted empirical link distribution per feature tuple."""

    def __init__(self, feature_set: FeatureSet, name: Optional[str] = None,
                 keep_top: Optional[int] = None):
        """
        Args:
            feature_set: which features form the flow tuple.
            name: display name; defaults to ``Hist_<features>``.
            keep_top: optionally truncate each tuple's ranking to its top
                entries at finalize time (the paper keeps "only the top k
                links" in the trained model to bound size).
        """
        self.feature_set = feature_set
        self.name = name or f"Hist_{feature_set.name}"
        self.keep_top = keep_top
        self._counts: Dict[Tuple[object, ...], Dict[int, float]] = {}
        self._ranked: Optional[Dict[Tuple[object, ...],
                                 Tuple[Prediction, ...]]] = None

    # -- training -------------------------------------------------------------

    def observe(self, context: FlowContext, link_id: int, bytes_: float) -> None:
        if bytes_ <= 0.0:
            return
        key = self.feature_set.key(context)
        links = self._counts.get(key)
        if links is None:
            links = {}
            self._counts[key] = links
        links[link_id] = links.get(link_id, 0.0) + bytes_
        self._ranked = None

    def finalize(self) -> None:
        ranked: Dict[Tuple[object, ...], Tuple[Prediction, ...]] = {}
        for key, links in self._counts.items():
            total = sum(links.values())
            if total <= 0.0:
                continue
            ordered = sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))
            if self.keep_top is not None:
                ordered = ordered[: self.keep_top]
            ranked[key] = tuple(
                Prediction(link, b / total) for link, b in ordered)
        self._ranked = ranked

    # -- prediction -----------------------------------------------------------

    def _ranking_for(self, context: FlowContext) -> Tuple[Prediction, ...]:
        if self._ranked is None:
            self.finalize()
        return self._ranked.get(self.feature_set.key(context), ())

    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        ranking = self._ranking_for(context)
        if not unavailable:
            return list(ranking[:k])
        out: List[Prediction] = []
        for pred in ranking:
            if pred.link_id not in unavailable:
                out.append(pred)
                if len(out) == k:
                    break
        return out

    def has_prediction(self, context: FlowContext,
                       unavailable: FrozenSet[int] = NO_LINKS) -> bool:
        ranking = self._ranking_for(context)
        if not unavailable:
            return bool(ranking)
        return any(p.link_id not in unavailable for p in ranking)

    # -- introspection ----------------------------------------------------------

    def size(self) -> int:
        """Number of stored flow tuples (model size, paper Table 3)."""
        return len(self._counts)

    def tuples(self) -> Tuple[Tuple[object, ...], ...]:
        return tuple(self._counts)

    def bytes_for(self, context: FlowContext) -> Dict[int, float]:
        """Raw training byte counts per link for a flow (for analysis)."""
        return dict(self._counts.get(self.feature_set.key(context), {}))
