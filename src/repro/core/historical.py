"""Historical models (paper §3.3.1).

``p(l | f) = B(f, l) / B(f)`` — the byte-weighted empirical distribution
of ingress links per flow tuple.  Training is a single counting pass;
prediction is a lookup, exactly the O(n)/O(1) costs of paper Table 3.

The defining limitation (and strength) is the absence of transfer
learning: a link never observed for a tuple can never be predicted for
it, and a tuple never observed yields no prediction at all — which is why
the ensembles of :mod:`repro.core.ensemble` exist.

Two training disciplines share this class:

* the default batch mode: ``observe`` everything, ``finalize`` once —
  plain float accumulation, the fastest path for one-shot evaluation;
* *exact* mode (``exact=True``): per-(tuple, link) sums are kept as
  exact Shewchuk partials (:mod:`repro.util.exactsum`), which makes
  :meth:`unobserve`/:meth:`unobserve_aggregate` perfectly invert earlier
  observations.  A rolling-window service can then subtract the day that
  left the window and add the day that entered, and end up with counts —
  and therefore rankings — bit-identical to a from-scratch rebuild.

Rankings are maintained lazily: observing a tuple only invalidates that
tuple's ranking, so an incremental update never forces a full
re-finalize of the whole model.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple, cast

import numpy as np

from ..pipeline.records import FlowContext
from ..store.codec import (decode_ragged, encode_keyed_table, encode_ragged,
                           key_column_names)
from ..util.exactsum import exact_add, exact_sub, exact_value
from .base import NO_LINKS, Prediction, TrainableModel
from .features import FeatureSet

#: a model key: the projection of a flow context onto a feature set
TupleKey = Tuple[object, ...]


class HistoricalModel(TrainableModel):
    """Byte-weighted empirical link distribution per feature tuple."""

    def __init__(self, feature_set: FeatureSet, name: Optional[str] = None,
                 keep_top: Optional[int] = None, exact: bool = False):
        """
        Args:
            feature_set: which features form the flow tuple.
            name: display name; defaults to ``Hist_<features>``.
            keep_top: optionally truncate each tuple's ranking to its top
                entries at finalize time (the paper keeps "only the top k
                links" in the trained model to bound size).
            exact: keep per-(tuple, link) sums exactly (order-free,
                correctly rounded), enabling :meth:`unobserve`.  Slightly
                slower to train; required for incremental rolling-window
                maintenance.
        """
        self.feature_set = feature_set
        self.name = name or f"Hist_{feature_set.name}"
        self.keep_top = keep_top
        self.exact = exact
        self._counts: Dict[TupleKey, Dict[int, float]] = {}
        # exact mode: parallel structure of Shewchuk partials
        self._partials: Optional[Dict[TupleKey, Dict[int, List[float]]]] = (
            {} if exact else None)
        self._ranked: Optional[Dict[TupleKey, Tuple[Prediction, ...]]] = None
        # tuples whose ranking is stale relative to _ranked
        self._dirty: Set[TupleKey] = set()

    # -- training -------------------------------------------------------------

    def observe(self, context: FlowContext, link_id: int, bytes_: float) -> None:
        if bytes_ <= 0.0:
            return
        self.observe_aggregate(self.feature_set.key(context), link_id, bytes_)

    def observe_aggregate(self, key: TupleKey, link_id: int,
                          bytes_: float) -> None:
        """Accumulate bytes for an already-projected tuple key.

        Columnar/windowed trainers that pre-aggregate observations at
        this model's feature grain call this directly, skipping the
        per-record projection.
        """
        if bytes_ <= 0.0:
            return
        links = self._counts.get(key)
        if links is None:
            links = {}
            self._counts[key] = links
        if self._partials is None:
            links[link_id] = links.get(link_id, 0.0) + bytes_
        else:
            plinks = self._partials.get(key)
            if plinks is None:
                plinks = {}
                self._partials[key] = plinks
            partials = plinks.get(link_id)
            if partials is None:
                partials = plinks[link_id] = []
            exact_add(partials, bytes_)
            links[link_id] = exact_value(partials)
        if self._ranked is not None:
            self._dirty.add(key)

    def unobserve(self, context: FlowContext, link_id: int,
                  bytes_: float) -> None:
        """Exactly remove a previously-observed contribution.

        Requires ``exact=True``.  Once every byte observed for a
        (tuple, link) pair has been unobserved, the pair vanishes from
        the model — it can no longer be predicted, just as if it had
        never been seen.
        """
        if bytes_ <= 0.0:
            return
        self.unobserve_aggregate(self.feature_set.key(context), link_id,
                                 bytes_)

    def unobserve_aggregate(self, key: TupleKey, link_id: int,
                            bytes_: float) -> None:
        """Exactly remove bytes for an already-projected tuple key."""
        if bytes_ <= 0.0:
            return
        if self._partials is None:
            raise RuntimeError(
                f"{self.name}: unobserve requires a model built with "
                "exact=True")
        plinks = self._partials[key]
        partials = plinks[link_id]
        exact_sub(partials, bytes_)
        value = exact_value(partials)
        links = self._counts[key]
        if value == 0.0:
            del plinks[link_id]
            del links[link_id]
            if not links:
                del self._counts[key]
                del self._partials[key]
        else:
            links[link_id] = value
        if self._ranked is not None:
            self._dirty.add(key)

    def _rank_one(self, key: TupleKey
                  ) -> Optional[Tuple[Prediction, ...]]:
        links = self._counts.get(key)
        if not links:
            return None
        # fsum: the per-tuple total must not depend on link insertion
        # order, or incremental and batch training would disagree
        total = math.fsum(links.values())
        if total <= 0.0:
            return None
        ordered = sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))
        if self.keep_top is not None:
            ordered = ordered[: self.keep_top]
        return tuple(Prediction(link, b / total) for link, b in ordered)

    def finalize(self) -> None:
        """Bring every ranking up to date with the observed counts.

        After a full build, later observations only mark their own tuple
        stale, and ``finalize`` (or the first prediction for that tuple)
        re-ranks just the stale entries — a batch of incremental updates
        never pays for re-ranking the whole model.
        """
        ranked = self._ranked
        if ranked is None:
            ranked = {}
            for key in self._counts:
                ranking = self._rank_one(key)
                if ranking is not None:
                    ranked[key] = ranking
            self._ranked = ranked
        else:
            for key in self._dirty:
                ranking = self._rank_one(key)
                if ranking is None:
                    ranked.pop(key, None)
                else:
                    ranked[key] = ranking
        self._dirty.clear()

    # -- prediction -----------------------------------------------------------

    def _ranking_for(self, context: FlowContext) -> Tuple[Prediction, ...]:
        key = self.feature_set.key(context)
        ranked = self._ranked
        if ranked is None:
            self.finalize()
            ranked = self._ranked
            assert ranked is not None
        elif self._dirty and key in self._dirty:
            ranking = self._rank_one(key)
            if ranking is None:
                ranked.pop(key, None)
            else:
                ranked[key] = ranking
            self._dirty.discard(key)
        return ranked.get(key, ())

    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        ranking = self._ranking_for(context)
        if not unavailable:
            return list(ranking[:k])
        out: List[Prediction] = []
        for pred in ranking:
            if pred.link_id not in unavailable:
                out.append(pred)
                if len(out) == k:
                    break
        return out

    def has_prediction(self, context: FlowContext,
                       unavailable: FrozenSet[int] = NO_LINKS) -> bool:
        ranking = self._ranking_for(context)
        if not unavailable:
            return bool(ranking)
        return any(p.link_id not in unavailable for p in ranking)

    def group_key(self, context: FlowContext) -> TupleKey:
        """Predictions are constant per feature tuple (batching key)."""
        return self.feature_set.key(context)

    # -- columnar persistence --------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The trained counts as aligned columns (``repro.store``).

        One row per (tuple, link) pair in training order: ``k0..k<n-1>``
        are the feature-key fields, ``k<n>`` the link id, ``value`` the
        byte count.  In exact mode the Shewchuk partials behind each sum
        ride along as a ragged column (``partial_values`` +
        ``partial_offsets``), so a restored model can keep
        :meth:`unobserve`-ing — the rolling window resumes exactly where
        it left off, not merely with the same rounded counts.
        """
        width = len(self.feature_set.fields)
        flat: Dict[Tuple[int, ...], float] = {}
        partial_rows: List[List[float]] = []
        for key, links in self._counts.items():
            plinks = (self._partials.get(key)
                      if self._partials is not None else None)
            for link_id, bytes_ in links.items():
                flat[cast("Tuple[int, ...]", (*key, link_id))] = bytes_
                if plinks is not None:
                    partial_rows.append(plinks[link_id])
        arrays = encode_keyed_table(flat, width + 1)
        if self._partials is not None:
            values, offsets = encode_ragged(partial_rows)
            arrays["partial_values"] = values
            arrays["partial_offsets"] = offsets
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray],
                    feature_set: FeatureSet, name: Optional[str] = None,
                    keep_top: Optional[int] = None,
                    exact: bool = False) -> "HistoricalModel":
        """Rebuild a model from :meth:`to_arrays` output, rankings ready.

        ``exact=True`` requires the partials columns (written by an
        exact-mode model).  Raises ``KeyError``/``ValueError`` on a
        column set that does not match — snapshot readers treat that as
        corruption and degrade to a rebuild.
        """
        model = cls(feature_set, name=name, keep_top=keep_top, exact=exact)
        width = len(feature_set.fields)
        names = key_column_names(width + 1)
        fields = [arrays[column].tolist() for column in names]
        values = arrays["value"].tolist()
        if any(len(column) != len(values) for column in fields):
            raise ValueError("misaligned model columns")
        partial_rows: Optional[List[List[float]]] = None
        if exact:
            partial_rows = decode_ragged(arrays["partial_values"],
                                         arrays["partial_offsets"])
            if len(partial_rows) != len(values):
                raise ValueError("partials misaligned with counts")
        counts = model._counts
        partials = model._partials
        for row, packed in enumerate(zip(*fields, values)):
            key = cast(TupleKey, tuple(packed[:width]))
            link_id = packed[width]
            links = counts.get(key)
            if links is None:
                links = counts[key] = {}
            links[link_id] = packed[-1]
            if partial_rows is not None:
                assert partials is not None
                plinks = partials.get(key)
                if plinks is None:
                    plinks = partials[key] = {}
                plinks[link_id] = partial_rows[row]
        model.finalize()
        return model

    # -- introspection ----------------------------------------------------------

    def size(self) -> int:
        """Number of stored flow tuples (model size, paper Table 3)."""
        return len(self._counts)

    def tuples(self) -> Tuple[TupleKey, ...]:
        return tuple(self._counts)

    def bytes_for(self, context: FlowContext) -> Dict[int, float]:
        """Raw training byte counts per link for a flow (for analysis)."""
        return dict(self._counts.get(self.feature_set.key(context), {}))

    def rankings(self) -> Dict[TupleKey, Tuple[Prediction, ...]]:
        """Every tuple's full ranking, re-ranked if stale (a copy)."""
        self.finalize()
        assert self._ranked is not None
        return dict(self._ranked)
