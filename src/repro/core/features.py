"""Feature sets for ingress prediction (paper §3.2, Table 1).

Every model always uses the source AS and both destination features; the
sets differ in whether they add the source /24 prefix (P) and/or the
source location (L).  Because each /24 has exactly one location, APL is
equivalent to AP — mirrored here for completeness and asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Tuple

from ..pipeline.records import FlowContext


@dataclass(frozen=True)
class FeatureSet:
    """A named subset of :class:`FlowContext` fields used as a model key."""

    name: str
    fields: Tuple[str, ...]

    def __post_init__(self) -> None:
        valid = set(FlowContext._fields)
        for f in self.fields:
            if f not in valid:
                raise ValueError(f"unknown feature field {f!r}")
        # attrgetter with multiple names returns a tuple directly
        object.__setattr__(self, "_getter", attrgetter(*self.fields))

    def key(self, context: FlowContext) -> Tuple[object, ...]:
        """Extract this feature set's key tuple from a flow context."""
        got = self._getter(context)
        return got if isinstance(got, tuple) else (got,)


#: AS + destination region + destination type
FEATURES_A = FeatureSet("A", ("src_asn", "dest_region", "dest_service"))
#: A + source /24 prefix
FEATURES_AP = FeatureSet(
    "AP", ("src_asn", "src_prefix", "dest_region", "dest_service"))
#: A + source location (metro)
FEATURES_AL = FeatureSet(
    "AL", ("src_asn", "src_loc", "dest_region", "dest_service"))
#: A + prefix + location; equivalent to AP when location is a function of
#: the prefix (always true in this dataset, as in the paper's)
FEATURES_APL = FeatureSet(
    "APL", ("src_asn", "src_prefix", "src_loc", "dest_region", "dest_service"))

ALL_FEATURE_SETS: Tuple[FeatureSet, ...] = (
    FEATURES_A, FEATURES_AP, FEATURES_AL, FEATURES_APL)
