"""Model protocol and prediction types.

All TIPSY models share one interface: given a flow context, a budget of
``k`` links, and a prior of currently-unavailable links (the withdrawal /
outage being evaluated, paper §5.3.1), return up to ``k`` ranked links
with the predicted fraction of the flow's bytes on each.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, List, NamedTuple

from ..pipeline.records import FlowContext

NO_LINKS: FrozenSet[int] = frozenset()


class Prediction(NamedTuple):
    """One predicted ingress link with its byte-fraction score."""

    link_id: int
    score: float


class IngressModel(abc.ABC):
    """Interface of every ingress prediction model."""

    name: str = "model"

    @abc.abstractmethod
    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        """Top-``k`` predicted ingress links for a flow.

        Args:
            context: the flow's full feature tuple.
            k: maximum number of links to return.
            unavailable: links known to be out of service (withdrawn or in
                outage); never returned.

        Returns:
            Up to ``k`` predictions sorted by descending score; empty if
            the model has nothing to say for this flow.
        """

    def has_prediction(self, context: FlowContext,
                       unavailable: FrozenSet[int] = NO_LINKS) -> bool:
        """Whether :meth:`predict` would return at least one link."""
        return bool(self.predict(context, 1, unavailable))

    def group_key(self, context: FlowContext) -> object:
        """A hashable key under which this model's predictions are constant.

        Two contexts with the same group key (and the same ``k`` and
        availability prior) are guaranteed the same prediction, so batch
        callers answer each distinct key once and fan the result out.
        Models that project contexts onto a feature tuple return that
        tuple — far fewer distinct keys than flows (paper §3.2: the
        tuple space is much smaller than the flow space).  The safe
        default is the full context.
        """
        return context


class TrainableModel(IngressModel):
    """A model trained by single-pass, byte-weighted observation."""

    @abc.abstractmethod
    def observe(self, context: FlowContext, link_id: int,
                bytes_: float) -> None:
        """Accumulate one byte-weighted (flow, link) observation."""

    @abc.abstractmethod
    def finalize(self) -> None:
        """Freeze accumulated observations into the queryable model."""

    def size(self) -> int:
        """Number of stored entries (Table 3 / Table 11 model size)."""
        return 0
