"""Training plumbing: byte-count accumulation and model fitting.

Training every TIPSY model is a single pass over byte-weighted
(flow tuple, link) observations (paper §3.3, Table 3).  The accumulator
collects those observations at the finest granularity once; each model
then trains from the projection onto its own feature set, so a whole
model suite costs one streaming pass plus cheap in-memory fits.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

import numpy as np

from ..pipeline.records import AggColumns, AggRecord, FlowContext
from ..store.codec import encode_keyed_table, key_column_names
from .base import TrainableModel

if TYPE_CHECKING:  # avoids the pipeline <-> core import cycle at runtime
    from .features import FeatureSet


class CountsAccumulator:
    """Finest-grain (flow context, link) -> bytes accumulator.

    Implements the :class:`repro.pipeline.dataset.HourConsumer` protocol
    so it can sit directly on the aggregated hourly stream.  Columnar
    producers should prefer :meth:`add_columns` + :meth:`drain`: hours
    are buffered as arrays and reduced in one vectorised group-by whose
    per-key sums are bit-identical to the per-record walk (both
    accumulate in input order).
    """

    def __init__(self):
        self.counts: Dict[Tuple[FlowContext, int], float] = {}
        self._pending: List[AggColumns] = []

    def consume_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        counts = self.counts
        for record in records:
            key = (record.context, record.link_id)
            counts[key] = counts.get(key, 0.0) + record.bytes

    # -- columnar fast path ----------------------------------------------------

    def add_columns(self, columns: AggColumns) -> None:
        """Buffer one aggregated hour for :meth:`drain`.

        Equivalent to ``consume_hour(columns.hour, columns.to_records())``
        once drained, but defers the reduction so a whole window costs a
        single numpy group-by instead of a dict update per record.
        """
        if columns.n_records:
            self._pending.append(columns)

    def drain(self) -> None:
        """Fold every buffered hour into :attr:`counts`.

        Hours are concatenated in the order they were added, so the
        per-key byte sums match a serial record-by-record accumulation
        bit for bit (``np.bincount`` adds weights in input order).
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        # local import: aggregation imports records, not this module
        from ..pipeline.aggregation import _combine_group_codes

        def cat(column: int) -> np.ndarray:
            if len(pending) == 1:
                return pending[0][column]
            return np.concatenate([c[column] for c in pending])

        # AggColumns field order: hour, link_ids, src_asns, src_prefixes,
        # src_locs, dest_regions, dest_services, bytes
        key_columns = tuple(cat(i) for i in range(1, 7))
        bytes_ = cat(7)
        combined = _combine_group_codes(key_columns)
        _, first, inverse = np.unique(combined, return_index=True,
                                      return_inverse=True)
        sums = np.bincount(inverse.ravel(), weights=bytes_,
                           minlength=len(first))
        order = np.argsort(first, kind="stable")
        rep = first[order]  # representative rows, in first-seen key order
        link_ids, src_asns, src_prefixes, src_locs, dest_regions, \
            dest_services = key_columns
        contexts = map(tuple.__new__, itertools.repeat(FlowContext), zip(
            src_asns[rep].tolist(), src_prefixes[rep].tolist(),
            src_locs[rep].tolist(), dest_regions[rep].tolist(),
            dest_services[rep].tolist()))
        counts = self.counts
        for context, link_id, total in zip(contexts,
                                           link_ids[rep].tolist(),
                                           sums[order].tolist()):
            key = (context, link_id)
            counts[key] = counts.get(key, 0.0) + total

    def add(self, context: FlowContext, link_id: int, bytes_: float) -> None:
        if bytes_ <= 0.0:
            return
        key = (context, link_id)
        self.counts[key] = self.counts.get(key, 0.0) + bytes_

    def merge(self, other: "CountsAccumulator") -> None:
        other.drain()
        self.drain()
        for key, bytes_ in other.counts.items():
            self.counts[key] = self.counts.get(key, 0.0) + bytes_

    def subtract(self, other: "CountsAccumulator",
                 refold: Optional[Sequence["CountsAccumulator"]] = None,
                 ) -> None:
        """Remove a previously-merged accumulator's contribution.

        Without ``refold`` each key is plainly decremented — exact
        whenever byte counts are integer-valued (sums below 2**53 are
        representable), and keys that reach exactly zero are dropped.
        For arbitrary floats, pass ``refold``: the surviving parts, in
        merge order.  Every key present in ``other`` is then recomputed
        as the left-fold over the parts, which is bit-identical to
        having merged only the survivors from scratch.

        A key in ``other`` that was never merged here is a caller bug
        and raises ``KeyError``.
        """
        other.drain()
        self.drain()
        counts = self.counts
        if refold is None:
            for key, bytes_ in other.counts.items():
                value = counts[key] - bytes_
                if value == 0.0:
                    del counts[key]
                else:
                    counts[key] = value
            return
        for part in refold:
            part.drain()
        for key in other.counts:
            if key not in counts:
                raise KeyError(key)
            value = 0.0
            present = False
            for part in refold:
                contribution = part.counts.get(key)
                if contribution is not None:
                    value = value + contribution if present else contribution
                    present = True
            if present:
                counts[key] = value
            else:
                del counts[key]

    def remove(self, context: FlowContext, link_id: int) -> float:
        """Drop one (context, link) key; returns the bytes it held."""
        self.drain()
        return self.counts.pop((context, link_id), 0.0)

    # -- columnar persistence ----------------------------------------------

    #: key width of the columnar form: the 5 FlowContext fields + link id
    _ARRAY_KEY_WIDTH = len(FlowContext._fields) + 1

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The accumulated counts as aligned columns (``repro.store``).

        One row per (flow context, link) key, in accumulation order:
        ``k0..k4`` are the context fields, ``k5`` the link id, ``value``
        the byte count.  Row order is part of the format — downstream
        folds (:meth:`project`, model fits) iterate the counts dict, so
        :meth:`from_arrays` must rebuild it in the same order for a
        restored accumulator to behave bit-identically.
        """
        self.drain()
        flat: Dict[Tuple[int, ...], float] = {
            (*context, link_id): bytes_
            for (context, link_id), bytes_ in self.counts.items()}
        return encode_keyed_table(flat, self._ARRAY_KEY_WIDTH)

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray],
                    ) -> "CountsAccumulator":
        """Rebuild an accumulator from :meth:`to_arrays` output.

        Raises ``KeyError``/``ValueError`` on a column set that does not
        match the format — snapshot readers treat that as corruption and
        degrade to a rebuild.
        """
        acc = cls()
        width = len(FlowContext._fields)
        names = key_column_names(cls._ARRAY_KEY_WIDTH)
        fields = [arrays[name].tolist() for name in names]
        values = arrays["value"].tolist()
        if any(len(column) != len(values) for column in fields):
            raise ValueError("misaligned count columns")
        contexts = map(tuple.__new__, itertools.repeat(FlowContext),
                       zip(*fields[:width]))
        counts = acc.counts
        for context, link_id, bytes_ in zip(contexts, fields[width], values):
            counts[(context, link_id)] = bytes_
        return acc

    def total_bytes(self) -> float:
        self.drain()
        return sum(self.counts.values())

    def __len__(self) -> int:
        self.drain()
        return len(self.counts)

    # -- consumers -------------------------------------------------------------

    def fit(self, models: Iterable[TrainableModel]) -> None:
        """Train models from the accumulated counts (single pass each)."""
        self.drain()
        models = list(models)
        for (context, link_id), bytes_ in self.counts.items():
            for model in models:
                model.observe(context, link_id, bytes_)
        for model in models:
            model.finalize()

    def project(self, feature_set: "FeatureSet",
                ) -> Dict[Tuple[object, ...], Dict[int, float]]:
        """Aggregate the counts onto a model's feature grain.

        Returns ``{feature key: {link_id: bytes}}``, folding contexts in
        accumulation order — a deterministic function of this
        accumulator's contents.  Rolling-window trainers project each
        day once and feed models via ``observe_aggregate``, so a daily
        delta costs one pass over the day instead of one over the
        window.
        """
        self.drain()
        key_of = feature_set.key
        out: Dict[Tuple[object, ...], Dict[int, float]] = {}
        for (context, link_id), bytes_ in self.counts.items():
            links = out.setdefault(key_of(context), {})
            links[link_id] = links.get(link_id, 0.0) + bytes_
        return out

    def actuals(self) -> Dict[FlowContext, Dict[int, float]]:
        """Reshape into the evaluation :data:`ActualsMap` layout."""
        self.drain()
        out: Dict[FlowContext, Dict[int, float]] = {}
        for (context, link_id), bytes_ in self.counts.items():
            # (context, link) keys are unique, so a straight assignment
            # into the per-context dict suffices — no re-lookup needed
            out.setdefault(context, {})[link_id] = bytes_
        return out

    def top1_links(self) -> Dict[FlowContext, int]:
        """Each flow's byte-dominant link (partitioning key in §5.3)."""
        self.drain()
        best: Dict[FlowContext, Tuple[float, int]] = {}
        for (context, link_id), bytes_ in self.counts.items():
            current = best.get(context)
            if current is None or (bytes_, -link_id) > (current[0], -current[1]):
                best[context] = (bytes_, link_id)
        return {context: link for context, (_b, link) in best.items()}
