"""Training plumbing: byte-count accumulation and model fitting.

Training every TIPSY model is a single pass over byte-weighted
(flow tuple, link) observations (paper §3.3, Table 3).  The accumulator
collects those observations at the finest granularity once; each model
then trains from the projection onto its own feature set, so a whole
model suite costs one streaming pass plus cheap in-memory fits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..pipeline.records import AggRecord, FlowContext
from .base import TrainableModel


class CountsAccumulator:
    """Finest-grain (flow context, link) -> bytes accumulator.

    Implements the :class:`repro.pipeline.dataset.HourConsumer` protocol
    so it can sit directly on the aggregated hourly stream.
    """

    def __init__(self):
        self.counts: Dict[Tuple[FlowContext, int], float] = {}

    def consume_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        counts = self.counts
        for record in records:
            key = (record.context, record.link_id)
            counts[key] = counts.get(key, 0.0) + record.bytes

    def add(self, context: FlowContext, link_id: int, bytes_: float) -> None:
        if bytes_ <= 0.0:
            return
        key = (context, link_id)
        self.counts[key] = self.counts.get(key, 0.0) + bytes_

    def merge(self, other: "CountsAccumulator") -> None:
        for key, bytes_ in other.counts.items():
            self.counts[key] = self.counts.get(key, 0.0) + bytes_

    def total_bytes(self) -> float:
        return sum(self.counts.values())

    def __len__(self) -> int:
        return len(self.counts)

    # -- consumers -------------------------------------------------------------

    def fit(self, models: Iterable[TrainableModel]) -> None:
        """Train models from the accumulated counts (single pass each)."""
        models = list(models)
        for (context, link_id), bytes_ in self.counts.items():
            for model in models:
                model.observe(context, link_id, bytes_)
        for model in models:
            model.finalize()

    def actuals(self) -> Dict[FlowContext, Dict[int, float]]:
        """Reshape into the evaluation :data:`ActualsMap` layout."""
        out: Dict[FlowContext, Dict[int, float]] = {}
        for (context, link_id), bytes_ in self.counts.items():
            out.setdefault(context, {})[link_id] = (
                out.get(context, {}).get(link_id, 0.0) + bytes_)
        return out

    def top1_links(self) -> Dict[FlowContext, int]:
        """Each flow's byte-dominant link (partitioning key in §5.3)."""
        best: Dict[FlowContext, Tuple[float, int]] = {}
        for (context, link_id), bytes_ in self.counts.items():
            current = best.get(context)
            if current is None or (bytes_, -link_id) > (current[0], -current[1]):
                best[context] = (bytes_, link_id)
        return {context: link for context, (_b, link) in best.items()}
