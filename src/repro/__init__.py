"""repro — a reproduction of TIPSY (SIGCOMM 2022).

TIPSY predicts through which peering links traffic will ingress a cloud
WAN, enabling safe BGP-withdrawal-based congestion mitigation.  This
package reproduces the full system around a synthetic Internet:

* :mod:`repro.topology` — metros, AS graph, the cloud WAN
* :mod:`repro.bgp` — routing policy, propagation, ingress simulation
* :mod:`repro.traffic` — prefixes, workloads, flow generation
* :mod:`repro.telemetry` — IPFIX, BMP, Geo-IP, metadata
* :mod:`repro.pipeline` — aggregation, encoding, outage inference
* :mod:`repro.core` — the TIPSY models and accuracy metric
* :mod:`repro.cms` — congestion mitigation and risk analysis
* :mod:`repro.experiments` — scenarios and the paper's evaluation
* :mod:`repro.perf` — parallel pipeline, benchmark-regression harness
* :mod:`repro.analysis` — ``repro lint`` determinism static checks
* :mod:`repro.obs` — metrics, trace spans, ``repro obs`` export
* :mod:`repro.util` — deterministic hashing, exact sums

``docs/architecture.md`` maps the layers and the daily retrain +
serving data flow.

Quickstart::

    from repro.experiments import Scenario, ScenarioParams, EvaluationRunner

    scenario = Scenario(ScenarioParams.small(seed=7))
    result = EvaluationRunner(scenario).run()
    print(result.overall.rows["Hist_AP/AL/A"])
"""

__version__ = "1.0.0"

from .core import (
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    GeoAugmentedModel,
    HistoricalModel,
    IngressModel,
    NaiveBayesModel,
    OracleModel,
    Prediction,
    SequentialEnsemble,
)

__all__ = [
    "__version__",
    "FEATURES_A", "FEATURES_AL", "FEATURES_AP",
    "GeoAugmentedModel", "HistoricalModel", "IngressModel",
    "NaiveBayesModel", "OracleModel", "Prediction", "SequentialEnsemble",
]
