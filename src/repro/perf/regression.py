"""Benchmark-regression harness: record throughput, compare to baseline.

The performance layer is only trustworthy if it stays fast, so benchmark
runs are recorded as small JSON reports (``BENCH_<date>.json``, or
``BENCH_<date>.smoke.json`` for the quick CI profile) and every new run
is compared against the most recent committed baseline of the same
profile.  A metric that drops by more than the tolerance (30% by
default — generous enough to absorb shared-runner noise, tight enough to
catch a real slowdown) is flagged as a :class:`Regression`.

Metrics are throughputs (records or hours per second): higher is better,
and only drops count against the tolerance.  Reports additionally carry
environment context (python version, cpu count, worker count) so a
baseline from different hardware is recognisable when triaging a flag.
"""

from __future__ import annotations

import json
import platform
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: BENCH_2026-08-06.json / BENCH_2026-08-06.smoke.json
_REPORT_RE = re.compile(
    r"^BENCH_(\d{4}-\d{2}-\d{2})(?:\.(?P<profile>[a-z]+))?\.json$")

DEFAULT_TOLERANCE = 0.30


@dataclass
class BenchReport:
    """One benchmark run: named throughput metrics plus environment."""

    date: str                       # ISO date, e.g. "2026-08-06"
    profile: str = "full"           # "full" or "smoke"
    metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    def record(self, name: str, throughput: float) -> None:
        """Record one metric (units/second — higher is better)."""
        if throughput < 0.0:
            raise ValueError(f"negative throughput for {name!r}")
        self.metrics[name] = float(throughput)

    @property
    def filename(self) -> str:
        if self.profile == "full":
            return f"BENCH_{self.date}.json"
        return f"BENCH_{self.date}.{self.profile}.json"


def default_meta() -> Dict[str, str]:
    """Environment context worth keeping next to the numbers."""
    import os

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": str(os.cpu_count() or 0),
    }


@dataclass(frozen=True)
class Regression:
    """One metric that fell past the tolerance vs the baseline."""

    name: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Fractional change vs baseline (negative = slower)."""
        if self.baseline == 0.0:
            return 0.0
        return (self.current - self.baseline) / self.baseline

    def __str__(self) -> str:
        return (f"{self.name}: {self.current:,.1f}/s vs baseline "
                f"{self.baseline:,.1f}/s ({self.change:+.1%})")


def compare_reports(current: BenchReport, baseline: BenchReport,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[Regression]:
    """Metrics in ``current`` that regressed past ``tolerance``.

    Only metrics present in *both* reports are compared — a renamed or
    newly added benchmark is not a regression, and a benchmark missing
    from the current run is surfaced by the caller's own coverage, not
    here.  Improvements never flag.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    regressions = []
    for name, base_value in sorted(baseline.metrics.items()):
        cur_value = current.metrics.get(name)
        if cur_value is None or base_value <= 0.0:
            continue
        if cur_value < base_value * (1.0 - tolerance):
            regressions.append(Regression(name, base_value, cur_value))
    return regressions


# -- persistence ----------------------------------------------------------------

def save_report(report: BenchReport,
                directory: Union[str, Path]) -> Path:
    """Write a report to ``<directory>/<report.filename>``.

    A same-date report of the same profile is *merged into*, not
    overwritten: the new run wins where metric or meta names collide,
    but numbers it did not measure survive.  That makes a single-suite
    run (``--suite lint``) safe to save on a day whose baseline already
    carries the other suites' metrics.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / report.filename
    metrics: Dict[str, float] = {}
    meta: Dict[str, str] = {}
    if path.exists():
        try:
            previous = load_report(path)
        except (ValueError, KeyError):
            previous = None  # corrupt same-date file: overwrite it
        if previous is not None:
            metrics.update(previous.metrics)
            meta.update(previous.meta)
    metrics.update(report.metrics)
    meta.update(report.meta)
    payload = {
        "date": report.date,
        "profile": report.profile,
        "metrics": metrics,
        "meta": meta,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, Path]) -> BenchReport:
    payload = json.loads(Path(path).read_text())
    return BenchReport(
        date=str(payload["date"]),
        profile=str(payload.get("profile", "full")),
        metrics={str(k): float(v)
                 for k, v in payload.get("metrics", {}).items()},
        meta={str(k): str(v) for k, v in payload.get("meta", {}).items()},
    )


def find_baseline(directory: Union[str, Path], profile: str = "full",
                  before: Optional[str] = None) -> Optional[Path]:
    """The most recent committed report of ``profile`` in ``directory``.

    ``before`` (an ISO date) excludes reports dated *after* it, so a
    stray future-dated file cannot masquerade as the baseline.  A
    same-date baseline is allowed — callers compare before saving, so a
    run never reads its own freshly written report.  Returns ``None``
    when no baseline exists yet (first run in a repo).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: Optional[Path] = None
    best_date = ""
    for path in directory.iterdir():
        match = _REPORT_RE.match(path.name)
        if not match:
            continue
        report_profile = match.group("profile") or "full"
        if report_profile != profile:
            continue
        date = match.group(1)
        if before is not None and date > before:
            continue
        if date > best_date:
            best_date = date
            best = path
    return best
