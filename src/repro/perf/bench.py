"""The ``repro bench`` command: measure, record, compare.

Six suites, selectable with ``--suite`` (default runs all):

* ``pipeline`` — ingestion throughput: telemetry streaming, per-record
  vs vectorised aggregation, columnar training counts, and the
  end-to-end serial vs parallel hourly pipeline.
* ``serving`` — the online service (paper §4): incremental vs
  from-scratch daily retrain latency over the rolling window, batched
  prediction throughput, and batched vs per-flow ``what_if``.
* ``lint`` — whole-tree ``repro lint --project`` over this repo's own
  source, cold cache vs warm, plus the RA7xx determinism-dataflow and
  RA8xx lifecycle/durability stages each split into site extraction
  (the per-miss cost) and the link (the floor every warm run pays), so
  the incremental analysis cache's benefit is tracked like every other
  hot path.
* ``store`` — the persistence boundary (``repro.store``,
  ``docs/storage.md``): snapshot write throughput, restart latency to
  the first served prediction, and out-of-core retrain throughput over
  the columnar day segments.
* ``bgp`` — the routing substrate at 10x the default AS-graph scale:
  full columnar table builds, dirty-set incremental recomputation
  after single-peer withdrawals, and sustained withdrawal churn
  through the simulator's bounded table cache.

* ``soak`` — the serving daemon (``repro.serve``) under sustained
  load: a paced hourly ingest stream runs concurrently with a
  continuous query loop issuing heavy-tailed prediction batches, and
  the suite reports sustained predictions/s plus p50/p99 query latency
  (recorded as inverse seconds so the regression gate's
  higher-is-better convention applies).

Results are written as a ``BENCH_<date>.json`` report and compared
against the last committed baseline of the same profile.

Two profiles:

* ``full`` — the paper-scale scenario; the numbers behind the README's
  Performance section.
* ``smoke`` — the small scenario over a shorter window; seconds-fast,
  suitable as a CI gate.
"""

from __future__ import annotations

import ast
import datetime
import json
import os
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis import (analyze_project, check_determinism,
                        check_durability, check_lifecycle,
                        extract_det_sites, extract_dura_sites,
                        extract_life_sites, find_determinism_config,
                        find_durability_config)
from ..analysis.callgraph import (ModuleFacts, ProjectGraph,
                                  extract_facts)
from ..bgp import (IngressSimulator, SimulatorParams, compute_routing_table,
                   default_bias, update_routing_table)
from ..core.features import FEATURES_A, FEATURES_AL, FEATURES_AP
from ..core.persistence import train_models_from_store
from ..core.service import ServiceConfig, TipsyService
from ..core.training import CountsAccumulator
from ..store import SegmentStore
from ..experiments.scenario import Scenario, ScenarioParams
from ..obs import runtime as obs
from ..pipeline.aggregation import HourlyAggregator
from ..pipeline.records import AggRecord
from ..topology import (MetroCatalog, TopologyParams, WANParams,
                        generate_as_graph, generate_wan)
from ..util.hashing import unit
from .parallel import ParallelPipelineRunner, default_workers
from .regression import (
    BenchReport,
    compare_reports,
    default_meta,
    find_baseline,
    load_report,
    save_report,
)

DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")

SUITES = ("all", "pipeline", "serving", "lint", "store", "bgp", "soak")


def _best_of(fn: Callable[[], object], rounds: int = 3) -> float:
    """Seconds for one call, best of ``rounds`` (noise-resistant)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_scenario(profile: str, seed: int) -> Tuple[Scenario, int]:
    """(scenario, measured window in hours) for a profile."""
    if profile == "smoke":
        return Scenario(ScenarioParams.small(seed=seed)), 12
    return Scenario(ScenarioParams(seed=seed)), 24


def _bench_pipeline(report: BenchReport, profile: str, seed: int,
                    n_workers: int, rounds: int) -> None:
    """Ingestion throughput: streaming, aggregation, counts, pipeline."""
    t_build = time.perf_counter()
    scenario, window = _bench_scenario(profile, seed)
    print(f"world: {scenario.wan.summary()}, {len(scenario.traffic)} flows "
          f"(built in {time.perf_counter() - t_build:.1f}s); "
          f"measuring {window}h windows, best of {rounds}")

    # 1. telemetry streaming (warm the expansion caches first)
    for _ in scenario.stream(0, 2):
        pass
    elapsed = _best_of(lambda: sum(
        1 for _ in scenario.stream(0, window)), rounds)
    report.record("stream_hours_per_s", window / elapsed)
    print(f"  stream:             {window / elapsed:8.1f} hours/s")

    # 2. hourly aggregation, per-record reference vs vectorised columns
    cols = next(iter(scenario.stream(12, 13)))
    ipfix = scenario.ipfix_records_for(cols)
    arrays = scenario.ipfix_columns_for(cols)
    agg = HourlyAggregator(scenario.metadata, encoders=scenario.encoders)
    agg.aggregate_hour(cols.hour, ipfix)              # warm join caches
    serial_s = _best_of(lambda: agg.aggregate_hour(cols.hour, ipfix), rounds)
    column_s = _best_of(
        lambda: agg.aggregate_hour_columns(cols.hour, *arrays), rounds)
    report.record("aggregate_records_per_s", len(ipfix) / serial_s)
    report.record("aggregate_columnar_records_per_s", len(ipfix) / column_s)
    print(f"  aggregate (record): {len(ipfix) / serial_s:8.0f} records/s")
    print(f"  aggregate (column): {len(ipfix) / column_s:8.0f} records/s "
          f"({serial_s / column_s:.1f}x)")

    # 3. training counts from an aggregated window (columnar drain)
    with ParallelPipelineRunner(scenario=scenario,
                                n_workers=n_workers) as runner:
        hours = list(runner.iter_hour_columns(0, window, parallel=False))
        agg_records = sum(h.n_records for h in hours)

        def collect() -> int:
            counts = runner.collect_counts(0, window, parallel=False)
            return len(counts)

        counts_s = _best_of(collect, rounds)
        report.record("counts_records_per_s", agg_records / counts_s)
        print(f"  counts (columnar):  {agg_records / counts_s:8.0f} "
              "agg-records/s")

        # 4. end-to-end hourly pipeline, serial vs process pool
        serial_pipe_s = _best_of(lambda: sum(
            1 for _ in runner.iter_hour_columns(0, window, parallel=False)),
            rounds)
        report.record("pipeline_serial_hours_per_s", window / serial_pipe_s)
        print(f"  pipeline (serial):  {window / serial_pipe_s:8.1f} hours/s")
        if n_workers > 1:
            # first parallel call pays pool startup; warm before timing
            for _ in runner.iter_hour_columns(0, 2):
                pass
            par_s = _best_of(lambda: sum(
                1 for _ in runner.iter_hour_columns(0, window)), rounds)
            report.record("pipeline_parallel_hours_per_s", window / par_s)
            print(f"  pipeline ({n_workers} proc):  {window / par_s:8.1f} "
                  f"hours/s ({serial_pipe_s / par_s:.1f}x)")
        else:
            print("  pipeline (parallel): skipped (single CPU)")
    scenario.simulator.export_gauges()
    for key, value in scenario.simulator.cache_stats().items():
        report.meta[f"sim_{key}"] = str(value)


def _serving_setup(profile: str, seed: int) -> Tuple[Scenario, int]:
    """(scenario, training window in days) for the serving suite.

    The full profile uses the paper's 3-week rolling window (§5) over a
    horizon long enough to measure several post-eviction retrains.
    """
    if profile == "smoke":
        return Scenario(ScenarioParams.small(seed=seed, horizon_days=10)), 7
    return Scenario(ScenarioParams.medium(seed=seed, horizon_days=24)), 21


def _bench_serving(report: BenchReport, profile: str, seed: int,
                   rounds: int) -> None:
    """Online service: retrain latency, prediction and what-if rates."""
    t_build = time.perf_counter()
    scenario, window_days = _serving_setup(profile, seed)
    n_hours = scenario.horizon_hours
    hourly: List[List[AggRecord]] = [
        scenario.agg_records_for(cols) for cols in scenario.stream(0, n_hours)]
    print(f"serving: {len(scenario.flow_contexts)} flows, "
          f"{window_days}-day window, {n_hours // 24} days of telemetry "
          f"(built in {time.perf_counter() - t_build:.1f}s)")

    service = TipsyService(
        scenario.wan, ServiceConfig(training_window_days=window_days))
    # 1. daily retrain latency: time each first-hour-of-day ingest once
    # the window is full (it carries the eviction + incremental retrain)
    incremental_times: List[float] = []
    for hour, records in enumerate(hourly):
        if hour % 24 == 0 and hour // 24 > window_days:
            t0 = time.perf_counter()
            service.ingest_hour(hour, records)
            incremental_times.append(time.perf_counter() - t0)
        else:
            service.ingest_hour(hour, records)
    incremental_s = min(incremental_times)
    strict_s = _best_of(
        lambda: service.retrain(strict_rebuild=True), rounds)
    report.record("serving_retrain_days_per_s", 1.0 / incremental_s)
    report.record("serving_strict_retrain_days_per_s", 1.0 / strict_s)
    print(f"  retrain (incr):     {incremental_s * 1e3:8.1f} ms/day")
    print(f"  retrain (scratch):  {strict_s * 1e3:8.1f} ms "
          f"({strict_s / incremental_s:.1f}x slower than incremental)")

    # 2. batched prediction throughput over every known flow
    contexts = scenario.flow_contexts

    def predict_all() -> None:
        service.clear_memo()
        service.predict_batch(contexts)

    predict_s = _best_of(predict_all, rounds)
    report.record("serving_predictions_per_s", len(contexts) / predict_s)
    print(f"  predict (batch):    {len(contexts) / predict_s:8.0f} flows/s")

    # 3. what-if spill for the last trained day's flows against the
    # window's busiest link, batched vs the per-flow reference
    day = max(service.trained_days)
    day_counts = CountsAccumulator()
    for hour in range(day * 24, (day + 1) * 24):
        day_counts.consume_hour(hour, hourly[hour])
    flows = [(context, bytes_)
             for (context, _link), bytes_ in day_counts.counts.items()]
    link_bytes: Dict[int, float] = {}
    for (_context, link), bytes_ in day_counts.counts.items():
        link_bytes[link] = link_bytes.get(link, 0.0) + bytes_
    withdrawn = frozenset({max(link_bytes, key=lambda l: link_bytes[l])})

    # steady-state serving: the memo persists between queries and is only
    # invalidated by retrains, so round one warms it and the rest measure
    # the path the CMS actually sees
    service.clear_memo()
    service.what_if(flows, withdrawn)        # warm the memo once
    batched_s = _best_of(
        lambda: service.what_if(flows, withdrawn), rounds)
    serial_s = _best_of(
        lambda: service.what_if_per_flow(flows, withdrawn), rounds)
    report.record("serving_what_if_flows_per_s", len(flows) / batched_s)
    report.record("serving_what_if_serial_flows_per_s",
                  len(flows) / serial_s)
    print(f"  what_if (batch):    {len(flows) / batched_s:8.0f} flows/s "
          f"({serial_s / batched_s:.1f}x over per-flow)")
    print(f"  what_if (per-flow): {len(flows) / serial_s:8.0f} flows/s")
    service.export_gauges()
    for key, value in service.cache_stats().items():
        report.meta[f"serving_{key}"] = str(value)


def _bench_lint(report: BenchReport, rounds: int) -> None:
    """Whole-tree project lint: cold cache vs warm cache throughput.

    The target is this repo's own ``src/repro`` tree — the same corpus
    CI lints — so the numbers move with the codebase the cache has to
    keep up with.  Profiles share the corpus: a smoke lint over a
    synthetic mini-tree would measure fixture size, not the analyzer.
    """
    src_root = Path(__file__).resolve().parents[2]
    target = src_root / "repro"
    probe = analyze_project([target], cache_dir=None, root=src_root)
    n_files = probe.files_scanned
    print(f"lint: {n_files} files under {target}, best of {rounds}")

    def cold() -> None:
        with tempfile.TemporaryDirectory() as fresh:
            analyze_project([target], cache_dir=Path(fresh) / "cache",
                            root=src_root)

    cold_s = _best_of(cold, rounds)
    report.record("lint_cold_files_per_s", n_files / cold_s)
    print(f"  lint (cold cache):  {n_files / cold_s:8.0f} files/s")

    with tempfile.TemporaryDirectory() as keep:
        cache_dir = Path(keep) / "cache"
        analyze_project([target], cache_dir=cache_dir, root=src_root)
        warm_s = _best_of(
            lambda: analyze_project([target], cache_dir=cache_dir,
                                    root=src_root), rounds)
    report.record("lint_warm_files_per_s", n_files / warm_s)
    print(f"  lint (warm cache):  {n_files / warm_s:8.0f} files/s "
          f"({cold_s / warm_s:.1f}x)")


def _bench_lint_dataflow(report: BenchReport, rounds: int) -> None:
    """RA7xx determinism dataflow: site extraction vs contract link.

    Two metrics mirror the cache design (``docs/static-analysis.md``):
    *extraction* (per-file scan for determinism sites) is the cold-path
    cost paid once per cache miss; the *link* (entry-point resolution,
    reachability, reporting over the whole graph) is recomputed on
    every run, warm or cold — so it is the floor a fully-warm
    ``repro lint --project`` cannot go below.
    """
    src_root = Path(__file__).resolve().parents[2]
    target = src_root / "repro"
    parsed: List[Tuple[ast.Module, ModuleFacts]] = []
    for path in sorted(target.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
        display = str(path.relative_to(src_root))
        parsed.append((tree, extract_facts(
            tree, source, path, display, frozenset({"repro"}))))
    config = find_determinism_config(target)
    if config is None:  # pragma: no cover - repo always has the table
        return
    n_files = len(parsed)

    def extract() -> None:
        for tree, _facts in parsed:
            extract_det_sites(tree)

    extract_s = _best_of(extract, rounds)
    report.record("lint_dataflow_extract_files_per_s",
                  n_files / extract_s)
    print(f"  dataflow (extract): {n_files / extract_s:8.0f} files/s "
          f"(cold, {n_files} files)")

    graph = ProjectGraph.link([facts for _tree, facts in parsed])
    sites_by_module = {
        facts.module: extract_det_sites(tree)
        for tree, facts in parsed}

    def link() -> None:
        check_determinism(graph, sites_by_module, config)

    link_s = _best_of(link, rounds)
    report.record("lint_dataflow_link_runs_per_s", 1.0 / link_s)
    print(f"  dataflow (link):    {link_s * 1e3:8.1f} ms/run "
          f"(warm floor, {1.0 / link_s:.1f} runs/s)")


def _bench_lint_lifecycle(report: BenchReport, rounds: int) -> None:
    """RA8xx lifecycle/durability wave: site extraction vs link.

    Same split as the dataflow stage: per-file extraction of lifecycle
    and durability sites is the cache-miss cost, while the link-time
    checks (lock-order cycles, transitive blocking, thread lifecycle,
    the durability protocol) rerun on every warm ``--project`` pass and
    add to its floor.
    """
    src_root = Path(__file__).resolve().parents[2]
    target = src_root / "repro"
    parsed: List[Tuple[ast.Module, ModuleFacts]] = []
    for path in sorted(target.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
        display = str(path.relative_to(src_root))
        parsed.append((tree, extract_facts(
            tree, source, path, display, frozenset({"repro"}))))
    durability = find_durability_config(target)
    if durability is None:  # pragma: no cover - repo always has the table
        return
    n_files = len(parsed)

    def extract() -> None:
        for tree, _facts in parsed:
            extract_life_sites(tree)
            extract_dura_sites(tree)

    extract_s = _best_of(extract, rounds)
    report.record("lint_lifecycle_extract_files_per_s",
                  n_files / extract_s)
    print(f"  lifecycle (extract):{n_files / extract_s:8.0f} files/s "
          f"(cold, {n_files} files)")

    graph = ProjectGraph.link([facts for _tree, facts in parsed])
    life_by_module = {facts.module: extract_life_sites(tree)
                      for tree, facts in parsed}
    dura_by_module = {facts.module: extract_dura_sites(tree)
                      for tree, facts in parsed}

    def link() -> None:
        check_lifecycle(graph, life_by_module)
        check_durability(graph, dura_by_module, durability)

    link_s = _best_of(link, rounds)
    report.record("lint_lifecycle_link_runs_per_s", 1.0 / link_s)
    print(f"  lifecycle (link):   {link_s * 1e3:8.1f} ms/run "
          f"(warm floor, {1.0 / link_s:.1f} runs/s)")


def _bench_store(report: BenchReport, profile: str, seed: int,
                 rounds: int) -> None:
    """Persistence: snapshot write rate, restart latency, out-of-core.

    Reuses the serving scenario so the persisted state is the same
    rolling window the serving suite measures — the restart number is
    "this service, back from disk", not a toy.
    """
    t_build = time.perf_counter()
    scenario, window_days = _serving_setup(profile, seed)
    service = TipsyService(
        scenario.wan, ServiceConfig(training_window_days=window_days))
    for cols in scenario.stream(0, scenario.horizon_hours):
        service.ingest_hour(cols.hour, scenario.agg_records_for(cols))
    print(f"store: {len(service.trained_days)} trained days, "
          f"{window_days}-day window "
          f"(built in {time.perf_counter() - t_build:.1f}s)")

    with tempfile.TemporaryDirectory() as root:
        target = Path(root) / "snap"

        def snap() -> None:
            # rewrite from scratch each round: measure the write path,
            # not an overwrite of already-allocated files
            shutil.rmtree(target, ignore_errors=True)
            service.snapshot(target)

        snap()
        nbytes = SegmentStore(target).total_bytes()
        snap_s = _best_of(snap, rounds)
        report.record("store_snapshot_mb_per_s", nbytes / snap_s / 1e6)
        print(f"  snapshot (write):   {nbytes / snap_s / 1e6:8.1f} MB/s "
              f"({nbytes / 1e6:.1f} MB)")

        # restart latency: cold store -> restored service -> first
        # prediction actually served (the operator-facing number)
        context = scenario.flow_contexts[0]

        def restart() -> None:
            restored = TipsyService.restore(target, scenario.wan)
            restored.predict(context)

        restart_s = _best_of(restart, rounds)
        report.record("store_restarts_per_s", 1.0 / restart_s)
        print(f"  restore+predict:    {restart_s * 1e3:8.1f} ms "
              f"({1.0 / restart_s:.2f} restarts/s)")

        # out-of-core retrain: stream day segments one at a time into a
        # fresh model suite (memory bounded by one day, not the window)
        store = SegmentStore(target)
        n_days = sum(1 for info in store.segments()
                     if info.kind == "day_counts")

        def retrain_from_disk() -> None:
            train_models_from_store(SegmentStore(target),
                                    (FEATURES_AP, FEATURES_AL, FEATURES_A))

        oo_s = _best_of(retrain_from_disk, rounds)
        report.record("store_out_of_core_days_per_s", n_days / oo_s)
        print(f"  out-of-core train:  {n_days / oo_s:8.1f} days/s "
              f"({n_days} days)")


def _bench_bgp(report: BenchReport, profile: str, seed: int,
               rounds: int) -> None:
    """Routing substrate: full builds, incremental repair, churn.

    The full profile runs a 10x-default AS graph (~6k ASes) — the scale
    the dirty-set path exists for; smoke runs the default-scale graph so
    CI measures the same code in seconds.  The incremental metric is the
    headline: single-peer withdrawals repaired by ``update_routing_table``
    against the full ``compute_routing_table`` rebuild the repair is
    bit-identical to.
    """
    t_build = time.perf_counter()
    if profile == "smoke":
        topo = TopologyParams()
    else:
        topo = TopologyParams(n_tier1=8, n_transit=120, n_access=1200,
                              n_cdn=24, n_stub=4600)
    metros = MetroCatalog()
    graph = generate_as_graph(metros, topo, seed=seed)
    wan = generate_wan(graph, WANParams(), seed=seed)
    bias = default_bias(graph, seed)
    base_seeded = frozenset(wan.peer_asns)
    n_asns = len(graph)
    print(f"bgp: {n_asns} ASes, {len(base_seeded)} peers, "
          f"{len(wan.links)} links "
          f"(built in {time.perf_counter() - t_build:.1f}s); "
          f"best of {rounds}")

    # 1. full columnar table build (the cost the dirty-set path avoids)
    base = compute_routing_table(graph, base_seeded, bias)
    full_s = _best_of(
        lambda: compute_routing_table(graph, base_seeded, bias), rounds)
    report.record("bgp_full_table_asns_per_s", n_asns / full_s)
    print(f"  full build:         {n_asns / full_s:8.0f} ASes/s "
          f"({full_s * 1e3:.1f} ms/table)")

    # 2. dirty-set incremental repair after single-peer withdrawals,
    # measured over a deterministic sample of peers and amortised
    sample = sorted(base_seeded)[::max(1, len(base_seeded) // 16)][:16]
    deltas = [base_seeded - {asn} for asn in sample]

    def repair_all() -> None:
        for seeded in deltas:
            update_routing_table(graph, base, seeded, bias)

    incr_s = _best_of(repair_all, rounds) / len(deltas)
    speedup = full_s / incr_s
    report.record("bgp_incremental_recompute_per_s", 1.0 / incr_s)
    report.meta["bgp_incremental_speedup"] = f"{speedup:.1f}"
    print(f"  incremental repair: {1.0 / incr_s:8.1f} tables/s "
          f"({incr_s * 1e3:.2f} ms/update, {speedup:.1f}x over full)")

    # 3. withdrawal churn through the simulator: more distinct removal
    # sets than the table cache holds, so every lookup exercises the
    # miss path (seed diff + incremental repair + install), which is
    # what a long outage-schedule replay pays
    sim = IngressSimulator(graph, wan, SimulatorParams(table_cache_size=8),
                           seed=seed)
    churn_keys = []
    for asn in sorted(base_seeded):
        links = wan.links_of_peer(asn)
        if len(links) == 1:
            churn_keys.append(frozenset({links[0].link_id}))
        if len(churn_keys) >= 24:
            break
    sim.routing_table(frozenset())            # warm the pinned base table

    def churn() -> None:
        for key in churn_keys:
            sim.routing_table(key)

    churn_s = _best_of(churn, rounds) / len(churn_keys)
    report.record("bgp_withdrawal_churn_tables_per_s", 1.0 / churn_s)
    print(f"  withdrawal churn:   {1.0 / churn_s:8.1f} tables/s "
          f"({len(churn_keys)} keys through a {sim.params.table_cache_size}"
          "-entry cache)")
    sim.export_gauges()
    for key, value in sim.cache_stats().items():
        report.meta[f"bgp_{key}"] = str(value)


def _soak_setup(profile: str) -> Tuple[int, float]:
    """(shards, seconds between live hours) for the soak suite."""
    if profile == "smoke":
        return 2, 0.05
    return 4, 0.25


def _percentile(sorted_values: List[float], q: float) -> float:
    """The q-quantile of an ascending list (nearest-rank)."""
    assert sorted_values
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _soak_batch_sizes(n_batches: int, n_contexts: int,
                      seed: int) -> List[Tuple[int, int]]:
    """Deterministic (start, size) query batches, heavy-tailed sizes.

    Batch sizes follow a Pareto (alpha=1.2) — most queries are small
    incident probes, a rare few sweep a large slice of the flow
    population — matching the heavy-tailed arrivals the serving path
    sees in practice.
    """
    alpha, x_m = 1.2, 4.0
    cap = max(1, min(512, n_contexts))
    batches: List[Tuple[int, int]] = []
    for i in range(n_batches):
        u = max(unit(2 * i, seed=seed), 1e-9)
        size = min(cap, int(x_m * u ** (-1.0 / alpha)))
        start = int(unit(2 * i + 1, seed=seed) * n_contexts)
        batches.append((start, max(1, size)))
    return batches


def _bench_soak(report: BenchReport, profile: str, seed: int) -> None:
    """Serving daemon under sustained concurrent ingest (one long run).

    A warm phase streams the training window into the sharded daemon;
    the measured phase then runs the remaining days as a *paced* live
    feed from a background thread while the foreground loop issues
    heavy-tailed prediction batches back to back.  Day boundaries in
    the live feed trigger per-shard incremental retrains and hot swaps
    mid-measurement — the p99 shows whether a query ever waited on one.
    Latency percentiles are recorded as inverses (``1/p50``) so the
    regression gate's higher-is-better drop detection applies.
    """
    from ..serve import DaemonConfig, ServeDaemon

    t_build = time.perf_counter()
    scenario, window_days = _serving_setup(profile, seed)
    n_shards, hour_gap = _soak_setup(profile)
    warm_hours = (window_days + 1) * 24
    live_hours = scenario.horizon_hours - warm_hours
    hourly = [scenario.agg_records_for(cols)
              for cols in scenario.stream(0, scenario.horizon_hours)]
    contexts = scenario.flow_contexts
    print(f"soak: {n_shards} shards (process), {len(contexts)} flows, "
          f"{warm_hours // 24} warm days + {live_hours} live hours at "
          f"{hour_gap:.2f}s/hour "
          f"(built in {time.perf_counter() - t_build:.1f}s)")

    daemon = ServeDaemon(scenario.wan, DaemonConfig(
        n_shards=n_shards, workers="process",
        service=ServiceConfig(training_window_days=window_days))).start()
    try:
        for hour in range(warm_hours):
            daemon.ingest_hour(hour, hourly[hour])
        daemon.drain()
        warm_swaps = daemon.status().total_swaps

        def feed() -> None:
            for hour in range(warm_hours, warm_hours + live_hours):
                daemon.ingest_hour(hour, hourly[hour])
                time.sleep(hour_gap)

        feeder = threading.Thread(target=feed, name="soak-feed")
        latencies: List[float] = []
        flows_served = 0
        batch_plan = _soak_batch_sizes(100_000, len(contexts), seed)
        batch_index = 0
        feeder.start()
        t0 = time.perf_counter()
        while feeder.is_alive():
            start, size = batch_plan[batch_index % len(batch_plan)]
            batch_index += 1
            batch = [contexts[(start + j) % len(contexts)]
                     for j in range(size)]
            t_q = time.perf_counter()
            daemon.predict_batch(batch)
            latencies.append(time.perf_counter() - t_q)
            flows_served += size
        elapsed = time.perf_counter() - t0
        feeder.join()
        daemon.drain()
        status = daemon.status()
    finally:
        daemon.shutdown(drain=False)

    latencies.sort()
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    report.record("soak_predictions_per_s", flows_served / elapsed)
    report.record("soak_query_p50_per_s", 1.0 / p50)
    report.record("soak_query_p99_per_s", 1.0 / p99)
    live_swaps = status.total_swaps - warm_swaps
    report.meta["soak_shards"] = str(n_shards)
    report.meta["soak_batches"] = str(len(latencies))
    report.meta["soak_live_hours"] = str(live_hours)
    report.meta["soak_live_swaps"] = str(live_swaps)
    report.meta["soak_max_staleness_hours"] = str(
        status.max_staleness_hours)
    print(f"  sustained serve:    {flows_served / elapsed:8.0f} flows/s "
          f"({len(latencies)} batches over {elapsed:.1f}s)")
    print(f"  query latency:      p50 {p50 * 1e3:.2f} ms, "
          f"p99 {p99 * 1e3:.2f} ms "
          f"({live_swaps} hot swaps during measurement)")


def run_bench(
    profile: str = "full",
    seed: int = 1,
    out_dir: str = DEFAULT_BASELINE_DIR,
    tolerance: float = 0.30,
    workers: Optional[int] = None,
    compare: bool = True,
    save: bool = True,
    rounds: int = 3,
    date: Optional[str] = None,
    suite: str = "all",
    trace_out: Optional[str] = None,
) -> int:
    """Run the benchmark suite; returns a process exit code."""
    if suite not in SUITES:
        raise SystemExit(
            f"repro bench: --suite must be one of {', '.join(SUITES)}, "
            f"got {suite!r}")
    if compare and not 0.0 <= tolerance < 1.0:
        raise SystemExit(
            f"repro bench: --tolerance must be in [0, 1), got {tolerance}")
    n_workers = workers or default_workers()
    report = BenchReport(
        date=date or datetime.date.today().isoformat(),
        profile=profile, meta=default_meta())
    report.meta["workers"] = str(n_workers)
    report.meta["seed"] = str(seed)
    # benches run instrumented: the report carries the run's metrics
    # snapshot in its meta, so a baseline documents cache efficiency and
    # stage activity alongside the throughput numbers it defends
    obs.enable(fresh=True)
    if suite in ("all", "pipeline"):
        with obs.span("bench.pipeline"):
            _bench_pipeline(report, profile, seed, n_workers, rounds)
    if suite in ("all", "serving"):
        with obs.span("bench.serving"):
            _bench_serving(report, profile, seed, rounds)
    if suite in ("all", "lint"):
        with obs.span("bench.lint"):
            _bench_lint(report, rounds)
            _bench_lint_dataflow(report, rounds)
            _bench_lint_lifecycle(report, rounds)
    if suite in ("all", "store"):
        with obs.span("bench.store"):
            _bench_store(report, profile, seed, rounds)
    if suite in ("all", "bgp"):
        with obs.span("bench.bgp"):
            _bench_bgp(report, profile, seed, rounds)
    if suite in ("all", "soak"):
        with obs.span("bench.soak"):
            _bench_soak(report, profile, seed)
    report.meta["obs"] = json.dumps(
        obs.snapshot().to_json(), sort_keys=True, separators=(",", ":"))
    if trace_out is not None:
        with open(trace_out, "w", encoding="utf-8") as handle:
            json.dump(obs.tracer().to_json(), handle, indent=2)
            handle.write("\n")
        print(f"wrote trace to {trace_out}")

    exit_code = 0
    if compare:
        baseline_path = find_baseline(out_dir, profile=profile,
                                      before=report.date)
        if baseline_path is None:
            print(f"no committed {profile!r} baseline under {out_dir}; "
                  "nothing to compare against")
        else:
            baseline = load_report(baseline_path)
            regressions = compare_reports(report, baseline, tolerance)
            print(f"compared against {baseline_path} "
                  f"(tolerance {tolerance:.0%}): "
                  f"{len(regressions)} regression(s)")
            for regression in regressions:
                print(f"  REGRESSION {regression}")
            if regressions:
                exit_code = 1
    if save:
        path = save_report(report, out_dir)
        print(f"wrote {path}")
    return exit_code
