"""The ``repro bench`` command: measure, record, compare.

Runs a fixed set of pipeline throughput measurements (telemetry
streaming, per-record vs vectorised aggregation, columnar training
counts, and the end-to-end serial vs parallel hourly pipeline), writes
them as a ``BENCH_<date>.json`` report and compares against the last
committed baseline of the same profile.

Two profiles:

* ``full`` — the paper-scale scenario; the numbers behind the README's
  Performance section.
* ``smoke`` — the small scenario over a shorter window; seconds-fast,
  suitable as a CI gate.
"""

from __future__ import annotations

import datetime
import os
import time
from typing import Callable, Optional, Tuple

from ..experiments.scenario import Scenario, ScenarioParams
from ..pipeline.aggregation import HourlyAggregator
from .parallel import ParallelPipelineRunner, default_workers
from .regression import (
    BenchReport,
    compare_reports,
    default_meta,
    find_baseline,
    load_report,
    save_report,
)

DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")


def _best_of(fn: Callable[[], object], rounds: int = 3) -> float:
    """Seconds for one call, best of ``rounds`` (noise-resistant)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_scenario(profile: str, seed: int) -> Tuple[Scenario, int]:
    """(scenario, measured window in hours) for a profile."""
    if profile == "smoke":
        return Scenario(ScenarioParams.small(seed=seed)), 12
    return Scenario(ScenarioParams(seed=seed)), 24


def run_bench(
    profile: str = "full",
    seed: int = 1,
    out_dir: str = DEFAULT_BASELINE_DIR,
    tolerance: float = 0.30,
    workers: Optional[int] = None,
    compare: bool = True,
    save: bool = True,
    rounds: int = 3,
    date: Optional[str] = None,
) -> int:
    """Run the benchmark suite; returns a process exit code."""
    if compare and not 0.0 <= tolerance < 1.0:
        raise SystemExit(
            f"repro bench: --tolerance must be in [0, 1), got {tolerance}")
    t_build = time.perf_counter()
    scenario, window = _bench_scenario(profile, seed)
    n_workers = workers or default_workers()
    report = BenchReport(
        date=date or datetime.date.today().isoformat(),
        profile=profile, meta=default_meta())
    report.meta["workers"] = str(n_workers)
    report.meta["seed"] = str(seed)
    print(f"world: {scenario.wan.summary()}, {len(scenario.traffic)} flows "
          f"(built in {time.perf_counter() - t_build:.1f}s); "
          f"measuring {window}h windows, best of {rounds}")

    # 1. telemetry streaming (warm the expansion caches first)
    for _ in scenario.stream(0, 2):
        pass
    elapsed = _best_of(lambda: sum(
        1 for _ in scenario.stream(0, window)), rounds)
    report.record("stream_hours_per_s", window / elapsed)
    print(f"  stream:             {window / elapsed:8.1f} hours/s")

    # 2. hourly aggregation, per-record reference vs vectorised columns
    cols = next(iter(scenario.stream(12, 13)))
    ipfix = scenario.ipfix_records_for(cols)
    arrays = scenario.ipfix_columns_for(cols)
    agg = HourlyAggregator(scenario.metadata, encoders=scenario.encoders)
    agg.aggregate_hour(cols.hour, ipfix)              # warm join caches
    serial_s = _best_of(lambda: agg.aggregate_hour(cols.hour, ipfix), rounds)
    column_s = _best_of(
        lambda: agg.aggregate_hour_columns(cols.hour, *arrays), rounds)
    report.record("aggregate_records_per_s", len(ipfix) / serial_s)
    report.record("aggregate_columnar_records_per_s", len(ipfix) / column_s)
    print(f"  aggregate (record): {len(ipfix) / serial_s:8.0f} records/s")
    print(f"  aggregate (column): {len(ipfix) / column_s:8.0f} records/s "
          f"({serial_s / column_s:.1f}x)")

    # 3. training counts from an aggregated window (columnar drain)
    with ParallelPipelineRunner(scenario=scenario,
                                n_workers=n_workers) as runner:
        hours = list(runner.iter_hour_columns(0, window, parallel=False))
        agg_records = sum(h.n_records for h in hours)

        def collect() -> int:
            counts = runner.collect_counts(0, window, parallel=False)
            return len(counts)

        counts_s = _best_of(collect, rounds)
        report.record("counts_records_per_s", agg_records / counts_s)
        print(f"  counts (columnar):  {agg_records / counts_s:8.0f} "
              "agg-records/s")

        # 4. end-to-end hourly pipeline, serial vs process pool
        serial_pipe_s = _best_of(lambda: sum(
            1 for _ in runner.iter_hour_columns(0, window, parallel=False)),
            rounds)
        report.record("pipeline_serial_hours_per_s", window / serial_pipe_s)
        print(f"  pipeline (serial):  {window / serial_pipe_s:8.1f} hours/s")
        if n_workers > 1:
            # first parallel call pays pool startup; warm before timing
            for _ in runner.iter_hour_columns(0, 2):
                pass
            par_s = _best_of(lambda: sum(
                1 for _ in runner.iter_hour_columns(0, window)), rounds)
            report.record("pipeline_parallel_hours_per_s", window / par_s)
            print(f"  pipeline ({n_workers} proc):  {window / par_s:8.1f} "
                  f"hours/s ({serial_pipe_s / par_s:.1f}x)")
        else:
            print("  pipeline (parallel): skipped (single CPU)")

    exit_code = 0
    if compare:
        baseline_path = find_baseline(out_dir, profile=profile,
                                      before=report.date)
        if baseline_path is None:
            print(f"no committed {profile!r} baseline under {out_dir}; "
                  "nothing to compare against")
        else:
            baseline = load_report(baseline_path)
            regressions = compare_reports(report, baseline, tolerance)
            print(f"compared against {baseline_path} "
                  f"(tolerance {tolerance:.0%}): "
                  f"{len(regressions)} regression(s)")
            for regression in regressions:
                print(f"  REGRESSION {regression}")
            if regressions:
                exit_code = 1
    if save:
        path = save_report(report, out_dir)
        print(f"wrote {path}")
    return exit_code
