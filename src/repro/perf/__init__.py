"""Performance layer: parallel pipeline execution and bench regression.

The paper's pipeline aggregates TBs/day on a Spark cluster (§4.2-§4.3);
this package is the reproduction's equivalent scaling story.  It fans
the telemetry→aggregation→training path out over a process pool with
deterministic hour sharding (:class:`ParallelPipelineRunner`), and it
keeps the speed honest over time with a benchmark-regression harness
(:mod:`repro.perf.regression`) that records throughput to
``BENCH_<date>.json`` files and compares runs against the last
committed baseline.
"""

from .parallel import ParallelPipelineRunner, default_workers, make_shards
from .regression import (
    BenchReport,
    Regression,
    compare_reports,
    default_meta,
    find_baseline,
    load_report,
    save_report,
)

__all__ = [
    "ParallelPipelineRunner", "default_workers", "make_shards",
    "BenchReport", "Regression", "compare_reports", "default_meta",
    "find_baseline", "load_report", "save_report",
]
