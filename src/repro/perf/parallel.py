"""Process-parallel telemetry→aggregation→training pipeline.

The paper's pipeline fans TBs/day of IPFIX out over a Spark cluster
(§4.2-§4.3).  :class:`ParallelPipelineRunner` is the reproduction's
equivalent: the scenario horizon is sharded into contiguous hour blocks,
each block is streamed and aggregated in a worker process (the synthetic
world is constructed once per worker, or inherited copy-on-write when
the pool forks from a parent that already built it), and the hourly
results come back in columnar form — numpy arrays serialise across the
process boundary orders of magnitude faster than per-record objects.

Determinism is the design anchor, not an afterthought:

* every per-hour quantity (expansion, volumes, IPFIX sampling) is a
  pure function of the scenario seed and the hour, so a shard streamed
  in a worker equals the same hours streamed serially;
* encoders are pre-seeded at scenario construction, so ordinal codes
  cannot depend on which worker saw a value first;
* shards are contiguous and results are re-assembled in hour order.

Consequently ``iter_hours``/``iter_hour_columns`` yield *bit-identical*
output to the serial path (``parallel=False``) for any worker count and
shard size, and ``collect_counts`` builds training counts that are
bit-identical to a serial single-pass accumulation.

``precompute_tables`` extends the same pattern to the BGP substrate:
routing tables for a set of withdrawal scenarios are derived
incrementally in the workers (dirty-set repair from each worker's
pinned base table), shipped back as snapshot columns, and installed
into the parent simulator's bounded table cache.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional,
                    Sequence, Tuple)

from ..bgp.propagation import RoutingTable
from ..core.training import CountsAccumulator
from ..obs import runtime as obs
from ..obs.metrics import MetricsSnapshot
from ..pipeline.aggregation import CompressionStats, HourlyAggregator
from ..pipeline.records import AggColumns, AggRecord
from ..experiments.scenario import Scenario, ScenarioParams

if TYPE_CHECKING:
    import numpy as np

    from ..experiments.runner import _StreamAccumulator

#: what one `_collect_shard` call ships back to the parent: the shard
#: bounds plus the accumulator's by-downset/total byte dicts, its
#: per-link matrix slice, and the worker's obs metrics delta (None when
#: instrumentation is off)
ShardResult = Tuple[
    int, int,
    Dict[FrozenSet[int], Dict[Tuple[int, int], float]],
    Dict[Tuple[int, int], float],
    "np.ndarray",
    Optional[MetricsSnapshot],
]


def default_workers() -> int:
    """Worker-count default: the machine's cores, capped sensibly."""
    return max(1, min(os.cpu_count() or 1, 8))


# -- worker-side state --------------------------------------------------------

#: set by the parent just before the pool starts so that fork-based pools
#: inherit an already-built scenario copy-on-write instead of rebuilding
_PARENT_SCENARIO: Optional[Scenario] = None

_WORKER: Dict[str, object] = {}


def _init_worker(params: ScenarioParams, obs_enabled: bool = False) -> None:
    if obs_enabled:
        # each worker owns a fresh registry (a forked child inherits the
        # parent's copy-on-write and must not re-report its counts); the
        # shard functions ship per-task deltas back for the parent to merge
        obs.enable(fresh=True)
    scenario = _PARENT_SCENARIO
    if scenario is None or scenario.params != params:
        scenario = Scenario(params)
    # RA501: _WORKER is the worker-local cache this initializer exists to
    # populate — it is never read by the parent, only by shard functions
    # running in the same child process.
    _WORKER["scenario"] = scenario  # repro: noqa[RA501]
    _WORKER["aggregators"] = {}  # repro: noqa[RA501]


def _worker_aggregator(scenario: Scenario, strict: bool) -> HourlyAggregator:
    # RA501: worker-local memo (see _init_worker); results return via the
    # shard functions' pickled return values, never via this dict.
    aggregators: Dict[bool, HourlyAggregator] = _WORKER.setdefault(  # repro: noqa[RA501]
        "aggregators", {})  # type: ignore[assignment]
    agg = aggregators.get(strict)
    if agg is None:
        # sharing the scenario's pre-seeded encoders keeps ordinal codes
        # identical across workers regardless of processing order
        agg = HourlyAggregator(scenario.metadata, encoders=scenario.encoders,
                               strict=strict)
        aggregators[strict] = agg
    return agg


def _aggregate_span(scenario: Scenario, aggregator: HourlyAggregator,
                    start_hour: int, end_hour: int,
                    use_sampled: bool) -> Iterator[AggColumns]:
    """Stream and aggregate a contiguous hour span (shared by both the
    serial path and the worker processes — one code path, one result)."""
    for cols in scenario.stream(start_hour, end_hour):
        arrays = scenario.ipfix_columns_for(cols, use_sampled=use_sampled)
        with obs.timed("pipeline.aggregate_hour"):
            columns = aggregator.aggregate_hour_columns(cols.hour, *arrays)
        yield columns


def _obs_delta_start() -> Optional[MetricsSnapshot]:
    """Pre-task registry snapshot (None when instrumentation is off)."""
    if not obs.enabled():
        return None
    return obs.snapshot()


def _obs_delta_finish(
        before: Optional[MetricsSnapshot]) -> Optional[MetricsSnapshot]:
    """This task's metrics activity, for the parent to merge."""
    if before is None:
        return None
    return obs.snapshot().diff(before)


def _aggregate_shard(
    task: Tuple[int, int, bool, bool],
) -> Tuple[List[AggColumns], Tuple[int, int, int],
           Optional[MetricsSnapshot]]:
    start_hour, end_hour, use_sampled, strict = task
    scenario: Scenario = _WORKER["scenario"]  # type: ignore[assignment]
    aggregator = _worker_aggregator(scenario, strict)
    obs_before = _obs_delta_start()
    before = (aggregator.stats.records_in, aggregator.stats.records_out,
              aggregator.stats.records_dropped)
    out = list(_aggregate_span(scenario, aggregator, start_hour, end_hour,
                               use_sampled))
    delta = (aggregator.stats.records_in - before[0],
             aggregator.stats.records_out - before[1],
             aggregator.stats.records_dropped - before[2])
    return out, delta, _obs_delta_finish(obs_before)


def _collect_shard(task: Tuple[int, int]) -> ShardResult:
    """One shard of an evaluation-runner window collection."""
    from ..experiments.runner import _StreamAccumulator

    start_hour, end_hour = task
    scenario: Scenario = _WORKER["scenario"]  # type: ignore[assignment]
    obs_before = _obs_delta_start()
    acc = _StreamAccumulator(len(scenario.wan.links),
                             end_hour - start_hour, start_hour)
    for cols in scenario.stream(start_hour, end_hour):
        acc.add_hour(cols, scenario.scheduled_down_at(cols.hour))
    acc.flush()
    return (start_hour, end_hour, acc.by_downset, acc.total, acc.link_matrix,
            _obs_delta_finish(obs_before))


#: one precomputed routing table shipped back from a worker: the removal
#: key it answers plus the table's snapshot columns (numpy arrays cross
#: the process boundary far faster than per-AS RouteInfo objects)
TableResult = Tuple[FrozenSet[int], Dict[str, "np.ndarray"]]


def _tables_shard(
    task: Tuple[Tuple[FrozenSet[int], ...]],
) -> Tuple[List[TableResult], Optional[MetricsSnapshot]]:
    """Compute routing tables for one shard of removal keys."""
    (keys,) = task
    scenario: Scenario = _WORKER["scenario"]  # type: ignore[assignment]
    sim = scenario.simulator
    obs_before = _obs_delta_start()
    out: List[TableResult] = []
    for removed in keys:
        out.append((removed, sim.routing_table(removed).to_arrays()))
    return out, _obs_delta_finish(obs_before)


# -- sharding -----------------------------------------------------------------

def make_shards(start_hour: int, end_hour: int, n_shards: int,
                align_hours: int = 1) -> List[Tuple[int, int]]:
    """Split ``[start_hour, end_hour)`` into contiguous balanced blocks.

    Deterministic: depends only on the arguments.  With ``align_hours``
    set (e.g. 24), shard boundaries fall on multiples of it so epochs
    that never span that alignment never span a shard either.
    """
    if align_hours < 1:
        raise ValueError("align_hours must be >= 1")
    span = end_hour - start_hour
    if span <= 0:
        return []
    units = (span + align_hours - 1) // align_hours
    n_shards = max(1, min(n_shards, units))
    base, extra = divmod(units, n_shards)
    shards: List[Tuple[int, int]] = []
    lo = start_hour
    for i in range(n_shards):
        size = (base + (1 if i < extra else 0)) * align_hours
        hi = min(lo + size, end_hour)
        if hi > lo:
            shards.append((lo, hi))
        lo = hi
    return shards


# -- the runner ---------------------------------------------------------------

class ParallelPipelineRunner:
    """Fan the hourly pipeline out over a process pool.

    Construct from ``ScenarioParams`` (each worker builds the world
    once) or from an existing ``Scenario`` (fork-based pools inherit it
    copy-on-write; the serial reference path reuses it directly).

    The runner is a context manager; ``close()`` shuts the pool down.
    """

    def __init__(
        self,
        params: Optional[ScenarioParams] = None,
        scenario: Optional[Scenario] = None,
        n_workers: Optional[int] = None,
        shard_hours: Optional[int] = None,
        use_sampled: bool = True,
        strict: bool = True,
        start_method: Optional[str] = None,
    ):
        if scenario is not None:
            params = scenario.params
        elif params is None:
            params = ScenarioParams()
        self.params = params
        self.n_workers = n_workers if n_workers else default_workers()
        self.shard_hours = shard_hours
        self.use_sampled = use_sampled
        self.strict = strict
        self.start_method = start_method
        self.stats = CompressionStats()
        self._scenario = scenario
        self._serial_aggregator: Optional[HourlyAggregator] = None
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def scenario(self) -> Scenario:
        """The parent-side scenario (built lazily for serial runs)."""
        if self._scenario is None:
            self._scenario = Scenario(self.params)
        return self._scenario

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            global _PARENT_SCENARIO
            context = multiprocessing.get_context(self.start_method)
            # fork-based pools adopt the parent's scenario copy-on-write;
            # spawn-based pools rebuild from params in the initializer
            _PARENT_SCENARIO = self._scenario
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context,
                initializer=_init_worker,
                initargs=(self.params, obs.enabled()))
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelPipelineRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the aggregated hourly stream --------------------------------------

    def _shards_for(self, start_hour: int, end_hour: int,
                    align_hours: int = 1) -> List[Tuple[int, int]]:
        if self.shard_hours is not None:
            n_shards = max(1, -(-(end_hour - start_hour) // self.shard_hours))
        else:
            n_shards = self.n_workers
        return make_shards(start_hour, end_hour, n_shards, align_hours)

    def iter_hour_columns(self, start_hour: int, end_hour: int,
                          parallel: bool = True) -> Iterator[AggColumns]:
        """Aggregated hours of ``[start_hour, end_hour)``, in hour order.

        ``parallel=False`` runs the identical code path in-process; the
        two modes yield bit-identical columns.
        """
        if not parallel or self.n_workers <= 1 or (
                end_hour - start_hour) <= 1:
            scenario = self.scenario
            if self._serial_aggregator is None:
                self._serial_aggregator = HourlyAggregator(
                    scenario.metadata, encoders=scenario.encoders,
                    strict=self.strict)
            aggregator = self._serial_aggregator
            before = (aggregator.stats.records_in,
                      aggregator.stats.records_out,
                      aggregator.stats.records_dropped)
            for columns in _aggregate_span(scenario, aggregator, start_hour,
                                           end_hour, self.use_sampled):
                yield columns
            self.stats.records_in += aggregator.stats.records_in - before[0]
            self.stats.records_out += aggregator.stats.records_out - before[1]
            self.stats.records_dropped += (
                aggregator.stats.records_dropped - before[2])
            return
        shards = self._shards_for(start_hour, end_hour)
        obs.count("pipeline.shards_dispatched", float(len(shards)))
        pool = self._pool()
        futures = [
            pool.submit(_aggregate_shard,
                        (lo, hi, self.use_sampled, self.strict))
            for lo, hi in shards
        ]
        for future in futures:
            columns_list, (d_in, d_out, d_drop), obs_delta = future.result()
            self.stats.records_in += d_in
            self.stats.records_out += d_out
            self.stats.records_dropped += d_drop
            if obs_delta is not None and obs.enabled():
                obs.registry().merge(obs_delta)
            for columns in columns_list:
                yield columns

    def iter_hours(self, start_hour: int, end_hour: int,
                   parallel: bool = True
                   ) -> Iterator[Tuple[int, List[AggRecord]]]:
        """Record-level view of the aggregated stream, in hour order."""
        for columns in self.iter_hour_columns(start_hour, end_hour,
                                              parallel=parallel):
            yield columns.hour, columns.to_records()

    # -- training counts ----------------------------------------------------

    def collect_counts(self, start_hour: int, end_hour: int,
                       parallel: bool = True) -> CountsAccumulator:
        """Finest-grain training counts for a window, one parallel pass.

        Bit-identical to serially streaming the window into a fresh
        ``CountsAccumulator`` (same per-key addition order)."""
        with obs.timed("pipeline.collect_counts"):
            counts = CountsAccumulator()
            for columns in self.iter_hour_columns(start_hour, end_hour,
                                                  parallel=parallel):
                counts.add_columns(columns)
            counts.drain()
            return counts

    # -- evaluation-runner windows ------------------------------------------

    def collect_window(self, start_hour: int,
                       end_hour: int) -> "_StreamAccumulator":
        """A parallel ``EvaluationRunner.collect_window`` equivalent.

        Shards are day-aligned so no accumulator epoch spans a shard
        boundary (expansion epochs never cross a day).  Per-key byte
        totals can differ from the serial pass only in float summation
        grouping when a key spans three or more epochs across shards —
        identical key sets, identical link matrix, byte totals equal to
        within rounding.
        """
        from ..experiments.runner import _StreamAccumulator

        shards = self._shards_for(start_hour, end_hour, align_hours=24)
        acc = _StreamAccumulator(len(self.scenario.wan.links),
                                 end_hour - start_hour, start_hour)
        if self.n_workers <= 1 or len(shards) <= 1:
            scenario = self.scenario
            for cols in scenario.stream(start_hour, end_hour):
                acc.add_hour(cols, scenario.scheduled_down_at(cols.hour))
            acc.flush()
            return acc
        pool = self._pool()
        obs.count("pipeline.shards_dispatched", float(len(shards)))
        futures = [pool.submit(_collect_shard, shard) for shard in shards]
        for future in futures:
            (lo, hi, by_downset, total, link_matrix,
             obs_delta) = future.result()
            acc.link_matrix[:, lo - start_hour:hi - start_hour] = link_matrix
            for down, pairs in by_downset.items():
                bucket = acc.by_downset.setdefault(down, {})
                for key, value in pairs.items():
                    bucket[key] = bucket.get(key, 0.0) + value
            for key, value in total.items():
                acc.total[key] = acc.total.get(key, 0.0) + value
            if obs_delta is not None and obs.enabled():
                obs.registry().merge(obs_delta)
        return acc

    # -- routing-table precompute -------------------------------------------

    def precompute_tables(self, removal_keys: Sequence[FrozenSet[int]],
                          parallel: bool = True) -> int:
        """Warm the simulator's routing-table cache for ``removal_keys``.

        Keys are deduplicated and sharded deterministically (sorted link
        ids); each worker derives its tables incrementally from its own
        pinned base table and ships back snapshot columns, which the
        parent rehydrates with :meth:`RoutingTable.from_arrays` and
        installs via :meth:`IngressSimulator.install_table`.  Because a
        table is a pure function of the graph and the surviving seed
        set, worker-computed tables are bit-identical to parent-computed
        ones — ``parallel=False`` runs the same loop in-process.

        Returns the number of distinct keys warmed.
        """
        sim = self.scenario.simulator
        keys = sorted({frozenset(k) for k in removal_keys},
                      key=lambda k: tuple(sorted(k)))
        if not keys:
            return 0
        if not parallel or self.n_workers <= 1 or len(keys) <= 1:
            for removed in keys:
                sim.routing_table(removed)
            return len(keys)
        n_shards = min(self.n_workers, len(keys))
        base, extra = divmod(len(keys), n_shards)
        shards: List[Tuple[FrozenSet[int], ...]] = []
        lo = 0
        for i in range(n_shards):
            hi = lo + base + (1 if i < extra else 0)
            shards.append(tuple(keys[lo:hi]))
            lo = hi
        obs.count("bgp.table_shards_dispatched", float(len(shards)))
        pool = self._pool()
        futures = [pool.submit(_tables_shard, (shard,)) for shard in shards]
        graph = self.scenario.graph
        installed = 0
        for future in futures:
            results, obs_delta = future.result()
            for removed, arrays in results:
                sim.install_table(removed,
                                  RoutingTable.from_arrays(graph, arrays))
                installed += 1
            if obs_delta is not None and obs.enabled():
                obs.registry().merge(obs_delta)
        obs.count("bgp.tables_precomputed", float(installed))
        return installed
