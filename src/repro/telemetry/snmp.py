"""Synthetic SNMP interface-status polling.

The paper infers outages from IPFIX rather than SNMP: "We found that
other sources, such as SNMP, were far less reliable" (§5.1.1).  To
reproduce that design rationale, this module models an SNMP poller with
its real failure modes:

* **polling cadence** — status is sampled every N minutes, so short
  flaps between polls are invisible;
* **missed polls** — collectors drop some polls (timeouts, device CPU);
* **stale agents** — some devices keep reporting the last status for a
  while after a transition ("ifOperStatus lies");
* **flapping noise** — occasional spurious down readings.

:func:`compare_inference` quantifies SNMP's detection quality against a
ground-truth outage schedule, so a benchmark can show why TIPSY trusts
the data plane instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)

if TYPE_CHECKING:
    from ..pipeline.outages import Outage


@dataclass(frozen=True)
class SnmpReading:
    """One polled interface status."""

    link_id: int
    hour: float
    oper_up: bool


@dataclass
class SnmpParams:
    """Poller unreliability knobs."""

    poll_minutes: int = 15
    # probability an individual poll is lost entirely
    missed_poll_rate: float = 0.08
    # probability a device reports stale status after a transition, and
    # for how many polls the staleness persists
    stale_agent_fraction: float = 0.10
    stale_polls: int = 4
    # probability of a spurious 'down' reading on a healthy link
    false_down_rate: float = 0.002


class SnmpPoller:
    """Polls link status against a ground-truth outage schedule."""

    def __init__(self, link_ids: Sequence[int],
                 outages: Sequence[Outage],
                 params: Optional[SnmpParams] = None,
                 seed: int = 0):
        self.link_ids = tuple(link_ids)
        self.params = params or SnmpParams()
        self._rng = random.Random(seed ^ 0x51F3)
        self._outages_by_link: Dict[int, List[Outage]] = {}
        for outage in outages:
            self._outages_by_link.setdefault(outage.link_id, []).append(outage)
        self._stale: Set[int] = {
            link for link in self.link_ids
            if self._rng.random() < self.params.stale_agent_fraction
        }

    def _truth_up(self, link_id: int, hour: float) -> bool:
        for outage in self._outages_by_link.get(link_id, ()):
            if outage.start_hour <= hour < outage.end_hour:
                return False
        return True

    def poll_window(self, start_hour: int,
                    end_hour: int) -> List[SnmpReading]:
        """All readings the poller manages to collect over a window."""
        params = self.params
        step = params.poll_minutes / 60.0
        readings: List[SnmpReading] = []
        for link_id in self.link_ids:
            stale_left = 0
            last_status = True
            hour = float(start_hour)
            while hour < end_hour:
                truth = self._truth_up(link_id, hour)
                if self._rng.random() >= params.missed_poll_rate:
                    if link_id in self._stale:
                        if truth != last_status and stale_left == 0:
                            stale_left = params.stale_polls
                        if stale_left > 0:
                            stale_left -= 1
                            reported = last_status
                        else:
                            reported = truth
                            last_status = truth
                    else:
                        reported = truth
                        last_status = truth
                    if reported and self._rng.random() < params.false_down_rate:
                        reported = False
                    readings.append(SnmpReading(link_id, hour, reported))
                hour += step
        return readings


def infer_outages_from_snmp(readings: Iterable[SnmpReading],
                            min_hours: float = 1.0) -> List[Outage]:
    """Outage intervals from SNMP readings (hour-rounded, like §5.1.1).

    Consecutive 'down' readings on a link become an interval; intervals
    shorter than ``min_hours`` are dropped (flap suppression).
    """
    # lazy import: telemetry sits below pipeline in the layer map
    # (RA601); Outage is pipeline's comparison currency, constructed
    # here only to score this poller against ground truth
    from ..pipeline.outages import Outage

    by_link: Dict[int, List[SnmpReading]] = {}
    for reading in readings:
        by_link.setdefault(reading.link_id, []).append(reading)
    out: List[Outage] = []
    for link_id, link_readings in by_link.items():
        link_readings.sort(key=lambda r: r.hour)
        start: Optional[float] = None
        last_down: Optional[float] = None
        for reading in link_readings:
            if not reading.oper_up:
                if start is None:
                    start = reading.hour
                last_down = reading.hour
            else:
                if start is not None and last_down is not None:
                    if last_down - start >= min_hours - 1e-9:
                        out.append(Outage(link_id, int(start),
                                          int(last_down) + 1))
                start = last_down = None
        if start is not None and last_down is not None:
            if last_down - start >= min_hours - 1e-9:
                out.append(Outage(link_id, int(start), int(last_down) + 1))
    out.sort(key=lambda o: (o.start_hour, o.link_id))
    return out


@dataclass(frozen=True)
class InferenceQuality:
    """Detection quality of an inferred outage set vs ground truth."""

    truth_link_hours: int
    detected_link_hours: int
    false_link_hours: int

    @property
    def recall(self) -> float:
        if self.truth_link_hours == 0:
            return 1.0
        return self.detected_link_hours / self.truth_link_hours

    @property
    def precision(self) -> float:
        total = self.detected_link_hours + self.false_link_hours
        if total == 0:
            return 1.0
        return self.detected_link_hours / total


def compare_inference(truth: Sequence[Outage], inferred: Sequence[Outage],
                      start_hour: int, end_hour: int) -> InferenceQuality:
    """Link-hour recall/precision of inferred outages against truth."""
    def link_hours(outages: Sequence[Outage]) -> Set[Tuple[int, int]]:
        hours = set()
        for outage in outages:
            for hour in range(max(outage.start_hour, start_hour),
                              min(outage.end_hour, end_hour)):
                hours.add((outage.link_id, hour))
        return hours

    truth_hours = link_hours(truth)
    inferred_hours = link_hours(inferred)
    detected = truth_hours & inferred_hours
    false = inferred_hours - truth_hours
    return InferenceQuality(
        truth_link_hours=len(truth_hours),
        detected_link_hours=len(detected),
        false_link_hours=len(false),
    )
