"""Network metadata joins (paper §4.1, item 3).

The Azure pipeline augments IPFIX with: which cloud service and metro
region a destination belongs to, where the external source prefix
originates (Geo-IP), and which peer/geography a collecting link belongs
to.  ``MetadataStore`` bundles those lookups so the aggregation stage can
do a single join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..topology.wan import CloudWAN
from .geoip import GeoIPDatabase


@dataclass(frozen=True)
class LinkMetadata:
    """Who and where a peering link is."""

    link_id: int
    peer_asn: int
    metro: str
    router: str
    capacity_gbps: float
    kind: str


class MetadataStore:
    """Joins IPFIX identifiers to the features TIPSY trains on."""

    def __init__(self, wan: CloudWAN, geoip: GeoIPDatabase):
        self.wan = wan
        self.geoip = geoip

    def link_metadata(self, link_id: int) -> LinkMetadata:
        link = self.wan.link(link_id)
        return LinkMetadata(link.link_id, link.peer_asn, link.metro,
                            link.router, link.capacity_gbps, link.kind)

    def destination_features(self, dest_prefix_id: int) -> Tuple[str, str]:
        """(region, service type) for a destination prefix."""
        dest = self.wan.dest_prefix(dest_prefix_id)
        return dest.region, dest.service

    def source_location(self, src_prefix_id: int) -> Optional[str]:
        """Geo-IP metro of the source /24 (may be imprecise or missing)."""
        return self.geoip.lookup(src_prefix_id)
