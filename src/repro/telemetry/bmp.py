"""BMP (BGP Monitoring Protocol) feed.

BMP exports every route a WAN edge router receives from its neighbors
(paper §4.1).  TIPSY explicitly does **not** train on BMP — the feed is
used for debugging and for the topology analyses behind Figures 2 and 3.
We reproduce that role: the feed synthesises the routes each peer would
advertise for the source prefixes in its customer cone, and offers an
AS-distance inference over the observed AS paths (the "shortest
valley-free route in the AS-level graph inferred from our BMP data" used
in Figure 2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bgp.messages import Route
from ..topology.asgraph import ASGraph
from ..topology.wan import CloudWAN
from ..traffic.prefixes import PrefixUniverse


@dataclass(frozen=True)
class BmpMessage:
    """A route-monitoring message: which session saw which route."""

    link_id: int
    router: str
    peer_asn: int
    route: Route


class BmpFeed:
    """Synthesised BMP route-monitoring data for the source prefix universe."""

    def __init__(self, graph: ASGraph, wan: CloudWAN, seed: int = 0):
        self.graph = graph
        self.wan = wan
        self.seed = seed
        self._up_chain_cache: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._direct_peers = frozenset(a for a in wan.peer_asns if a in graph)

    def advertisement_path(self, origin_asn: int) -> Optional[Tuple[int, ...]]:
        """AS path, nearest-peer first, by which the WAN hears ``origin_asn``.

        The origin's announcement climbs its provider chain until it
        reaches an AS that directly peers with the WAN (valley-free: only
        customer-learned routes are exported to the WAN peering).  Returns
        None if the origin is unreachable.
        """
        if origin_asn in self._up_chain_cache:
            return self._up_chain_cache[origin_asn]
        path = self._shortest_up_chain(origin_asn)
        self._up_chain_cache[origin_asn] = path
        return path

    def _shortest_up_chain(self, origin_asn: int) -> Optional[Tuple[int, ...]]:
        if origin_asn not in self.graph:
            return None
        if origin_asn in self._direct_peers:
            return (origin_asn,)
        # BFS up provider edges from the origin until hitting a direct peer
        parent: Dict[int, int] = {origin_asn: origin_asn}
        queue = deque([origin_asn])
        found: Optional[int] = None
        while queue and found is None:
            asn = queue.popleft()
            for provider in sorted(self.graph.providers(asn)):
                if provider in parent:
                    continue
                parent[provider] = asn
                if provider in self._direct_peers:
                    found = provider
                    break
                queue.append(provider)
        if found is None:
            return None
        chain = [found]
        asn = found
        while parent[asn] != asn:
            asn = parent[asn]
            chain.append(asn)
        return tuple(chain)  # nearest peer first, origin last

    def messages_for(self, universe: PrefixUniverse) -> List[BmpMessage]:
        """BMP messages for every source prefix, as received at our routers.

        Each prefix is announced to the WAN on the links of the direct
        peer that tops its origin's provider chain.
        """
        messages: List[BmpMessage] = []
        for prefix in universe:
            path = self.advertisement_path(prefix.asn)
            if path is None:
                continue
            peer = path[0]
            links = self.wan.links_of_peer(peer)
            if not links:
                continue
            route = Route(prefix=prefix.cidr, as_path=path, next_hop=f"AS{peer}")
            for link in links:
                messages.append(BmpMessage(link.link_id, link.router,
                                           peer, route))
        return messages

    def as_distance(self, origin_asn: int) -> Optional[int]:
        """Shortest valley-free AS distance inferred from BMP paths."""
        path = self.advertisement_path(origin_asn)
        return len(path) if path else None
