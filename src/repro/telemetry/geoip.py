"""Synthetic Geo-IP database.

The paper relies on a proprietary Microsoft geolocation database to map
source prefixes to large metropolitan areas, noting that geolocation "can
be imprecise" but metro-level precision suffices for TIPSY (§5.3.1).  The
synthetic database maps each source /24 to a metro with a configurable
error rate: a wrong entry points at another metro in the same country when
one exists, otherwise anywhere — mimicking real Geo-IP failure modes.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..topology.geography import MetroCatalog
from ..traffic.prefixes import PrefixUniverse


class GeoIPDatabase:
    """Prefix-id -> metro lookups with realistic imprecision."""

    def __init__(
        self,
        universe: PrefixUniverse,
        metros: MetroCatalog,
        error_rate: float = 0.03,
        seed: int = 0,
    ):
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self.error_rate = error_rate
        rng = random.Random(seed ^ 0x6E01)
        self._table: Dict[int, str] = {}
        all_names = list(metros.names)
        for prefix in universe:
            truth = prefix.metro
            if rng.random() < error_rate:
                country = metros.get(truth).country
                same_country = [m.name for m in metros.in_country(country)
                                if m.name != truth]
                pool = same_country or [n for n in all_names if n != truth]
                self._table[prefix.prefix_id] = rng.choice(pool)
            else:
                self._table[prefix.prefix_id] = truth

    def lookup(self, prefix_id: int) -> Optional[str]:
        """Metro for a prefix, or None if the prefix is unknown."""
        return self._table.get(prefix_id)

    def __len__(self) -> int:
        return len(self._table)

    def error_count(self, universe: PrefixUniverse) -> int:
        """How many entries disagree with ground truth (for tests)."""
        return sum(
            1 for p in universe if self._table.get(p.prefix_id) != p.metro
        )
