"""Telemetry substrate: IPFIX, BMP, Geo-IP, metadata."""

from .ipfix import DEFAULT_PACKET_BYTES, DEFAULT_SAMPLING_RATE, IpfixExporter, IpfixRecord
from .geoip import GeoIPDatabase
from .bmp import BmpFeed, BmpMessage
from .metadata import LinkMetadata, MetadataStore
from .snmp import (
    InferenceQuality,
    SnmpParams,
    SnmpPoller,
    SnmpReading,
    compare_inference,
    infer_outages_from_snmp,
)

__all__ = [
    "DEFAULT_PACKET_BYTES", "DEFAULT_SAMPLING_RATE", "IpfixExporter", "IpfixRecord",
    "GeoIPDatabase", "BmpFeed", "BmpMessage", "LinkMetadata", "MetadataStore",
    "InferenceQuality", "SnmpParams", "SnmpPoller", "SnmpReading",
    "compare_inference", "infer_outages_from_snmp",
]
