"""Telemetry substrate: IPFIX, BMP, Geo-IP, metadata.

The lossy window through which TIPSY sees the world: packet-sampled
IPFIX export (the paper's §4.1 telemetry), BMP route feeds, Geo-IP
metro lookup, and the deliberately unreliable SNMP poller the paper
rejected (§5.1.1), kept for comparison studies.  Models never see
ground truth — only what survives sampling here and aggregation in
:mod:`repro.pipeline`.
"""

from .ipfix import DEFAULT_PACKET_BYTES, DEFAULT_SAMPLING_RATE, IpfixExporter, IpfixRecord
from .geoip import GeoIPDatabase
from .bmp import BmpFeed, BmpMessage
from .metadata import LinkMetadata, MetadataStore
from .snmp import (
    InferenceQuality,
    SnmpParams,
    SnmpPoller,
    SnmpReading,
    compare_inference,
    infer_outages_from_snmp,
)

__all__ = [
    "DEFAULT_PACKET_BYTES", "DEFAULT_SAMPLING_RATE", "IpfixExporter", "IpfixRecord",
    "GeoIPDatabase", "BmpFeed", "BmpMessage", "LinkMetadata", "MetadataStore",
    "InferenceQuality", "SnmpParams", "SnmpPoller", "SnmpReading",
    "compare_inference", "infer_outages_from_snmp",
]
