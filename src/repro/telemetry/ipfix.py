"""IPFIX flow export with packet sampling.

The Azure WAN samples 1 out of every 4096 packets at random and scales
byte counts back up by the sampling rate (paper §4.1).  The exporter here
reproduces that: true per-link byte counts are converted to packets,
thinned with a binomial draw, and scaled back — so low-volume flows may
vanish from telemetry entirely while high-volume flows get a small
relative error.  All downstream components (pipeline, models, outage
inference) consume only these sampled records, never ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..util.hashing import mix64

DEFAULT_SAMPLING_RATE = 4096
DEFAULT_PACKET_BYTES = 1000.0


@dataclass(frozen=True)
class IpfixRecord:
    """One exported (hour, link, flow) observation.

    ``bytes`` is already scaled up by the sampling rate, as in the paper.
    """

    hour: int
    link_id: int
    src_prefix_id: int
    src_asn: int
    dest_prefix_id: int
    bytes: float


class IpfixExporter:
    """Samples true per-link flow bytes into IPFIX records."""

    def __init__(
        self,
        sampling_rate: int = DEFAULT_SAMPLING_RATE,
        packet_bytes: float = DEFAULT_PACKET_BYTES,
        seed: int = 0,
    ):
        if sampling_rate < 1:
            raise ValueError("sampling rate must be >= 1")
        self.sampling_rate = sampling_rate
        self.packet_bytes = packet_bytes
        self.seed = seed

    def sample_bytes(self, true_bytes: np.ndarray, hour: int) -> np.ndarray:
        """Vectorised sampling: true bytes -> scaled-up sampled estimate.

        Deterministic per (exporter seed, hour).  Entries whose sampled
        packet count is zero come back as exactly 0.0 — those flows are
        invisible to TIPSY for that hour, just as in the real pipeline.
        """
        if self.sampling_rate == 1:
            return np.asarray(true_bytes, dtype=float).copy()
        rng = np.random.default_rng(mix64(hour, 0xF10, seed=self.seed))
        packets = np.maximum(
            np.asarray(true_bytes, dtype=float) / self.packet_bytes, 0.0)
        # Binomial(n, p) with large n, small p: Poisson thinning is the
        # standard, cheap approximation and is exact in distribution limit.
        sampled = rng.poisson(packets / self.sampling_rate)
        return sampled * self.sampling_rate * self.packet_bytes

    def export_hour(
        self,
        hour: int,
        entries: Sequence[Tuple[int, int, int, int, float]],
    ) -> List[IpfixRecord]:
        """Export one hour of true (link, flow) byte counts.

        Args:
            hour: absolute hour index.
            entries: tuples of (link_id, src_prefix_id, src_asn,
                dest_prefix_id, true_bytes).

        Returns:
            Records with non-zero sampled bytes.
        """
        if not entries:
            return []
        true = np.array([e[4] for e in entries], dtype=float)
        sampled = self.sample_bytes(true, hour)
        records = []
        for (link_id, src_prefix, src_asn, dest_prefix, _), est in zip(entries, sampled):
            if est > 0.0:
                records.append(IpfixRecord(hour, link_id, src_prefix,
                                           src_asn, dest_prefix, float(est)))
        return records
