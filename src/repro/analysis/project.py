"""Project mode: whole-program analysis with an incremental cache.

``repro lint --project`` upgrades the linter from per-file pattern
checks to semantic, cross-module rules:

1. every module is parsed **once** and summarised into
   :class:`~repro.analysis.callgraph.ModuleFacts` (plus the per-file
   rule violations and RA502 lock findings),
2. the summaries are linked into a
   :class:`~repro.analysis.callgraph.ProjectGraph`,
3. the project rules run over the graph — RA501 (shared-state races
   reachable from pool dispatches), RA502 (lock discipline, rendered
   from per-class findings), RA601 (the ``[tool.repro.layers]``
   architecture contract).

The per-file step is cached on disk keyed by a SHA-256 of the file's
*content* plus the analysis parameters and a cache schema version, so
a warm run re-analyzes only files that actually changed; everything
else is loaded as JSON facts and re-linked.  Linking and the project
rules are cheap (no parsing), which is what makes whole-program
analysis viable in a pre-commit hook.  Cache entries are self-contained
and content-addressed, so the cache directory is safe to delete at any
time and safe to share between branches.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .base import DEFAULT_HOT_PACKAGES, PROJECT_RULES, Violation, \
    ruleset_fingerprint
from .callgraph import ModuleFacts, ProjectGraph, extract_facts, \
    module_name_for
from .dataflow import DetSite, DeterminismConfig, check_determinism, \
    extract_det_sites, find_determinism_config
from .durability import DuraSite, DurabilityConfig, check_durability, \
    extract_dura_sites, find_durability_config
from .engine import AnalysisReport, analyze_parsed, display_for, \
    iter_python_files
from .fixer import fix_for_site
from .layers import LayerConfig, check_layers, find_layer_config
from .lifecycle import LifeSite, check_lifecycle, extract_life_sites
from .locks import LockFinding, find_lock_findings, \
    violations_from_findings
from .races import check_races

#: bump when the facts schema or any project rule's extraction changes;
#: stale entries are simply misses (their keys never match again).
#: v2: determinism sites (RA7xx) joined the per-file payload.
#: v3: lifecycle and durability sites (RA8xx) joined the payload.
CACHE_SCHEMA_VERSION = 3

#: default cache location, relative to the current working directory
DEFAULT_CACHE_DIR = Path(".repro-lint-cache")


@dataclass
class _FileAnalysis:
    """Everything project mode derives from one file."""

    facts: Optional[ModuleFacts]            # None when the parse failed
    violations: List[Violation]             # per-file rules (post-noqa)
    lock_findings: List[LockFinding]
    det_sites: List[DetSite]                # raw RA7xx sites (pre-noqa)
    life_sites: List[LifeSite]              # raw RA801/802/803/805 sites
    dura_sites: List[DuraSite]              # raw RA804 sites

    def to_json(self) -> Dict[str, object]:
        return {
            "facts": None if self.facts is None else self.facts.to_json(),
            # paths are display-relative and recomputed on load, so the
            # cache stays valid when the run's cwd or root changes
            "violations": [{"line": v.line, "col": v.col,
                            "code": v.code, "message": v.message}
                           for v in self.violations],
            "lock_findings": [f.to_json() for f in self.lock_findings],
            "det_sites": [s.to_json() for s in self.det_sites],
            "life_sites": [s.to_json() for s in self.life_sites],
            "dura_sites": [s.to_json() for s in self.dura_sites],
        }

    @classmethod
    def from_json(cls, raw: Dict[str, object],
                  display: str) -> "_FileAnalysis":
        facts = None
        if raw.get("facts") is not None:
            facts = ModuleFacts.from_json(raw["facts"])  # type: ignore[arg-type]
            facts.display_path = display
        violations = [
            Violation(path=display, line=int(v["line"]),
                      col=int(v["col"]), code=str(v["code"]),
                      message=str(v["message"]))
            for v in raw.get("violations", ())]  # type: ignore[union-attr]
        lock_findings = [LockFinding.from_json(f)
                         for f in raw.get("lock_findings", ())]  # type: ignore[union-attr]
        det_sites = [DetSite.from_json(s)
                     for s in raw.get("det_sites", ())]  # type: ignore[union-attr]
        life_sites = [LifeSite.from_json(s)
                      for s in raw.get("life_sites", ())]  # type: ignore[union-attr]
        dura_sites = [DuraSite.from_json(s)
                      for s in raw.get("dura_sites", ())]  # type: ignore[union-attr]
        return cls(facts=facts, violations=violations,
                   lock_findings=lock_findings, det_sites=det_sites,
                   life_sites=life_sites, dura_sites=dura_sites)


class ProjectCache:
    """Content-addressed per-file analysis cache with hit/miss counters.

    ``cache_dir=None`` disables persistence but keeps the counters, so
    callers can always read ``hits``/``misses``.
    """

    def __init__(self, cache_dir: Optional[Path],
                 params_key: str) -> None:
        self.cache_dir = cache_dir
        self.params_key = params_key
        self.hits = 0
        self.misses = 0

    def key_for(self, content: bytes, module: str) -> str:
        digest = hashlib.sha256()
        digest.update(
            f"v{CACHE_SCHEMA_VERSION}\x00{self.params_key}\x00"
            f"{module}\x00".encode("utf-8"))
        digest.update(content)
        return digest.hexdigest()

    def _path_for(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def get(self, key: str, display: str) -> Optional[_FileAnalysis]:
        path = self._path_for(key)
        if path is None or not path.is_file():
            self.misses += 1
            return None
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            entry = _FileAnalysis.from_json(raw, display)
        except (ValueError, KeyError, TypeError):
            # a corrupt entry is just a miss; it will be rewritten
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: _FileAnalysis) -> None:
        path = self._path_for(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry.to_json(), sort_keys=True),
                       encoding="utf-8")
        tmp.replace(path)  # atomic: parallel lint runs never see torn JSON


def _analyze_file(file_path: Path, source: str, display: str,
                  hot_packages: FrozenSet[str],
                  internal_roots: FrozenSet[str]) -> _FileAnalysis:
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        return _FileAnalysis(
            facts=None,
            violations=[Violation(
                path=display, line=exc.lineno or 1,
                col=(exc.offset or 0) + 1, code="RA000",
                message=f"syntax error: {exc.msg}")],
            lock_findings=[], det_sites=[], life_sites=[],
            dura_sites=[])
    violations = analyze_parsed(source, file_path, tree,
                                hot_packages=hot_packages,
                                display_path=display)
    facts = extract_facts(tree, source, file_path, display,
                          internal_roots)
    return _FileAnalysis(facts=facts, violations=violations,
                         lock_findings=find_lock_findings(tree),
                         det_sites=extract_det_sites(tree),
                         life_sites=extract_life_sites(tree),
                         dura_sites=extract_dura_sites(tree))


def _determinism_scope_warnings(
        files: Sequence[Tuple[Path, str]],
        config: DeterminismConfig) -> List[Violation]:
    """RA700 when one run spans pyprojects with different contract tables.

    The determinism table is resolved once, from the first analyzed
    path (mirroring the layer-config behavior).  A file that actually
    sits under a *different* pyproject would silently inherit the wrong
    contracts, so each distinct foreign root draws one warning naming
    both tables instead of being checked against the wrong one in
    silence.
    """
    warnings: List[Violation] = []
    source_by_dir: Dict[Path, Optional[str]] = {}
    flagged: Set[str] = set()
    for path, display in files:
        directory = path.resolve().parent
        if directory not in source_by_dir:
            found = find_determinism_config(directory)
            source_by_dir[directory] = (None if found is None
                                        else found.source)
        source = source_by_dir[directory]
        if source == config.source:
            continue
        label = source or "<no determinism table>"
        if label in flagged:
            continue
        flagged.add(label)
        warnings.append(Violation(
            path=display, line=1, col=1, code="RA700",
            message=(f"file is governed by {label}, but this run "
                     f"applied the contracts from {config.source} "
                     "(resolved from the first analyzed path); lint "
                     "each root separately or pass one explicit "
                     "config")))
    return warnings


def _durability_scope_warnings(
        files: Sequence[Tuple[Path, str]],
        config: DurabilityConfig) -> List[Violation]:
    """RA800 when one run spans pyprojects with different artifact tables.

    Mirrors :func:`_determinism_scope_warnings`: the durability table
    is resolved once from the first analyzed path, and each distinct
    foreign root draws one warning rather than being silently checked
    against the wrong artifact patterns.
    """
    warnings: List[Violation] = []
    source_by_dir: Dict[Path, Optional[str]] = {}
    flagged: Set[str] = set()
    for path, display in files:
        directory = path.resolve().parent
        if directory not in source_by_dir:
            found = find_durability_config(directory)
            source_by_dir[directory] = (None if found is None
                                        else found.source)
        source = source_by_dir[directory]
        if source == config.source:
            continue
        label = source or "<no durability table>"
        if label in flagged:
            continue
        flagged.add(label)
        warnings.append(Violation(
            path=display, line=1, col=1, code="RA800",
            message=(f"file is governed by {label}, but this run "
                     f"applied the artifact patterns from "
                     f"{config.source} (resolved from the first "
                     "analyzed path); lint each root separately or "
                     "pass one explicit config")))
    return warnings


def analyze_project(paths: Sequence[Path],
                    hot_packages: FrozenSet[str] = DEFAULT_HOT_PACKAGES,
                    select: Optional[FrozenSet[str]] = None,
                    root: Optional[Path] = None,
                    cache_dir: Optional[Path] = DEFAULT_CACHE_DIR,
                    layer_config: Optional[LayerConfig] = None,
                    determinism: Optional[DeterminismConfig] = None,
                    durability: Optional[DurabilityConfig] = None
                    ) -> AnalysisReport:
    """Whole-program lint: per-file rules plus RA5xx through RA8xx.

    ``layer_config`` defaults to the nearest ``[tool.repro.layers]``
    table above the first analyzed path; without one, RA601 is skipped
    (there is no contract to enforce).  ``determinism`` defaults the
    same way to the nearest ``[tool.repro.determinism]`` table and
    gates the RA700–RA704 dataflow rules; ``durability`` likewise
    defaults to the nearest ``[tool.repro.durability]`` table and
    gates RA804.  When the analyzed paths span pyprojects with
    *different* tables, the first root's table applies and every
    foreign root draws an RA700/RA800 warning.  The lifecycle rules
    RA801/RA802/RA803/RA805 need no configuration and always run.
    """
    files: List[Tuple[Path, str]] = []   # (path, display)
    for file_path in iter_python_files(paths):
        display = display_for(file_path, root)
        files.append((file_path, display if display is not None
                      else str(file_path)))

    # internal roots are derived from the analyzed set itself, so the
    # graph needs no package configuration; they feed the cache key
    # because facts extraction depends on them
    module_names = {path: module_name_for(path) for path, _ in files}
    internal_roots = frozenset(name.split(".")[0]
                               for name in module_names.values())

    # the rule-set fingerprint folds the linter version, the rule
    # registry, and the analyzer's own source into the key: editing any
    # checker invalidates every warm entry rather than serving clean
    # verdicts computed by an older rule set
    params_key = "|".join([
        ",".join(sorted(hot_packages)),
        ",".join(sorted(internal_roots)),
        ruleset_fingerprint(),
    ])
    cache = ProjectCache(cache_dir, params_key)

    report = AnalysisReport(cache_hits=0, cache_misses=0)
    analyses: List[_FileAnalysis] = []
    for file_path, display in files:
        content = file_path.read_bytes()
        key = cache.key_for(content, module_names[file_path])
        entry = cache.get(key, display)
        if entry is None:
            entry = _analyze_file(
                file_path, content.decode("utf-8"), display,
                hot_packages, internal_roots)
            cache.put(key, entry)
        analyses.append(entry)
        report.files_scanned += 1

    violations: List[Violation] = []
    modules: List[ModuleFacts] = []
    for entry in analyses:
        violations.extend(entry.violations)
        if entry.facts is None:
            continue
        modules.append(entry.facts)
        violations.extend(violations_from_findings(
            entry.lock_findings, entry.facts.display_path,
            entry.facts.suppressed))

    graph = ProjectGraph.link(modules)
    violations.extend(check_races(graph))

    life_by_module: Dict[str, List[LifeSite]] = {}
    for entry in analyses:
        if entry.facts is not None:
            life_by_module.setdefault(
                entry.facts.module, []).extend(entry.life_sites)
    violations.extend(check_lifecycle(graph, life_by_module))

    if layer_config is None and files:
        layer_config = find_layer_config(files[0][0])
    if layer_config is not None:
        violations.extend(check_layers(modules, layer_config))

    if determinism is None and files:
        determinism = find_determinism_config(files[0][0])
        if determinism is not None:
            violations.extend(
                _determinism_scope_warnings(files, determinism))
    if determinism is not None:
        sites_by_module: Dict[str, List[DetSite]] = {}
        for entry in analyses:
            if entry.facts is not None:
                sites_by_module.setdefault(
                    entry.facts.module, []).extend(entry.det_sites)
        det_violations, fixable = check_determinism(
            graph, sites_by_module, determinism)
        violations.extend(det_violations)
        path_for_display = {display: str(path)
                            for path, display in files}
        for display, site in fixable:
            if select is not None and site.code not in select:
                continue
            real = path_for_display.get(display)
            if real is None:
                continue
            fix = fix_for_site(real, display, site)
            if fix is not None:
                report.fixes.append(fix)

    if durability is None and files:
        durability = find_durability_config(files[0][0])
        if durability is not None:
            violations.extend(
                _durability_scope_warnings(files, durability))
    if durability is not None:
        dura_by_module: Dict[str, List[DuraSite]] = {}
        for entry in analyses:
            if entry.facts is not None:
                dura_by_module.setdefault(
                    entry.facts.module, []).extend(entry.dura_sites)
        violations.extend(
            check_durability(graph, dura_by_module, durability))

    if select is not None:
        violations = [v for v in violations if v.code in select]
    report.violations = sorted(violations)
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    return report


#: re-exported so callers can reason about which codes need --project
__all__ = ["CACHE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR", "ProjectCache",
           "analyze_project", "PROJECT_RULES"]
