"""Per-module semantic facts and the conservative project call graph.

The project analyzer (``project.py``) parses every module once and asks
this module two questions about each:

* :func:`module_name_for` — what dotted module does this file define?
  (Derived structurally, by walking up through ``__init__.py`` package
  directories, so the extractor works on the real tree and on fixture
  trees alike.)
* :func:`extract_facts` — a :class:`ModuleFacts` summary: module-scope
  internal imports (for the RA601 layer contract), per-function call
  candidates, module/class-state writes and pool-dispatch sites (for
  the RA501 race detector), and the file's ``# repro: noqa`` map so
  project rules can honour suppressions without re-reading source.

Facts are plain data (JSON round-trippable) because the project cache
persists them keyed by content hash; a warm run rebuilds the call graph
from cached facts without re-parsing unchanged files.

The call graph is *conservative* in the usual static-analysis sense:
edges exist only where a callee is resolvable by name (module-level
functions, imported symbols — including one level of package
re-exports — ``self.method()`` within a class, and class
instantiation, which edges to ``__init__``).  Calls through arbitrary
objects resolve to nothing and add no edges; the race detector
documents that blind spot rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from .base import suppressed_lines

#: attribute calls always treated as crossing a process-pool boundary
#: (mirrors ``parallel.py``'s single-file RA101/RA102 heuristics)
_DISPATCH_ALWAYS: FrozenSet[str] = frozenset({
    "submit", "apply", "apply_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "map_async",
})

#: ``.map`` only counts for pool-ish receivers (it is too common an API)
_DISPATCH_POOLISH: FrozenSet[str] = frozenset({"map"})

#: method names that mutate the receiver in place
_MUTATING_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
    "extendleft",
})


@dataclass(frozen=True)
class ImportFact:
    """One module-scope runtime import of an internal module."""

    target: str     # dotted module, e.g. "repro.core.training"
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        return {"target": self.target, "lineno": self.lineno,
                "col": self.col}

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "ImportFact":
        return cls(str(raw["target"]), int(raw["lineno"]),  # type: ignore[arg-type]
                   int(raw["col"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class WriteFact:
    """One write to module- or class-level state inside a function."""

    target: str     # e.g. "_WORKER" or "Config.registry"
    kind: str       # "global-assign" | "mutation" | "class-attr"
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        return {"target": self.target, "kind": self.kind,
                "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "WriteFact":
        return cls(str(raw["target"]), str(raw["kind"]),
                   int(raw["lineno"]), int(raw["col"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class DispatchFact:
    """One pool-dispatch site: the callable candidate it ships."""

    callee: str     # dotted candidate, resolved like a call
    how: str        # human description, e.g. ".submit(...)"
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        return {"callee": self.callee, "how": self.how,
                "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "DispatchFact":
        return cls(str(raw["callee"]), str(raw["how"]),
                   int(raw["lineno"]), int(raw["col"]))  # type: ignore[arg-type]


@dataclass
class FunctionFacts:
    """What one top-level function (or method) does, summarised."""

    qualname: str                       # "f", "C.m", or "<module>"
    calls: Tuple[str, ...] = ()         # dotted callee candidates
    writes: Tuple[WriteFact, ...] = ()
    dispatches: Tuple[DispatchFact, ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "calls": list(self.calls),
            "writes": [w.to_json() for w in self.writes],
            "dispatches": [d.to_json() for d in self.dispatches],
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "FunctionFacts":
        return cls(
            qualname=str(raw["qualname"]),
            calls=tuple(str(c) for c in raw.get("calls", ())),  # type: ignore[union-attr]
            writes=tuple(WriteFact.from_json(w)
                         for w in raw.get("writes", ())),  # type: ignore[union-attr]
            dispatches=tuple(DispatchFact.from_json(d)
                             for d in raw.get("dispatches", ())),  # type: ignore[union-attr]
        )


@dataclass
class ModuleFacts:
    """Everything the project rules need to know about one module."""

    module: str                         # dotted name ("repro.core.service")
    display_path: str
    internal_imports: Tuple[ImportFact, ...] = ()
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    #: top-level name -> "function" | "class"
    defs: Dict[str, str] = field(default_factory=dict)
    #: imported symbol -> dotted origin, for re-export following
    symbol_imports: Dict[str, str] = field(default_factory=dict)
    #: lineno -> suppressed codes (None = bare noqa, all codes)
    suppressed: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "display_path": self.display_path,
            "internal_imports": [i.to_json()
                                 for i in self.internal_imports],
            "functions": {name: fn.to_json()
                          for name, fn in self.functions.items()},
            "defs": dict(self.defs),
            "symbol_imports": dict(self.symbol_imports),
            "suppressed": {str(line): (None if codes is None
                                       else sorted(codes))
                           for line, codes in self.suppressed.items()},
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "ModuleFacts":
        suppressed: Dict[int, Optional[FrozenSet[str]]] = {}
        for line, codes in dict(raw.get("suppressed", {})).items():  # type: ignore[arg-type]
            suppressed[int(line)] = (None if codes is None
                                     else frozenset(str(c) for c in codes))
        return cls(
            module=str(raw["module"]),
            display_path=str(raw["display_path"]),
            internal_imports=tuple(
                ImportFact.from_json(i)
                for i in raw.get("internal_imports", ())),  # type: ignore[union-attr]
            functions={str(k): FunctionFacts.from_json(v)
                       for k, v in dict(raw.get("functions", {})).items()},  # type: ignore[arg-type]
            defs={str(k): str(v)
                  for k, v in dict(raw.get("defs", {})).items()},  # type: ignore[arg-type]
            symbol_imports={str(k): str(v) for k, v in
                            dict(raw.get("symbol_imports", {})).items()},  # type: ignore[arg-type]
            suppressed=suppressed,
        )

    def is_suppressed(self, lineno: int, code: str) -> bool:
        """Does the noqa map silence ``code`` on ``lineno``?"""
        codes = self.suppressed.get(lineno, frozenset())
        return codes is None or code in codes


# -- module naming ------------------------------------------------------------

def module_name_for(path: Path) -> str:
    """Dotted module name for a file, derived from the package tree.

    Walks up while the parent directory is a package (has
    ``__init__.py``); a file outside any package is just its stem.
    """
    path = path.resolve()
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    cursor = path.parent
    while (cursor / "__init__.py").exists():
        parts.append(cursor.name)
        parent = cursor.parent
        if parent == cursor:
            break
        cursor = parent
    return ".".join(reversed(parts)) or path.stem


def _package_parts(module: str, is_init: bool) -> List[str]:
    """The package path relative imports resolve against."""
    parts = module.split(".")
    return parts if is_init else parts[:-1]


# -- extraction ---------------------------------------------------------------

class _Extractor:
    """Single pass over one module's AST producing :class:`ModuleFacts`."""

    def __init__(self, module: str, is_init: bool,
                 internal_roots: FrozenSet[str]):
        self.module = module
        self.package = _package_parts(module, is_init)
        self.internal_roots = internal_roots
        #: local name -> dotted target it was bound to by an import
        self.import_bindings: Dict[str, str] = {}
        self.symbol_imports: Dict[str, str] = {}
        self.internal_imports: List[ImportFact] = []
        self.defs: Dict[str, str] = {}
        self.module_level_names: Set[str] = set()

    # -- import resolution -------------------------------------------------

    def _absolute_module(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        anchor = self.package[:len(self.package) - (node.level - 1)]
        if not anchor and node.level > 1:
            return None  # relative import escaping the package tree
        if node.module:
            return ".".join(anchor + node.module.split("."))
        return ".".join(anchor) or None

    def _note_import(self, node: ast.stmt, target: str,
                     module_scope: bool) -> None:
        if module_scope and target.split(".")[0] in self.internal_roots:
            self.internal_imports.append(ImportFact(
                target=target, lineno=node.lineno,
                col=node.col_offset + 1))

    def _collect_import(self, node: ast.stmt, module_scope: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                bound = alias.name if alias.asname else local
                self.import_bindings[local] = bound
                self._note_import(node, alias.name, module_scope)
                if module_scope:
                    self.module_level_names.add(local)
        elif isinstance(node, ast.ImportFrom):
            module = self._absolute_module(node)
            if module is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                dotted = f"{module}.{alias.name}"
                self.import_bindings[local] = dotted
                self.symbol_imports[local] = dotted
                # "from repro import core" imports the submodule itself
                self._note_import(
                    node,
                    dotted if module.split(".")[0] in self.internal_roots
                    else module,
                    module_scope)
                if module_scope:
                    self.module_level_names.add(local)

    # -- name/call resolution ----------------------------------------------

    def _dotted_for(self, node: ast.expr) -> Optional[str]:
        """Fully-dotted candidate for a Name/Attribute expression."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        base = self.import_bindings.get(cursor.id)
        if base is not None:
            return ".".join([base] + list(reversed(parts)))
        if cursor.id in self.defs:
            return ".".join([self.module, cursor.id]
                            + list(reversed(parts)))
        return None

    def _callee_candidate(self, node: ast.expr,
                          owner_class: Optional[str]) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self._dotted_for(node)
        if isinstance(node, ast.Attribute):
            if (owner_class is not None
                    and isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")):
                return f"{self.module}.{owner_class}.{node.attr}"
            return self._dotted_for(node)
        return None

    # -- per-function walk ---------------------------------------------------

    @staticmethod
    def _binding_names(target: ast.expr, into: Set[str]) -> None:
        """Names a store target actually *binds* locally.

        ``x = ...`` and ``a, b = ...`` bind; ``x[k] = ...`` and
        ``x.attr = ...`` mutate an existing object and bind nothing.
        """
        if isinstance(target, ast.Name):
            into.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                _Extractor._binding_names(element, into)
        elif isinstance(target, ast.Starred):
            _Extractor._binding_names(target.value, into)

    def _local_bindings(self, fn: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(names local to the function, names declared ``global``)."""
        local: Set[str] = set()
        declared_global: Set[str] = set()
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = fn.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs
                        + [a for a in (args.vararg, args.kwarg) if a]):
                local.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)) and node is not fn:
                local.add(node.name)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                   ast.For, ast.AsyncFor, ast.withitem,
                                   ast.NamedExpr)):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    targets = [node.target]
                elif isinstance(node, ast.withitem):
                    if node.optional_vars is not None:
                        targets = [node.optional_vars]
                elif isinstance(node, ast.NamedExpr):
                    targets = [node.target]
                for target in targets:
                    self._binding_names(target, local)
            elif isinstance(node, ast.comprehension):
                self._binding_names(node.target, local)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                local.add(node.name)
        return local - declared_global, declared_global

    def _is_module_state(self, name: str, local: Set[str]) -> bool:
        return name not in local and name in self.module_level_names

    def _class_target(self, node: ast.expr,
                      owner_class: Optional[str]) -> Optional[str]:
        """``C.attr = ...`` / ``cls.attr = ...`` write target, if any."""
        if not isinstance(node, ast.Attribute):
            return None
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "cls" and owner_class is not None:
                return f"{owner_class}.{node.attr}"
            if self.defs.get(base.id) == "class":
                return f"{base.id}.{node.attr}"
            bound = self.symbol_imports.get(base.id)
            # imported-name class writes resolve only if clearly a class
            # (CapWord convention) — anything else is too speculative
            if bound is not None and base.id[:1].isupper():
                return f"{base.id}.{node.attr}"
        return None

    def _walk_function(self, fn_body: List[ast.stmt], qualname: str,
                       owner_class: Optional[str],
                       local: Set[str],
                       declared_global: Set[str]) -> FunctionFacts:
        calls: List[str] = []
        writes: List[WriteFact] = []
        dispatches: List[DispatchFact] = []

        def record_write(target: str, kind: str, node: ast.AST) -> None:
            writes.append(WriteFact(
                target=target, kind=kind,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1))

        def check_store(target: ast.expr, node: ast.AST) -> None:
            # X = ... / X += ... where X was declared global
            if isinstance(target, ast.Name):
                if target.id in declared_global:
                    record_write(target.id, "global-assign", node)
                return
            # X[...] = ... / X.attr = ... forms
            if isinstance(target, ast.Subscript):
                base = target.value
                if isinstance(base, ast.Name) and self._is_module_state(
                        base.id, local):
                    record_write(base.id, "mutation", node)
                elif isinstance(base, ast.Attribute):
                    dotted = self._dotted_for(base)
                    if dotted is not None:
                        record_write(dotted, "mutation", node)
                return
            if isinstance(target, ast.Attribute):
                class_attr = self._class_target(target, owner_class)
                if class_attr is not None:
                    record_write(class_attr, "class-attr", node)
                    return
                if isinstance(target.value, ast.Name) \
                        and self._is_module_state(target.value.id, local):
                    record_write(f"{target.value.id}.{target.attr}",
                                 "mutation", node)
                elif self._dotted_for(target.value) is not None:
                    dotted = self._dotted_for(target.value)
                    # attribute store on an imported module is a write to
                    # that module's state
                    if dotted in self.import_bindings.values():
                        record_write(f"{dotted}.{target.attr}",
                                     "mutation", node)
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    check_store(element, node)

        def check_call(node: ast.Call) -> None:
            candidate = self._callee_candidate(node.func, owner_class)
            if candidate is not None:
                calls.append(candidate)
            # mutating method on module-level state: X.append(...) etc.
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS:
                base = node.func.value
                if isinstance(base, ast.Name) and self._is_module_state(
                        base.id, local):
                    writes.append(WriteFact(
                        target=base.id, kind="mutation",
                        lineno=node.lineno, col=node.col_offset + 1))
            # pool dispatches
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                poolish = attr in _DISPATCH_POOLISH and _receiver_is_poolish(
                    node.func.value)
                if (attr in _DISPATCH_ALWAYS or poolish) and node.args:
                    callee = self._callee_candidate(node.args[0],
                                                    owner_class)
                    if callee is not None:
                        dispatches.append(DispatchFact(
                            callee=callee, how=f".{attr}(...)",
                            lineno=node.lineno, col=node.col_offset + 1))
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    callee = self._callee_candidate(keyword.value,
                                                    owner_class)
                    if callee is not None:
                        dispatches.append(DispatchFact(
                            callee=callee, how="as `initializer=`",
                            lineno=node.lineno, col=node.col_offset + 1))

        for stmt in fn_body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        check_store(target, node)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    check_store(node.target, node)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        check_store(target, node)
                elif isinstance(node, ast.Call):
                    check_call(node)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    # lazy imports extend resolution but are not layer
                    # edges (deliberate cycle-breaks happen in functions)
                    self._collect_import(node, module_scope=False)
        return FunctionFacts(qualname=qualname, calls=tuple(calls),
                             writes=tuple(writes),
                             dispatches=tuple(dispatches))

    # -- the module walk -----------------------------------------------------

    def extract(self, tree: ast.Module, source: str,
                display_path: str) -> ModuleFacts:
        # pass 1: module-scope bindings (imports, defs, assignments) so
        # function walks can classify names
        module_stmts: List[ast.stmt] = []

        def scan_top(body: List[ast.stmt]) -> None:
            for node in body:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    self._collect_import(node, module_scope=True)
                    module_stmts.append(node)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self.defs[node.name] = "function"
                    self.module_level_names.add(node.name)
                elif isinstance(node, ast.ClassDef):
                    self.defs[node.name] = "class"
                    self.module_level_names.add(node.name)
                elif isinstance(node, ast.If):
                    if _is_type_checking(node.test):
                        # bindings still resolve names; the imports are
                        # not runtime layer edges
                        for sub in ast.walk(node):
                            if isinstance(sub, (ast.Import,
                                                ast.ImportFrom)):
                                self._collect_import(sub,
                                                     module_scope=False)
                    else:
                        scan_top(node.body)
                        scan_top(node.orelse)
                elif isinstance(node, ast.Try):
                    # `try: import x / except ImportError:` fallbacks
                    scan_top(node.body)
                    for handler in node.handlers:
                        scan_top(handler.body)
                    scan_top(node.orelse)
                    scan_top(node.finalbody)
                else:
                    for target in ast.walk(node):
                        if isinstance(target, ast.Name) and isinstance(
                                target.ctx, ast.Store):
                            self.module_level_names.add(target.id)
                    module_stmts.append(node)

        scan_top(tree.body)

        functions: Dict[str, FunctionFacts] = {}

        def add_function(fn: ast.stmt, qualname: str,
                         owner_class: Optional[str]) -> None:
            assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            local, declared_global = self._local_bindings(fn)
            functions[qualname] = self._walk_function(
                fn.body, qualname, owner_class, local, declared_global)

        def scan_defs(body: List[ast.stmt]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    add_function(node, node.name, None)
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            add_function(item,
                                         f"{node.name}.{item.name}",
                                         node.name)
                elif isinstance(node, ast.If) and not _is_type_checking(
                        node.test):
                    scan_defs(node.body)
                    scan_defs(node.orelse)

        scan_defs(tree.body)

        # module-level statements form a pseudo-function so top-level
        # dispatch sites (scripts, examples) still seed reachability
        functions["<module>"] = self._walk_function(
            module_stmts, "<module>", None, set(), set())

        return ModuleFacts(
            module=self.module,
            display_path=display_path,
            internal_imports=tuple(self.internal_imports),
            functions=functions,
            defs=self.defs,
            symbol_imports=self.symbol_imports,
            suppressed=suppressed_lines(source),
        )


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _receiver_is_poolish(node: ast.expr) -> bool:
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        return _receiver_is_poolish(node.func)
    if name is None:
        return False
    lowered = name.lower()
    return "pool" in lowered or "executor" in lowered


def extract_facts(tree: ast.Module, source: str, path: Path,
                  display_path: str,
                  internal_roots: FrozenSet[str]) -> ModuleFacts:
    """Extract :class:`ModuleFacts` from one parsed module."""
    module = module_name_for(path)
    extractor = _Extractor(module, path.name == "__init__.py",
                           internal_roots)
    return extractor.extract(tree, source, display_path)


# -- the linked project graph -------------------------------------------------

#: a resolved function node: (module dotted name, qualname)
FunctionKey = Tuple[str, str]


class ProjectGraph:
    """All modules' facts linked into a resolvable call graph."""

    def __init__(self, modules: Dict[str, ModuleFacts]):
        self.modules = modules

    @classmethod
    def link(cls, facts: List[ModuleFacts]) -> "ProjectGraph":
        return cls({f.module: f for f in facts})

    def function(self, key: FunctionKey) -> Optional[FunctionFacts]:
        module = self.modules.get(key[0])
        if module is None:
            return None
        return module.functions.get(key[1])

    def resolve_callable(self, dotted: str,
                         _depth: int = 0) -> Optional[FunctionKey]:
        """Map a dotted candidate to a known function, conservatively.

        Handles plain functions, methods, classes (→ ``__init__``), and
        one chain of package re-exports (``from repro.core import
        TipsyService`` where ``repro.core.__init__`` re-imports it).
        """
        if _depth > 8:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            return self._resolve_in_module(module, rest, _depth)
        return None

    def _resolve_in_module(self, module: ModuleFacts, rest: List[str],
                           depth: int) -> Optional[FunctionKey]:
        name = ".".join(rest)
        if name in module.functions:
            return (module.module, name)
        head = rest[0]
        kind = module.defs.get(head)
        if kind == "class":
            init = f"{head}.__init__"
            if len(rest) == 1 and init in module.functions:
                return (module.module, init)
            if len(rest) == 2:
                target = f"{head}.{rest[1]}"
                if target in module.functions:
                    return (module.module, target)
            return None
        if head in module.symbol_imports:
            chained = ".".join([module.symbol_imports[head]] + rest[1:])
            return self.resolve_callable(chained, depth + 1)
        return None

    def dispatch_roots(self) -> List[Tuple[FunctionKey, ModuleFacts,
                                           DispatchFact]]:
        """Every resolvable pool-dispatched callable, with its site."""
        roots: List[Tuple[FunctionKey, ModuleFacts, DispatchFact]] = []
        for module in sorted(self.modules.values(),
                             key=lambda m: m.display_path):
            for fn in sorted(module.functions.values(),
                             key=lambda f: f.qualname):
                for dispatch in fn.dispatches:
                    key = self.resolve_callable(dispatch.callee)
                    if key is not None:
                        roots.append((key, module, dispatch))
        return roots

    def reachable_from(self, roots: List[FunctionKey]
                       ) -> Dict[FunctionKey, FunctionKey]:
        """BFS closure over call edges: node -> the root it came from."""
        origin: Dict[FunctionKey, FunctionKey] = {}
        queue: List[FunctionKey] = []
        for root in roots:
            if root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            key = queue.pop(0)
            fn = self.function(key)
            if fn is None:
                continue
            for candidate in fn.calls:
                callee = self.resolve_callable(candidate)
                if callee is not None and callee not in origin:
                    origin[callee] = origin[key]
                    queue.append(callee)
        return origin
