"""RA501: shared-state races reachable from process-pool dispatches.

The paper-scale pipeline leans on ``ParallelPipelineRunner`` shipping
hour shards to worker processes and proving the merge equals the serial
run.  That proof silently assumes no shard function — nor anything it
transitively calls — mutates module- or class-level state that the
parent later reads: under ``fork`` such writes vanish into the child,
under ``spawn`` they hit re-imported fresh modules, and under threads
they race outright.  Either way the serial/parallel equivalence breaks
in a fashion no unit test of the function in isolation can catch.

This rule walks the conservative call graph built by
:mod:`callgraph`:

1. *Roots*: every callable handed to a pool dispatch method
   (``.submit``, ``.apply_async``, ``.imap*``, ``.starmap*``,
   ``.map_async`` always; ``.map`` when the receiver looks pool-ish)
   or passed as a pool ``initializer=``.
2. *Closure*: BFS over resolvable call edges from those roots.
3. *Findings*: every recorded write to module-level or class-level
   state inside the closure — ``global`` rebinding, in-place mutation
   of a module-level container, or a ``Cls.attr`` / ``cls.attr``
   store.

The violation is reported **at the write site** (that is the line to
fix or annotate), with the dispatch root named in the message so the
reader can trace the path.  Worker-local state that is mutated *by
design* (per-process caches re-initialised by the pool initializer)
is annotated ``# repro: noqa[RA501]`` with a why-comment — see
``repro/perf/parallel.py`` for the idiom.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .base import Violation
from .callgraph import FunctionKey, ProjectGraph


def check_races(graph: ProjectGraph) -> List[Violation]:
    """All RA501 violations in a linked project graph."""
    roots = graph.dispatch_roots()
    root_keys = [key for key, _module, _dispatch in roots]
    origin = graph.reachable_from(root_keys)

    # root key -> human-readable dispatch description for messages
    described: Dict[FunctionKey, str] = {}
    for key, module, dispatch in roots:
        if key not in described:
            described[key] = (f"{module.display_path}:{dispatch.lineno} "
                              f"{dispatch.how}")

    violations: List[Violation] = []
    seen: Set[Tuple[str, int, str]] = set()
    for key in sorted(origin):
        fn = graph.function(key)
        if fn is None:
            continue
        module = graph.modules[key[0]]
        root = origin[key]
        root_fn = f"{root[0]}.{root[1]}"
        for write in fn.writes:
            dedupe = (module.display_path, write.lineno, write.target)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            if module.is_suppressed(write.lineno, "RA501"):
                continue
            if key == root:
                reach = "is dispatched to a process pool"
            else:
                reach = (f"is reachable from pool-dispatched "
                         f"`{root_fn}`")
            if write.kind == "global-assign":
                what = f"rebinds module global `{write.target}`"
            elif write.kind == "class-attr":
                what = f"writes class attribute `{write.target}`"
            else:
                what = f"mutates module-level `{write.target}` in place"
            violations.append(Violation(
                path=module.display_path,
                line=write.lineno,
                col=write.col,
                code="RA501",
                message=(f"`{key[1]}` {what} but {reach} "
                         f"(dispatch at {described[root]}); worker "
                         "writes never merge back — pass state "
                         "explicitly, or mark deliberate per-process "
                         "state with `# repro: noqa[RA501]` and a "
                         "why-comment"),
            ))
    return sorted(violations)
