"""The analyzer engine: walk files, run every checker, apply noqa.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
lint gate runs anywhere the package imports — CI, pre-commit, or a
bare container with nothing but the runtime installed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence

from .base import (DEFAULT_HOT_PACKAGES, ModuleContext, Violation,
                   apply_suppressions, checker_classes)
from .fixer import Fix

#: directory names never worth scanning
_SKIP_DIRS: FrozenSet[str] = frozenset({
    "__pycache__", ".git", ".venv", "venv", "build", "dist",
    "node_modules",
})


@dataclass
class AnalysisReport:
    """Everything one lint run produced.

    ``cache_hits``/``cache_misses`` stay ``None`` for plain per-file
    runs; project mode (``--project``) fills them from its incremental
    per-file cache so callers — and the lint bench suite — can assert
    how much work a warm run actually skipped.
    """

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    #: applicable autofixes for the reported RA7xx findings (project
    #: mode only); ``repro lint --fix`` consumes these
    fixes: List[Fix] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "violation_count": len(self.violations),
            "counts_by_code": self.counts_by_code(),
            "violations": [v.to_json() for v in self.violations],
            "fixable_count": len(self.fixes),
        }
        if self.cache_hits is not None or self.cache_misses is not None:
            payload["cache"] = {"hits": self.cache_hits or 0,
                                "misses": self.cache_misses or 0}
        return payload


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(p.parts)
                and not any(part.endswith(".egg-info") for part in p.parts))
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_parsed(source: str, path: Path, tree: ast.Module,
                   hot_packages: FrozenSet[str] = DEFAULT_HOT_PACKAGES,
                   display_path: Optional[str] = None) -> List[Violation]:
    """Run every per-file checker over an already-parsed module."""
    display = display_path if display_path is not None else str(path)
    context = ModuleContext(path=path, source=source, tree=tree,
                            hot_packages=hot_packages,
                            display_path=display)
    violations: List[Violation] = []
    for checker_cls in checker_classes():
        violations.extend(checker_cls(context).run())
    return sorted(apply_suppressions(source, violations))


def analyze_source(source: str, path: Path,
                   hot_packages: FrozenSet[str] = DEFAULT_HOT_PACKAGES,
                   display_path: Optional[str] = None) -> List[Violation]:
    """Run every checker over one module's source text."""
    display = display_path if display_path is not None else str(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path=display, line=exc.lineno or 1,
                          col=(exc.offset or 0) + 1, code="RA000",
                          message=f"syntax error: {exc.msg}")]
    return analyze_parsed(source, path, tree, hot_packages=hot_packages,
                          display_path=display)


def display_for(file_path: Path, root: Optional[Path]) -> Optional[str]:
    """Path shown in reports: relative to ``root`` when possible."""
    if root is None:
        return None
    try:
        return str(file_path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(file_path)


def analyze_paths(paths: Sequence[Path],
                  hot_packages: FrozenSet[str] = DEFAULT_HOT_PACKAGES,
                  select: Optional[FrozenSet[str]] = None,
                  root: Optional[Path] = None) -> AnalysisReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the report to the listed rule codes; ``root``
    relativises the paths shown in the report (for stable CI output).
    """
    report = AnalysisReport()
    for file_path in iter_python_files(paths):
        display = display_for(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        found = analyze_source(source, file_path,
                               hot_packages=hot_packages,
                               display_path=display)
        report.files_scanned += 1
        if select is not None:
            found = [v for v in found if v.code in select]
        report.violations.extend(found)
    report.violations.sort()
    return report
