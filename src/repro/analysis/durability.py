"""Durability-protocol analysis (RA800, RA804).

The serving substrate survives crashes only because every durable
artifact is committed the same way: write to a temp name in the final
directory, flush + ``os.fsync``, then ``os.replace`` onto the real
name — and the manifest that makes the artifacts visible is replaced
*last*.  ``repro.store.segments`` and ``repro.serve.daemon`` both
implement that protocol by hand; nothing enforced it, so a new write
site (or a refactor) could silently regress to a torn-file window.

This module makes the protocol a contract:

1. a ``[tool.repro.durability]`` table in ``pyproject.toml`` names the
   tracked artifact *file names* (``fnmatch`` patterns, matched
   against the string fragments that flow into a write target)::

       [tool.repro.durability]
       manifest  = ["serve.json", "MANIFEST.json"]
       artifacts = ["*.npz", "scenario.json"]

2. :func:`extract_dura_sites` scans each module once (cacheable plain
   data) for write/rename/replace/fsync sites, tracking constant
   string fragments through locals, f-strings, ``/`` path joins and
   ``.with_name``/``.with_suffix`` so ``root / (NAME + ".tmp")``
   still resolves to ``NAME``'s value;

3. :func:`check_durability` reports **RA804** when a tracked name is
   written directly (``open(..., "w")`` / ``write_text`` to a
   non-temp target), moved with non-atomic ``os.rename`` /
   ``shutil.move``, replaced by a function that neither calls
   ``os.fsync`` itself nor reaches one through the call graph, or
   when a manifest is committed *before* a tracked artifact in the
   same function (manifest-last ordering).

**RA800** covers the config itself: a malformed table raises
:class:`DurabilityConfigError`; a pattern that is empty or contains a
path separator (patterns match file *names*) is reported, as is a
file governed by a different durability table than the one the run
resolved (mirroring the RA700 scope warning).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import (Dict, FrozenSet, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from .base import ImportMap, Violation
from .callgraph import FunctionKey, ProjectGraph
from .layers import _fallback_read_table

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on py3.9 CI
    tomllib = None  # type: ignore[assignment]


class DurabilityConfigError(ValueError):
    """The ``[tool.repro.durability]`` table is malformed."""


@dataclass(frozen=True)
class DurabilityConfig:
    """Validated artifact table: fnmatch patterns over file names."""

    manifest: Tuple[str, ...] = ()
    artifacts: Tuple[str, ...] = ()
    source: str = "<memory>"

    @property
    def tracked(self) -> Tuple[str, ...]:
        return self.manifest + self.artifacts

    @staticmethod
    def _match(fragments: Sequence[str],
               patterns: Sequence[str]) -> Optional[str]:
        for fragment in fragments:
            for pattern in patterns:
                if pattern and fnmatch(fragment, pattern):
                    return pattern
        return None

    def tracked_pattern(self, fragments: Sequence[str]) -> Optional[str]:
        """First tracked pattern a target's fragments match, if any."""
        return self._match(fragments, self.tracked)

    def is_manifest(self, fragments: Sequence[str]) -> bool:
        return self._match(fragments, self.manifest) is not None


def _config_from_mapping(raw: Mapping[str, object],
                         source: str) -> DurabilityConfig:
    def pattern_list(name: str, value: object) -> Tuple[str, ...]:
        if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, str) for item in value):
            raise DurabilityConfigError(
                f"{source}: [tool.repro.durability] key {name!r} must "
                "map to a list of file-name patterns")
        return tuple(value)

    manifest: Tuple[str, ...] = ()
    artifacts: Tuple[str, ...] = ()
    for key, value in raw.items():
        if key == "manifest":
            manifest = pattern_list(key, value)
        elif key == "artifacts":
            artifacts = pattern_list(key, value)
        else:
            raise DurabilityConfigError(
                f"{source}: [tool.repro.durability] has unknown key "
                f"{key!r} (expected 'manifest' or 'artifacts')")
    return DurabilityConfig(manifest=manifest, artifacts=artifacts,
                            source=source)


def read_durability_table(pyproject: Path) -> Optional[DurabilityConfig]:
    """Load ``[tool.repro.durability]`` from a pyproject file.

    Returns None when the file has no such table; raises
    :class:`DurabilityConfigError` when it exists but is invalid.
    """
    source = str(pyproject)
    text = pyproject.read_text(encoding="utf-8")
    raw: Optional[Mapping[str, object]]
    if tomllib is not None:
        data = tomllib.loads(text)
        tool = data.get("tool", {})
        repro = tool.get("repro", {}) if isinstance(tool, dict) else {}
        dura = repro.get("durability") if isinstance(repro, dict) else None
        raw = dura if isinstance(dura, dict) else None
    else:  # pragma: no cover - py<3.11 only
        raw = _fallback_read_table(text, source, "tool.repro.durability")
    if raw is None:
        return None
    return _config_from_mapping(raw, source)


def find_durability_config(start: Path) -> Optional[DurabilityConfig]:
    """Walk up from ``start`` to the nearest durability table."""
    cursor = start.resolve()
    if cursor.is_file():
        cursor = cursor.parent
    while True:
        candidate = cursor / "pyproject.toml"
        if candidate.is_file():
            config = read_durability_table(candidate)
            if config is not None:
                return config
        parent = cursor.parent
        if parent == cursor:
            return None
        cursor = parent


def check_durability_config(config: DurabilityConfig) -> List[Violation]:
    """RA800 for patterns the matcher can never satisfy."""
    violations: List[Violation] = []
    for pattern in config.tracked:
        if pattern and "/" not in pattern and "\\" not in pattern:
            continue
        shown = pattern or "<empty>"
        violations.append(Violation(
            path=config.source, line=1, col=1, code="RA800",
            message=(f"durability pattern {shown!r} cannot match: "
                     "patterns are fnmatch'd against file *names* "
                     "(no path separators, no empty patterns)")))
    return violations


# -- sites --------------------------------------------------------------------

@dataclass(frozen=True)
class DuraSite:
    """One durability-relevant operation inside one function.

    ``op`` is one of ``open`` (write-mode open), ``write``
    (``write_text``/``write_bytes``), ``rename`` (``os.rename`` /
    ``shutil.move`` / single-arg ``.rename``), ``replace``
    (``os.replace`` / single-arg ``.replace``), or ``fsync`` (an
    ``os.fsync`` call, recorded so link time knows which functions
    flush).  ``fragments`` are the constant string pieces that flow
    into the *destination* path; ``is_tmp`` marks targets that are
    temp names by content (``.tmp``) or by variable name.
    """

    function: str        # qualname within the module ("f", "C.m", "<module>")
    op: str
    lineno: int
    col: int             # 1-based, like Violation
    fragments: Tuple[str, ...] = ()
    is_tmp: bool = False
    detail: str = ""     # short source rendering for messages

    def to_json(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "op": self.op,
            "lineno": self.lineno,
            "col": self.col,
            "fragments": list(self.fragments),
            "is_tmp": self.is_tmp,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "DuraSite":
        return cls(
            function=str(raw["function"]),
            op=str(raw["op"]),
            lineno=int(raw["lineno"]),  # type: ignore[arg-type]
            col=int(raw["col"]),  # type: ignore[arg-type]
            fragments=tuple(str(f) for f in raw.get("fragments", ())),  # type: ignore[union-attr]
            is_tmp=bool(raw.get("is_tmp", False)),
            detail=str(raw.get("detail", "")),
        )


# -- extraction ---------------------------------------------------------------

_WRITE_MODES = ("w", "a", "x", "+")

#: path-combining methods through which fragments flow
_PATH_METHODS: FrozenSet[str] = frozenset({
    "with_name", "with_suffix", "joinpath",
})


def _snippet(node: ast.expr, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<expr>"
    return text if len(text) <= limit else text[:limit - 3] + "..."


class _FragmentTracker:
    """Constant string fragments flowing through one function's locals."""

    def __init__(self, module_strs: Mapping[str, str]) -> None:
        self.module_strs = module_strs
        self.local_frags: Dict[str, Tuple[FrozenSet[str], bool]] = {}

    def fragments(self, node: ast.expr) -> Tuple[FrozenSet[str], bool]:
        """(constant fragments, looks-like-a-temp-name) for a target."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return frozenset({node.value}), ".tmp" in node.value
        if isinstance(node, ast.Name):
            bound, bound_tmp = self.local_frags.get(
                node.id, (frozenset(), False))
            const = self.module_strs.get(node.id)
            if const is not None:
                bound = bound | {const}
                bound_tmp = bound_tmp or ".tmp" in const
            return bound, bound_tmp or "tmp" in node.id.lower()
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Div, ast.Mod)):
            left, left_tmp = self.fragments(node.left)
            right, right_tmp = self.fragments(node.right)
            return left | right, left_tmp or right_tmp
        if isinstance(node, ast.JoinedStr):
            parts: Set[str] = set()
            parts_tmp = False
            for value in node.values:
                if isinstance(value, ast.Constant) and isinstance(
                        value.value, str) and value.value:
                    parts.add(value.value)
                    parts_tmp = parts_tmp or ".tmp" in value.value
            return frozenset(parts), parts_tmp
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _PATH_METHODS):
                base, base_tmp = self.fragments(func.value)
                for arg in node.args:
                    more, more_tmp = self.fragments(arg)
                    base, base_tmp = base | more, base_tmp or more_tmp
                return base, base_tmp
            if isinstance(func, ast.Name) and func.id in ("Path", "str"):
                joined: FrozenSet[str] = frozenset()
                joined_tmp = False
                for arg in node.args:
                    more, more_tmp = self.fragments(arg)
                    joined = joined | more
                    joined_tmp = joined_tmp or more_tmp
                return joined, joined_tmp
        if isinstance(node, ast.Attribute):
            # receiver-name heuristic only: `self.tmp_path`, `tmpdir.x`
            return frozenset(), "tmp" in node.attr.lower()
        return frozenset(), False

    def bind(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        frags, is_tmp = self.fragments(value)
        if frags or is_tmp:
            self.local_frags[target.id] = (frags, is_tmp)
        else:
            self.local_frags.pop(target.id, None)


def _open_mode(node: ast.Call) -> str:
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
            and isinstance(node.args[1].value, str):
        return node.args[1].value
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(
                keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str):
            return keyword.value.value
    return "r"


class _DuraScanner:
    """Statement-ordered walk of one function body collecting sites."""

    def __init__(self, qualname: str, module_strs: Mapping[str, str],
                 dotted_for: "_DottedResolver",
                 sites: List[DuraSite]) -> None:
        self.qualname = qualname
        self.tracker = _FragmentTracker(module_strs)
        self.dotted_for = dotted_for
        self.sites = sites

    def _site(self, node: ast.AST, op: str, target: Optional[ast.expr],
              detail: str = "") -> None:
        frags: Tuple[str, ...] = ()
        is_tmp = False
        if target is not None:
            frag_set, is_tmp = self.tracker.fragments(target)
            frags = tuple(sorted(frag_set))
        self.sites.append(DuraSite(
            function=self.qualname, op=op,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            fragments=frags, is_tmp=is_tmp, detail=detail))

    def _call(self, node: ast.Call) -> None:
        func = node.func
        dotted = self.dotted_for(func)
        if isinstance(func, ast.Name) and func.id == "open" and node.args:
            mode = _open_mode(node)
            if any(flag in mode for flag in _WRITE_MODES):
                self._site(node, "open", node.args[0],
                           detail=f"open({_snippet(node.args[0])}, "
                                  f"{mode!r})")
            return
        if dotted == "os.fsync":
            self._site(node, "fsync", None)
            return
        if dotted in ("os.rename", "shutil.move") and len(node.args) >= 2:
            self._site(node, "rename", node.args[1],
                       detail=f"{dotted}(..., "
                              f"{_snippet(node.args[1])})")
            return
        if dotted == "os.replace" and len(node.args) >= 2:
            self._site(node, "replace", node.args[1],
                       detail=f"os.replace(..., "
                              f"{_snippet(node.args[1])})")
            return
        if isinstance(func, ast.Attribute):
            if func.attr in ("write_text", "write_bytes"):
                self._site(node, "write", func.value,
                           detail=f"{_snippet(func.value)}"
                                  f".{func.attr}(...)")
            elif func.attr in ("replace", "rename") \
                    and len(node.args) == 1 and not node.keywords:
                # single argument: Path.replace/rename (str.replace
                # takes two), destination is the argument
                self._site(node, func.attr, node.args[0],
                           detail=f"{_snippet(func.value)}.{func.attr}"
                                  f"({_snippet(node.args[0])})")

    def _expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call(sub)

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self.tracker.bind(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._expr(stmt.value)
            self.tracker.bind(stmt.target, stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
            self.scan(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.scan(stmt.body)
            for handler in stmt.handlers:
                self.scan(handler.body)
            self.scan(stmt.orelse)
            self.scan(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = _DuraScanner(self.qualname,
                                  self.tracker.module_strs,
                                  self.dotted_for, self.sites)
            nested.scan(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    nested = _DuraScanner(self.qualname,
                                          self.tracker.module_strs,
                                          self.dotted_for, self.sites)
                    nested.scan(item.body)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _DottedResolver:
    """Callable wrapper around :meth:`ImportMap.resolve_attribute`."""

    def __init__(self, tree: ast.Module) -> None:
        self.imports = ImportMap().collect(tree)

    def __call__(self, node: ast.expr) -> Optional[str]:
        return self.imports.resolve_attribute(node)


def extract_dura_sites(tree: ast.Module) -> List[DuraSite]:
    """All durability sites in one module, grouped by function."""
    dotted_for = _DottedResolver(tree)
    module_strs: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Constant) and isinstance(
                node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_strs[target.id] = node.value.value

    sites: List[DuraSite] = []
    module_stmts: List[ast.stmt] = []

    def scan_body(body: Sequence[ast.stmt],
                  owner_class: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = (node.name if owner_class is None
                            else f"{owner_class}.{node.name}")
                _DuraScanner(qualname, module_strs, dotted_for,
                             sites).scan(node.body)
            elif isinstance(node, ast.ClassDef) and owner_class is None:
                scan_body(node.body, node.name)
            elif isinstance(node, ast.If) and owner_class is None:
                if not _is_type_checking(node.test):
                    scan_body(node.body, None)
                    scan_body(node.orelse, None)
            elif owner_class is None:
                module_stmts.append(node)

    scan_body(tree.body, None)
    _DuraScanner("<module>", module_strs, dotted_for,
                 sites).scan(module_stmts)
    return sites


# -- the check ----------------------------------------------------------------

def _function_fsyncs(sites_by_module: Mapping[str, Sequence[DuraSite]]
                     ) -> Set[FunctionKey]:
    out: Set[FunctionKey] = set()
    for module_name, sites in sites_by_module.items():
        for site in sites:
            if site.op == "fsync":
                out.add((module_name, site.function))
    return out


def _reaches_fsync(graph: ProjectGraph, key: FunctionKey,
                   fsyncs: Set[FunctionKey],
                   cache: Dict[FunctionKey, bool]) -> bool:
    if key in cache:
        return cache[key]
    reached = graph.reachable_from([key])
    result = any(node in fsyncs for node in reached)
    cache[key] = result
    return result


def check_durability(
        graph: ProjectGraph,
        sites_by_module: Mapping[str, Sequence[DuraSite]],
        config: DurabilityConfig,
) -> List[Violation]:
    """RA804 over every tracked write target plus RA800 config checks."""
    violations = check_durability_config(config)
    fsyncs = _function_fsyncs(sites_by_module)
    fsync_cache: Dict[FunctionKey, bool] = {}

    for module_name in sorted(sites_by_module):
        facts = graph.modules.get(module_name)
        if facts is None:
            continue
        by_function: Dict[str, List[DuraSite]] = {}
        for site in sites_by_module[module_name]:
            by_function.setdefault(site.function, []).append(site)
        for function in sorted(by_function):
            sites = sorted(by_function[function],
                           key=lambda s: (s.lineno, s.col))
            manifest_commit: Optional[DuraSite] = None
            for site in sites:
                if site.op == "fsync":
                    continue
                pattern = config.tracked_pattern(site.fragments)
                if pattern is None:
                    continue
                if facts.is_suppressed(site.lineno, "RA804"):
                    continue
                committed = False
                if site.op in ("open", "write"):
                    if not site.is_tmp:
                        violations.append(Violation(
                            path=facts.display_path, line=site.lineno,
                            col=site.col, code="RA804",
                            message=(f"{site.detail} writes tracked "
                                     f"artifact `{pattern}` in place "
                                     f"in `{function}`; a crash "
                                     "mid-write leaves a torn file — "
                                     "write a temp name, fsync, then "
                                     "os.replace onto the real "
                                     "name")))
                        committed = True
                elif site.op == "rename":
                    violations.append(Violation(
                        path=facts.display_path, line=site.lineno,
                        col=site.col, code="RA804",
                        message=(f"{site.detail} moves tracked "
                                 f"artifact `{pattern}` without "
                                 "durability in "
                                 f"`{function}`; use os.replace after "
                                 "an fsync so the commit is atomic "
                                 "and survives power loss")))
                    committed = True
                elif site.op == "replace":
                    committed = True
                    key: FunctionKey = (module_name, function)
                    if not _reaches_fsync(graph, key, fsyncs,
                                          fsync_cache):
                        violations.append(Violation(
                            path=facts.display_path, line=site.lineno,
                            col=site.col, code="RA804",
                            message=(f"{site.detail} commits tracked "
                                     f"artifact `{pattern}` but "
                                     f"`{function}` never reaches an "
                                     "`os.fsync`; the rename can be "
                                     "durable before the data is — "
                                     "fsync the temp file before "
                                     "replacing")))
                if committed:
                    is_manifest = config.is_manifest(site.fragments)
                    if is_manifest and manifest_commit is None:
                        manifest_commit = site
                    elif (not is_manifest
                            and manifest_commit is not None
                            and not facts.is_suppressed(site.lineno,
                                                        "RA804")):
                        violations.append(Violation(
                            path=facts.display_path, line=site.lineno,
                            col=site.col, code="RA804",
                            message=(f"tracked artifact `{pattern}` "
                                     "is committed after the manifest "
                                     f"(line {manifest_commit.lineno}) "
                                     f"in `{function}`; commit the "
                                     "manifest last so it never "
                                     "references artifacts that do "
                                     "not exist yet")))
    return violations


__all__: Tuple[str, ...] = (
    "DurabilityConfig", "DurabilityConfigError", "DuraSite",
    "check_durability", "check_durability_config", "extract_dura_sites",
    "find_durability_config", "read_durability_table",
)
