"""Parallel-safety checkers (RA101, RA102).

Everything handed to a ``ProcessPoolExecutor`` (or ``multiprocessing``
pool) crosses a pickle boundary.  Lambdas and functions defined inside
another function are not picklable, so dispatching one does not fail at
review time — it fails at runtime, and only on the parallel path, which
is exactly the path the serial/parallel equivalence tests exist to
protect.  These rules make the failure a lint error instead:

* RA101 — a ``lambda`` passed as the callable of a pool dispatch
  (``submit``/``map``/``apply_async`` …) or as an ``initializer=``;
* RA102 — a *locally defined* function (a closure) passed the same way.

``ParallelPipelineRunner`` obeys the same contract internally: its
worker entry points (``_aggregate_shard``, ``_collect_shard``,
``_init_worker``) are module-level by construction.

Heuristics: ``submit``/``apply``/``apply_async``/``imap*``/``starmap*``
calls are always checked; bare ``.map(...)`` is only checked when the
receiver's name mentions ``pool`` or ``executor`` (``.map`` is too
common an API elsewhere to check unconditionally).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Set, Tuple

from .base import Checker, ImportMap, Violation

#: attribute calls always treated as a pool dispatch
_DISPATCH_ALWAYS: FrozenSet[str] = frozenset({
    "submit", "apply", "apply_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "map_async",
})

#: attribute calls treated as a dispatch only for pool-ish receivers
_DISPATCH_POOLISH: FrozenSet[str] = frozenset({"map"})

#: constructors whose ``initializer=`` kwarg also crosses the boundary
_POOL_CONSTRUCTORS: FrozenSet[str] = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})


def _receiver_is_poolish(node: ast.expr) -> bool:
    """True when the receiver's name suggests an executor or pool."""
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        return _receiver_is_poolish(node.func)
    if name is None:
        return False
    lowered = name.lower()
    return "pool" in lowered or "executor" in lowered


class PoolBoundaryChecker(Checker):
    """RA101 (lambda across pool), RA102 (closure across pool)."""

    codes: Tuple[str, ...] = ("RA101", "RA102")

    def run(self) -> List[Violation]:
        self._imports = ImportMap().collect(self.context.tree)
        # names of functions defined *inside* the current function-scope
        # stack — dispatching one of these is RA102
        self._local_funcs: List[Set[str]] = []
        # local names bound to lambda expressions, same scoping
        self._local_lambdas: List[Set[str]] = []
        return super().run()

    # -- scope bookkeeping -------------------------------------------------

    def _enter_function(self, node: ast.AST) -> None:
        self._local_funcs.append(set())
        self._local_lambdas.append(set())
        self.generic_visit(node)
        self._local_funcs.pop()
        self._local_lambdas.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._local_funcs:
            self._local_funcs[-1].add(node.name)
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if self._local_funcs:
            self._local_funcs[-1].add(node.name)
        self._enter_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._local_lambdas and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._local_lambdas[-1].add(target.id)
        self.generic_visit(node)

    def _is_local_function(self, name: str) -> bool:
        return any(name in scope for scope in self._local_funcs)

    def _is_local_lambda(self, name: str) -> bool:
        return any(name in scope for scope in self._local_lambdas)

    # -- dispatch detection ------------------------------------------------

    def _check_callable_arg(self, node: ast.expr, how: str) -> None:
        if isinstance(node, ast.Lambda):
            self.report(
                node, "RA101",
                f"lambda {how} cannot be pickled into a worker process; "
                f"define a module-level function instead")
        elif isinstance(node, ast.Name):
            if self._is_local_lambda(node.id):
                self.report(
                    node, "RA101",
                    f"`{node.id}` is bound to a lambda and {how}; "
                    f"lambdas cannot be pickled into a worker process")
            elif self._is_local_function(node.id):
                self.report(
                    node, "RA102",
                    f"`{node.id}` is defined inside a function and {how}; "
                    f"closures cannot be pickled — lift it to module "
                    f"level")

    def visit_Call(self, node: ast.Call) -> None:
        # pool.submit(fn, ...) / pool.imap(fn, ...) / executor.map(fn, ...)
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            is_dispatch = attr in _DISPATCH_ALWAYS or (
                attr in _DISPATCH_POOLISH
                and _receiver_is_poolish(node.func.value))
            if is_dispatch and node.args:
                self._check_callable_arg(
                    node.args[0], f"passed to `.{attr}(...)`")
        # ProcessPoolExecutor(initializer=...) / Pool(initializer=...)
        dotted = self._imports.resolve_attribute(node.func)
        if dotted is None and isinstance(node.func, ast.Name):
            resolved = self._imports.symbols.get(node.func.id)
            if resolved is not None:
                dotted = f"{resolved[0]}.{resolved[1]}"
        if dotted in _POOL_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    self._check_callable_arg(
                        keyword.value, "passed as `initializer=`")
        self.generic_visit(node)
