"""Shared plumbing for the repo-specific static checkers.

Every checker is an :mod:`ast` visitor that walks one parsed module and
reports :class:`Violation` records.  The engine (``engine.py``) feeds
each checker a :class:`ModuleContext` describing the file under
analysis — its path, source lines, and whether it lives on a
determinism-critical hot path — and afterwards filters out violations
the author suppressed with an inline ``# repro: noqa[RAxxx]`` marker.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Type

#: linter version, part of the cache fingerprint: bump on any release
#: that changes what the analyzer reports without touching rule text
LINT_VERSION = "3.0.0"

#: registry of rule code -> (symbolic name, one-line description).
#: ``docs/static-analysis.md`` documents each in depth.
RULES: Dict[str, Tuple[str, str]] = {
    "RA000": ("parse-error",
              "file could not be parsed; nothing else was checked"),
    "RA001": ("global-random-call",
              "call to a global `random` module function (unseeded, "
              "process-wide RNG state)"),
    "RA002": ("numpy-global-random",
              "call to the legacy `numpy.random` global API (shared, "
              "unseeded generator state)"),
    "RA003": ("unseeded-rng",
              "RNG constructed without an explicit seed expression"),
    "RA101": ("pool-lambda",
              "lambda handed across a process-pool boundary (not "
              "picklable)"),
    "RA102": ("pool-closure",
              "locally-defined function handed across a process-pool "
              "boundary (not picklable)"),
    "RA201": ("wall-clock-hot-path",
              "wall-clock read inside a determinism-critical package"),
    "RA301": ("mutable-default-arg",
              "mutable default argument value shared across calls"),
    "RA401": ("missing-module-docstring",
              "public module does not open with a docstring"),
    "RA501": ("shared-state-race",
              "module- or class-level state written by a function "
              "reachable from a process-pool dispatch"),
    "RA502": ("lock-discipline",
              "lock-guarded attribute read or written outside a "
              "`with self._lock:` block"),
    "RA601": ("layer-contract",
              "module-scope import crosses the architecture layer map "
              "([tool.repro.layers]) upward"),
    "RA700": ("determinism-config",
              "a [tool.repro.determinism] contract entry point does not "
              "resolve to a known function, class, or module"),
    "RA701": ("unordered-iteration",
              "iteration over an unordered collection feeds accumulation "
              "or emitted output on a determinism-contract path"),
    "RA702": ("unordered-float-sum",
              "order-sensitive float accumulation over an unordered "
              "collection on a determinism-contract path"),
    "RA703": ("dtype-instability",
              "numpy array built without a platform-stable pinned dtype "
              "on a determinism-contract path"),
    "RA704": ("ambient-nondeterminism",
              "ambient input (wall clock, environment, unseeded RNG, "
              "object identity) read on a determinism-contract path"),
    "RA800": ("durability-config",
              "a [tool.repro.durability] pattern cannot match, or a "
              "file is governed by a different durability table than "
              "the one this run resolved"),
    "RA801": ("lock-order-deadlock",
              "two locks are acquired in opposite orders on different "
              "paths (cycle in the acquired-while-holding graph)"),
    "RA802": ("blocking-under-lock",
              "unbounded blocking call (join/recv/get/wait/sleep/file "
              "IO) executed while a lock is held"),
    "RA803": ("thread-lifecycle",
              "Thread/Process started but never reaped, or a bare "
              "join() without timeout= on a shutdown path"),
    "RA804": ("durability-protocol",
              "tracked durable artifact written without the "
              "tmp+fsync+rename protocol, or committed after its "
              "manifest"),
    "RA805": ("unclosed-resource",
              "open/NamedTemporaryFile/Pipe result never closed and "
              "never handed off (report-only)"),
}

#: rules that need whole-program context: they only run under
#: ``repro lint --project`` (see ``project.py``)
PROJECT_RULES: FrozenSet[str] = frozenset({
    "RA501", "RA502", "RA601",
    "RA700", "RA701", "RA702", "RA703", "RA704",
    "RA800", "RA801", "RA802", "RA803", "RA804", "RA805",
})

#: RA7xx rules with an autofix: ``repro lint --fix`` can rewrite these
FIXABLE_RULES: FrozenSet[str] = frozenset({"RA701", "RA702", "RA703"})


def ruleset_fingerprint() -> str:
    """Content hash of the rule set and the analyzer's own source.

    Folded into the project cache key so that adding a rule, editing a
    checker, or bumping :data:`LINT_VERSION` invalidates every warm
    entry — a stale cache must never serve a clean verdict computed by
    an older rule set.
    """
    digest = hashlib.sha256()
    digest.update(LINT_VERSION.encode("utf-8"))
    for code, (name, description) in sorted(RULES.items()):
        digest.update(f"{code}\x00{name}\x00{description}\x00"
                      .encode("utf-8"))
    for path in sorted(Path(__file__).resolve().parent.glob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()

#: package directories whose hourly code must be a pure function of
#: (seed, hour) — wall-clock reads are banned inside them (RA201).
DEFAULT_HOT_PACKAGES: FrozenSet[str] = frozenset(
    {"pipeline", "core", "traffic"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def rule_name(self) -> str:
        return RULES.get(self.code, ("unknown", ""))[0]

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.rule_name}] {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule_name,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a checker needs to know about the file under analysis."""

    path: Path
    source: str
    tree: ast.Module
    hot_packages: FrozenSet[str] = DEFAULT_HOT_PACKAGES
    display_path: str = ""

    def __post_init__(self) -> None:
        if not self.display_path:
            self.display_path = str(self.path)

    @property
    def is_hot_path(self) -> bool:
        """True when the file lives under a determinism-critical package."""
        return bool(self.hot_packages.intersection(self.path.parts))


class Checker(ast.NodeVisitor):
    """Base class: an AST visitor that accumulates violations."""

    #: codes this checker can emit (used by ``--select`` filtering and
    #: by the fixture tests to map fixtures onto checkers)
    codes: Tuple[str, ...] = ()

    def __init__(self, context: ModuleContext) -> None:
        self.context = context
        self.violations: List[Violation] = []

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(Violation(
            path=self.context.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        ))

    def run(self) -> List[Violation]:
        self.visit(self.context.tree)
        return self.violations


@dataclass
class ImportMap:
    """Resolves local names to the modules / symbols they were bound to.

    Tracks ``import x.y as z`` and ``from x import y as z`` forms so the
    RNG checkers can recognise ``numpy.random`` and ``random`` access
    regardless of aliasing (``import numpy.random as npr``,
    ``from numpy.random import default_rng as rng_of`` …).
    """

    #: local name -> dotted module path ("np" -> "numpy")
    modules: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original symbol name)
    symbols: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def collect(self, tree: ast.Module) -> "ImportMap":
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # un-aliased "import numpy.random" binds "numpy"
                    target = alias.name if alias.asname else local
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.symbols[local] = (node.module, alias.name)
        return self

    def resolve_attribute(self, node: ast.expr) -> Optional[str]:
        """Dotted path for an expression like ``np.random.rand``.

        Returns e.g. ``"numpy.random.rand"`` or None when the base name
        is not a tracked import.
        """
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        base = cursor.id
        if base in self.modules:
            prefix = self.modules[base]
        elif base in self.symbols:
            module, original = self.symbols[base]
            prefix = f"{module}.{original}"
        else:
            return None
        return ".".join([prefix] + list(reversed(parts)))


def suppressed_lines(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line numbers to the rule codes suppressed on that line.

    A bare ``# repro: noqa`` suppresses every rule (value ``None``);
    ``# repro: noqa[RA001, RA301]`` suppresses only the listed codes.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip())
    return out


def apply_suppressions(source: str,
                       violations: Sequence[Violation]) -> List[Violation]:
    """Drop violations whose line carries a matching noqa marker."""
    markers = suppressed_lines(source)
    kept: List[Violation] = []
    for violation in violations:
        codes = markers.get(violation.line, frozenset())
        if codes is None:  # bare noqa: everything on the line
            continue
        if violation.code in codes:
            continue
        kept.append(violation)
    return kept


def checker_classes() -> List[Type[Checker]]:
    """All registered checker classes (imported lazily to avoid cycles)."""
    from .docstrings import ModuleDocstringChecker
    from .hygiene import HotPathClockChecker, MutableDefaultChecker
    from .parallel import PoolBoundaryChecker
    from .rng import RngDisciplineChecker

    return [RngDisciplineChecker, PoolBoundaryChecker,
            HotPathClockChecker, MutableDefaultChecker,
            ModuleDocstringChecker]
