"""RNG-discipline checkers (RA001-RA003).

The serial/parallel equivalence guarantee of
:class:`repro.perf.parallel.ParallelPipelineRunner` holds only while
every stochastic quantity is a pure function of ``(seed, inputs)``.
Three things break it:

* ``random.random()`` / ``random.choice(...)`` … — the stdlib's
  *module-level* functions share one process-global generator whose
  state depends on call order, and therefore on worker count (RA001);
* the legacy ``numpy.random.*`` global API (``np.random.rand``,
  ``np.random.seed`` …) — same problem, one hidden global
  ``RandomState`` (RA002);
* ``default_rng()`` / ``random.Random()`` constructed *without* an
  explicit seed — seeded from the OS entropy pool, different every run
  (RA003).

Explicitly-seeded generator instances are fine, and are the repo's
idiom: ``np.random.default_rng(mix64(hour, seed=self.seed))`` or
``random.Random(seed ^ 0x5A17)``.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Tuple

from .base import Checker, ImportMap, Violation

#: ``numpy.random`` attributes that construct explicit generator state
#: (allowed — though the constructors still need a seed, see RA003)
#: rather than touching the global RandomState.
_NUMPY_CONSTRUCTORS: FrozenSet[str] = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: constructors whose first argument (or ``seed=`` keyword) is the seed
#: and must be present and non-None.
_SEED_REQUIRED: FrozenSet[str] = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.PCG64DXSM", "numpy.random.Philox",
    "numpy.random.SFC64", "numpy.random.MT19937",
    "random.Random",
})


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _has_explicit_seed(call: ast.Call) -> bool:
    """True when the call passes a non-None seed (positionally or by
    ``seed=``)."""
    if call.args and not _is_none(call.args[0]):
        return True
    for keyword in call.keywords:
        if keyword.arg == "seed" and not _is_none(keyword.value):
            return True
    return False


class RngDisciplineChecker(Checker):
    """RA001 (global random), RA002 (numpy global), RA003 (unseeded)."""

    codes: Tuple[str, ...] = ("RA001", "RA002", "RA003")

    def run(self) -> List[Violation]:
        self._imports = ImportMap().collect(self.context.tree)
        return super().run()

    # -- helpers -----------------------------------------------------------

    def _dotted(self, node: ast.expr) -> Optional[str]:
        return self._imports.resolve_attribute(node)

    def _check_seeded(self, call: ast.Call, dotted: str) -> None:
        if dotted in _SEED_REQUIRED and not _has_explicit_seed(call):
            short = dotted.replace("numpy.random.", "").replace(
                "random.", "random.")
            self.report(
                call, "RA003",
                f"`{short}` constructed without an explicit seed; derive "
                f"one with `repro.util.hashing.mix64(..., seed=...)` so "
                f"runs are reproducible")

    # -- visitors ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            if dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                head = tail.split(".")[0]
                if head in _NUMPY_CONSTRUCTORS:
                    self._check_seeded(node, f"numpy.random.{head}")
                else:
                    self.report(
                        node, "RA002",
                        f"`{dotted}` draws from numpy's process-global "
                        f"RandomState; construct a generator with "
                        f"`default_rng(mix64(..., seed=...))` instead")
            elif dotted.startswith("random."):
                tail = dotted[len("random."):]
                head = tail.split(".")[0]
                if head == "Random":
                    self._check_seeded(node, "random.Random")
                elif head == "SystemRandom":
                    self.report(
                        node, "RA001",
                        "`random.SystemRandom` reads OS entropy and can "
                        "never be reproduced; use a seeded "
                        "`random.Random(...)` instance")
                else:
                    self.report(
                        node, "RA001",
                        f"`{dotted}` uses the stdlib's process-global "
                        f"generator; its state depends on call order and "
                        f"worker count — use a seeded `random.Random(...)` "
                        f"instance or `repro.util.hashing`")
        self.generic_visit(node)
