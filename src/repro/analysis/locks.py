"""RA502: lock discipline for classes that guard state with a lock.

``repro.obs`` promises thread safety by funnelling every mutation of a
registry/tracer through ``with self._lock:``.  That promise decays the
moment one method reads a guarded field bare — a torn read is silent
until a pathological interleaving hits production.  This checker makes
the convention mechanical:

* A class *opts in* simply by owning a lock attribute: any ``self.X``
  where ``"lock"`` appears in ``X`` (``_lock``, ``_span_lock`` …).
* The *guarded set* is every ``self.Y`` **written** inside a
  ``with self.<lock>:`` block anywhere in the class (plain stores,
  subscript stores, and in-place mutating calls like ``.append``),
  excluding ``__init__`` (construction happens-before sharing).
* A violation is any read or write of a guarded attribute outside such
  a block, in any method of the class.

Two sanctioned escapes, both documented in ``docs/static-analysis.md``:

* ``__init__`` is exempt (the object is not yet shared), and
* methods whose name ends in ``_locked`` are exempt — the repo-wide
  convention for helpers that require the caller to hold the lock.

The analysis tracks ``self.<attr>`` accesses only; aliasing a guarded
field through a local is invisible to it (conservative by design —
aliasing a guarded field is itself the bug).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .base import Violation

#: in-place mutating method names (mirrors callgraph's set)
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
    "extendleft",
})


def _self_attr(node: ast.expr) -> str:
    """``"Y"`` for a ``self.Y`` expression, else ``""``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return ""


def _is_lock_name(attr: str) -> bool:
    return "lock" in attr.lower()


@dataclass
class _Access:
    attr: str
    lineno: int
    col: int
    is_write: bool
    under_lock: bool
    method: str


@dataclass
class _ClassFacts:
    name: str
    lock_attrs: Set[str] = field(default_factory=set)
    accesses: List[_Access] = field(default_factory=list)


class _MethodWalker(ast.NodeVisitor):
    """Collects self-attribute accesses in one method, lock-aware."""

    def __init__(self, facts: _ClassFacts, method: str):
        self.facts = facts
        self.method = method
        self.lock_depth = 0

    def _record(self, attr: str, node: ast.AST, is_write: bool) -> None:
        if _is_lock_name(attr):
            self.facts.lock_attrs.add(attr)
            return  # touching the lock itself is never a violation
        self.facts.accesses.append(_Access(
            attr=attr,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            is_write=is_write,
            under_lock=self.lock_depth > 0,
            method=self.method,
        ))

    # -- lock scopes --------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        items = getattr(node, "items", [])
        locks = 0
        for item in items:
            expr = item.context_expr
            # `with self._lock:` or `with self._lock.acquire_timeout():`
            attr = _self_attr(expr)
            if not attr and isinstance(expr, ast.Call):
                attr = _self_attr(expr.func)
                if attr and "." in attr:
                    attr = attr.split(".")[0]
            if attr and _is_lock_name(attr):
                self.facts.lock_attrs.add(attr)
                locks += 1
            else:
                self.visit(expr)
        self.lock_depth += locks
        for stmt in getattr(node, "body", []):
            self.visit(stmt)
        self.lock_depth -= locks

    # -- accesses -----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr:
            self._record(attr, node,
                         is_write=isinstance(node.ctx,
                                             (ast.Store, ast.Del)))
            return  # `self` beneath needs no visit
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # `self.X[k] = v` / `del self.X[k]` / `self.X[k] += v` mutate X
        # even though the Attribute node itself carries a Load context
        attr = _self_attr(node.value)
        if attr and isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record(attr, node, is_write=True)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # self.X.append(...) mutates X in place: count it as a write
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS:
            attr = _self_attr(node.func.value)
            if attr:
                self._record(attr, node, is_write=True)
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
        self.generic_visit(node)

    # nested defs run later, possibly on other threads; their accesses
    # are NOT covered by an enclosing with-block, so walk them with the
    # lock depth reset
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.AST) -> None:
        saved = self.lock_depth
        self.lock_depth = 0
        for stmt in getattr(node, "body", []):
            self.visit(stmt)
        self.lock_depth = saved


def _collect_class(node: ast.ClassDef) -> _ClassFacts:
    facts = _ClassFacts(name=node.name)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker = _MethodWalker(facts, item.name)
            for stmt in item.body:
                walker.visit(stmt)
    return facts


@dataclass(frozen=True)
class LockFinding:
    """One off-lock access of a guarded attribute (pre-suppression).

    Findings are JSON round-trippable because the project cache stores
    them next to the module facts — a warm run renders RA502 without
    re-parsing the file.
    """

    attr: str
    lineno: int
    col: int
    is_write: bool
    method: str
    class_name: str
    guard_method: str       # a method that guards the attr (for context)

    def to_json(self) -> Dict[str, object]:
        return {"attr": self.attr, "lineno": self.lineno,
                "col": self.col, "is_write": self.is_write,
                "method": self.method, "class_name": self.class_name,
                "guard_method": self.guard_method}

    @classmethod
    def from_json(cls, raw: Dict[str, object]) -> "LockFinding":
        return cls(attr=str(raw["attr"]), lineno=int(raw["lineno"]),  # type: ignore[arg-type]
                   col=int(raw["col"]),  # type: ignore[arg-type]
                   is_write=bool(raw["is_write"]),
                   method=str(raw["method"]),
                   class_name=str(raw["class_name"]),
                   guard_method=str(raw["guard_method"]))


def find_lock_findings(tree: ast.Module) -> List[LockFinding]:
    """All RA502 findings in one module (suppressions not applied)."""
    findings: List[LockFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        facts = _collect_class(node)
        if not facts.lock_attrs:
            continue
        # guarded set: attrs written under lock outside __init__
        guard_site: Dict[str, str] = {}
        for access in facts.accesses:
            if (access.is_write and access.under_lock
                    and access.method != "__init__"
                    and access.attr not in guard_site):
                guard_site[access.attr] = access.method
        if not guard_site:
            continue
        for access in facts.accesses:
            if access.attr not in guard_site or access.under_lock:
                continue
            if access.method == "__init__":
                continue  # happens-before: not yet shared
            if access.method.endswith("_locked"):
                continue  # caller-holds-lock convention
            findings.append(LockFinding(
                attr=access.attr,
                lineno=access.lineno,
                col=access.col,
                is_write=access.is_write,
                method=access.method,
                class_name=facts.name,
                guard_method=guard_site[access.attr],
            ))
    return findings


def violations_from_findings(
        findings: List[LockFinding], display_path: str,
        suppressed: Dict[int, Optional[FrozenSet[str]]]
) -> List[Violation]:
    """Render findings to violations, honouring the noqa map."""
    violations: List[Violation] = []
    for finding in findings:
        codes = suppressed.get(finding.lineno, frozenset())
        if codes is None or "RA502" in codes:
            continue
        action = "written" if finding.is_write else "read"
        violations.append(Violation(
            path=display_path,
            line=finding.lineno,
            col=finding.col,
            code="RA502",
            message=(f"`self.{finding.attr}` is {action} in "
                     f"`{finding.class_name}.{finding.method}` outside "
                     f"`with self.<lock>:` but is lock-guarded in "
                     f"`{finding.class_name}.{finding.guard_method}`; "
                     "take the lock, or suffix the method `_locked` if "
                     "callers must hold it"),
        ))
    return violations


def check_locks(tree: ast.Module, display_path: str,
                suppressed: Dict[int, Optional[FrozenSet[str]]]
                ) -> List[Violation]:
    """RA502 violations for one parsed module (parse + render)."""
    return violations_from_findings(find_lock_findings(tree),
                                    display_path, suppressed)


#: explicit export list keeps the package surface deliberate
__all__: Tuple[str, ...] = ("LockFinding", "find_lock_findings",
                            "violations_from_findings", "check_locks")
