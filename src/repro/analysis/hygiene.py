"""Hot-path hygiene checkers (RA201, RA301).

RA201 — wall-clock reads inside determinism-critical packages.  Every
hourly quantity in ``pipeline/``, ``core/`` and ``traffic/`` must be a
pure function of ``(scenario seed, hour)``; a ``time.time()`` or
``datetime.now()`` on that path makes output depend on when the run
happened, which breaks bit-identical replay and poisons benchmark
baselines.  Timing *instrumentation* belongs in ``perf/`` and the CLI,
which are outside the hot set.

RA301 — mutable default argument values.  A ``def f(x, acc=[])`` default
is evaluated once at import and shared by every call — a classic source
of cross-run (and cross-worker) state leakage.  Use ``None`` plus an
in-body default, or a dataclass ``field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Tuple

from .base import Checker, ImportMap, Violation

#: dotted call paths that read the wall clock
_WALL_CLOCK: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: constructor names whose call as a default produces a fresh-but-shared
#: mutable object
_MUTABLE_FACTORIES: FrozenSet[str] = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})


class HotPathClockChecker(Checker):
    """RA201: no wall-clock reads inside hot-path packages."""

    codes: Tuple[str, ...] = ("RA201",)

    def run(self) -> List[Violation]:
        if not self.context.is_hot_path:
            return self.violations  # rule only applies on the hot path
        self._imports = ImportMap().collect(self.context.tree)
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._imports.resolve_attribute(node.func)
        if dotted in _WALL_CLOCK:
            packages = ", ".join(sorted(self.context.hot_packages))
            self.report(
                node, "RA201",
                f"`{dotted}` reads the wall clock inside a "
                f"determinism-critical package ({packages}); hot-path "
                f"output must be a pure function of (seed, hour) — move "
                f"timing instrumentation to perf/ or the CLI")
        self.generic_visit(node)


class MutableDefaultChecker(Checker):
    """RA301: no mutable default argument values, anywhere."""

    codes: Tuple[str, ...] = ("RA301",)

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in _MUTABLE_FACTORIES
        return False

    def _check_args(self, node: ast.arguments, owner: str) -> None:
        positional = node.posonlyargs + node.args
        defaults = node.defaults
        for arg, default in zip(positional[len(positional) - len(defaults):],
                                defaults):
            if self._is_mutable(default):
                self.report(
                    default, "RA301",
                    f"mutable default for `{arg.arg}` in `{owner}` is "
                    f"shared across calls; default to None and create "
                    f"the object in the body")
        for arg, kw_default in zip(node.kwonlyargs, node.kw_defaults):
            if kw_default is not None and self._is_mutable(kw_default):
                self.report(
                    kw_default, "RA301",
                    f"mutable default for `{arg.arg}` in `{owner}` is "
                    f"shared across calls; default to None and create "
                    f"the object in the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node.args, node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node.args, node.name)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node.args, "<lambda>")
        self.generic_visit(node)
