"""The ``repro lint --fix`` autofix engine.

Each auto-fixable :class:`~repro.analysis.dataflow.DetSite` carries a
*recipe* — a fix kind, a source span, and a payload — computed at
extraction time from exact AST positions.  This module turns recipes
into concrete text edits and applies them:

* ``wrap-sorted``   — ``for p in paths.iterdir():`` becomes
  ``for p in sorted(paths.iterdir()):`` (two zero-width inserts); a
  site payload becomes an extra ``sorted()`` argument, which is how
  ``os.scandir`` streams (``DirEntry`` defines no ``<``) get
  ``sorted(..., key=lambda e: e.name)`` instead of a TypeError;
* ``exact-total``   — ``sum(shares)`` becomes ``exact_total(shares)``
  and ``from repro.util.exactsum import exact_total`` is added after
  the module's import block if missing.  The detector attaches this
  recipe only to a bare single-argument ``sum(...)`` — ``exact_total``
  accepts one iterable, so ``sum(xs, start)`` is reported but never
  rewritten;
* ``dtype-replace`` — ``dtype=int`` becomes ``dtype=np.int64``;
* ``dtype-add``     — ``np.zeros(n)`` becomes
  ``np.zeros(n, dtype=np.float64)``.

Every rewrite is *behavior-preserving on the serial path by
construction* (sorting an iterable changes order only where order was
unspecified; ``exact_total`` is ``math.fsum``, correctly rounded;
``dtype`` pins name what numpy already chose on this platform) and
*idempotent*: the fixed form no longer matches its detector, so a
second ``--fix`` run produces zero edits — a property test enforces
this.  One caveat survives: ``exact_total`` always returns ``float``,
so summing a collection the analysis cannot prove to hold floats
changes ``sum([2, 3]) == 5`` into ``5.0``.  Provably-integer literals
are never flagged, but for opaque int-valued inputs the rewrite can
leak a float into indexing or serialized snapshots — review the diff
(``--fix --check``) when the summands might be ints.

All edits for one file are computed against the same original text and
applied back-to-front, so earlier edits never shift later spans.
Overlapping fixes (e.g. a sorted-wrap inside a sorted-wrap) keep the
first and drop the rest; the dropped finding simply reappears — still
fixable — on the next run if it survived the first rewrite.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .dataflow import DetSite

#: the one import --fix may introduce (for ``exact-total`` rewrites)
_EXACTSUM_MODULE = "repro.util.exactsum"
_EXACTSUM_NAME = "exact_total"


@dataclass(frozen=True)
class Edit:
    """One text replacement, in AST coordinates (0-based columns)."""

    lineno: int
    col: int
    end_lineno: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Fix:
    """One applicable rewrite for one reported finding."""

    path: str           # real filesystem path to edit
    display: str        # display path (matches the Violation)
    code: str
    line: int
    col: int
    description: str
    edits: Tuple[Edit, ...]
    needs_exactsum_import: bool = False


@dataclass
class FileFixResult:
    """The outcome of fixing one file."""

    path: str
    display: str
    original: str
    fixed: str
    applied: Tuple[Fix, ...]

    @property
    def changed(self) -> bool:
        return self.fixed != self.original


def fix_for_site(path: str, display: str,
                 site: DetSite) -> Optional[Fix]:
    """Turn a site's recipe into concrete edits, or None."""
    if site.fix_kind is None or site.span is None:
        return None
    lineno, col, end_lineno, end_col = site.span
    needs_import = False
    if site.fix_kind == "wrap-sorted":
        closing = f", {site.payload})" if site.payload else ")"
        edits = (Edit(lineno, col, lineno, col, "sorted("),
                 Edit(end_lineno, end_col, end_lineno, end_col, closing))
        description = (f"wrap the iterable in sorted(..., {site.payload})"
                       if site.payload else
                       "wrap the iterable in sorted(...)")
    elif site.fix_kind == "exact-total":
        edits = (Edit(lineno, col, end_lineno, end_col, "exact_total"),)
        description = "replace sum(...) with exact_total(...)"
        needs_import = True
    elif site.fix_kind == "dtype-replace":
        edits = (Edit(lineno, col, end_lineno, end_col, site.payload),)
        description = f"pin dtype to {site.payload}"
    elif site.fix_kind == "dtype-add":
        edits = (Edit(lineno, col, lineno, col, site.payload),)
        description = f"add explicit {site.payload.lstrip(', ')}"
    else:  # pragma: no cover - FIX_KINDS is closed
        return None
    return Fix(path=path, display=display, code=site.code,
               line=site.lineno, col=site.col, description=description,
               edits=edits, needs_exactsum_import=needs_import)


# -- applying edits -----------------------------------------------------------

def _line_offsets(text: str) -> List[int]:
    offsets = [0]
    for line in text.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _absolute(offsets: List[int], lineno: int, col: int) -> int:
    index = min(lineno - 1, len(offsets) - 1)
    return offsets[index] + col


def _apply_edits(text: str, edits: Sequence[Edit]) -> str:
    offsets = _line_offsets(text)
    spans = sorted(
        ((_absolute(offsets, e.lineno, e.col),
          _absolute(offsets, e.end_lineno, e.end_col),
          e.replacement) for e in edits),
        reverse=True)
    for start, end, replacement in spans:
        text = text[:start] + replacement + text[end:]
    return text


_EXACTSUM_IMPORT_RE = re.compile(
    rf"from\s+{re.escape(_EXACTSUM_MODULE)}\s+import\s+"
    rf"[^\n]*\b{_EXACTSUM_NAME}\b")


def _ensure_exactsum_import(text: str) -> str:
    """Insert ``from repro.util.exactsum import exact_total`` if absent.

    The line goes after the last top-level import (or the module
    docstring when there are none), which keeps the edited file valid
    for any future-import-bearing module: ``from __future__`` must stay
    first, and it is itself an import, so insertion lands after it.
    """
    if _EXACTSUM_IMPORT_RE.search(text):
        return text
    tree = ast.parse(text)
    insert_after = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            insert_after = node.end_lineno or node.lineno
        elif (insert_after == 0 and isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            insert_after = node.end_lineno or node.lineno  # docstring
    lines = text.splitlines(keepends=True)
    new_line = f"from {_EXACTSUM_MODULE} import {_EXACTSUM_NAME}\n"
    if insert_after == 0:
        return new_line + text
    return "".join(lines[:insert_after]) + new_line + "".join(
        lines[insert_after:])


def _fix_range(offsets: List[int], fix: Fix) -> Tuple[int, int]:
    starts = [_absolute(offsets, e.lineno, e.col) for e in fix.edits]
    ends = [_absolute(offsets, e.end_lineno, e.end_col)
            for e in fix.edits]
    return (min(starts), max(ends))


def apply_fixes(fixes: Sequence[Fix],
                write: bool = True) -> List[FileFixResult]:
    """Apply (or dry-run) fixes, grouped per file, first-wins on overlap.

    Returns one :class:`FileFixResult` per changed file, sorted by
    display path.  With ``write=False`` nothing touches disk — callers
    render the diff (``--fix --check``).
    """
    by_path: Dict[str, List[Fix]] = {}
    for fix in fixes:
        by_path.setdefault(fix.path, []).append(fix)
    results: List[FileFixResult] = []
    for path in sorted(by_path):
        original = Path(path).read_text(encoding="utf-8")
        offsets = _line_offsets(original)
        accepted: List[Fix] = []
        taken: List[Tuple[int, int]] = []
        for fix in sorted(by_path[path],
                          key=lambda f: _fix_range(offsets, f)):
            start, end = _fix_range(offsets, fix)
            if any(start < t_end and t_start < end
                   for t_start, t_end in taken):
                continue  # overlapping rewrite: first wins this round
            # two zero-width inserts at the same point (nested wraps)
            if any(start == t_start == end == t_end
                   for t_start, t_end in taken):
                continue
            accepted.append(fix)
            taken.append((start, end))
        if not accepted:
            continue
        edits = [edit for fix in accepted for edit in fix.edits]
        fixed = _apply_edits(original, edits)
        if any(fix.needs_exactsum_import for fix in accepted):
            fixed = _ensure_exactsum_import(fixed)
        if fixed == original:
            continue
        if write:
            Path(path).write_text(fixed, encoding="utf-8")
        results.append(FileFixResult(
            path=path, display=accepted[0].display, original=original,
            fixed=fixed, applied=tuple(accepted)))
    return results


def render_diffs(results: Sequence[FileFixResult]) -> str:
    """Unified diff of every file a fix run touched (or would touch)."""
    chunks: List[str] = []
    for result in results:
        diff = difflib.unified_diff(
            result.original.splitlines(keepends=True),
            result.fixed.splitlines(keepends=True),
            fromfile=f"a/{result.display}",
            tofile=f"b/{result.display}")
        chunks.append("".join(diff))
    return "".join(chunks)
