"""``repro lint`` — the determinism & parallel-safety gate.

Exit codes: 0 clean, 1 violations found (including files that failed to
parse, reported as RA000), 2 on contradictory flags.

Three analysis modes:

* default — per-file rules (RA0xx–RA4xx) over the given paths;
* ``--project`` — whole-program mode: per-file rules **plus** the
  semantic rules RA5xx/RA6xx and the RA7xx determinism dataflow, with
  an incremental on-disk cache (``--cache-dir``, ``--no-cache``);
* ``--changed-only`` — report only on the files changed versus the git
  merge-base (plus untracked files).  Per-file rules then scan just
  the diff; combined with ``--project`` the *analysis* still covers
  the whole tree (whole-program rules are only sound over the full
  module graph) and only the *report* is restricted to changed files.

``--fix`` (project mode) applies the safe RA7xx rewrites in place and
re-lints; ``--fix --check`` previews them as a unified diff without
writing, for CI.  ``--format sarif`` emits SARIF 2.1.0 for GitHub code
scanning.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, TextIO

from .base import DEFAULT_HOT_PACKAGES, PROJECT_RULES, RULES
from .engine import AnalysisReport, analyze_paths, display_for
from .fixer import apply_fixes, render_diffs
from .project import DEFAULT_CACHE_DIR, analyze_project


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--project", action="store_true",
        help="whole-program mode: adds the cross-module rules "
             "RA501/RA502/RA601, the RA7xx determinism dataflow, and "
             "the RA8xx lifecycle/durability wave, with the "
             "incremental cache")
    parser.add_argument(
        "--changed-only", action="store_true",
        help="report only on files changed vs. the git merge-base "
             "(plus untracked files); with --project the analysis "
             "still spans the whole tree")
    parser.add_argument(
        "--fix", action="store_true",
        help="apply the safe RA7xx autofixes in place and re-lint "
             "(requires --project)")
    parser.add_argument(
        "--check", action="store_true",
        help="with --fix: print pending fixes as a unified diff "
             "without writing anything (CI mode)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json/sarif are machine-readable; sarif "
             "feeds GitHub code scanning)")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to enable (default: all)")
    parser.add_argument(
        "--hot-path", default=",".join(sorted(DEFAULT_HOT_PACKAGES)),
        metavar="PKGS",
        help="comma-separated package dirs treated as determinism-"
             "critical for RA201")
    parser.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR), metavar="DIR",
        help="incremental-cache directory for --project runs")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the --project incremental cache for this run")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the report to FILE (in the chosen format)")


def _parse_codes(spec: Optional[str]) -> Optional[FrozenSet[str]]:
    if spec is None:
        return None
    codes = frozenset(c.strip().upper() for c in spec.split(",") if c.strip())
    unknown = codes.difference(RULES)
    if unknown:
        raise SystemExit(
            f"repro lint: unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def _render_text(report: AnalysisReport, stream: TextIO) -> None:
    for violation in report.violations:
        print(violation.render(), file=stream)
    counts = report.counts_by_code()
    summary = ", ".join(f"{code}×{n}" for code, n in counts.items())
    cache = ""
    if report.cache_hits is not None:
        cache = (f" (cache: {report.cache_hits} hits, "
                 f"{report.cache_misses} misses)")
    if report.clean:
        print(f"repro lint: {report.files_scanned} files scanned, "
              f"clean{cache}", file=stream)
    else:
        print(f"repro lint: {report.files_scanned} files scanned, "
              f"{len(report.violations)} violation(s): {summary}{cache}",
              file=stream)


def to_sarif(report: AnalysisReport) -> Dict[str, object]:
    """SARIF 2.1.0 payload for GitHub code-scanning upload."""
    used = sorted({v.code for v in report.violations})
    rules = [{
        "id": code,
        "name": RULES[code][0] if code in RULES else code,
        "shortDescription": {
            "text": RULES[code][1] if code in RULES else code},
        "helpUri": ("https://github.com/tipsy-repro/tipsy-repro/blob/"
                    "main/docs/static-analysis.md"),
    } for code in used]
    results = [{
        "ruleId": v.code,
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": v.path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": v.line,
                           "startColumn": v.col},
            },
        }],
    } for v in report.violations]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": ("https://github.com/tipsy-repro/"
                                   "tipsy-repro"),
                "rules": rules,
            }},
            "results": results,
        }],
    }


def _render(report: AnalysisReport, fmt: str, stream: TextIO) -> None:
    if fmt == "json":
        json.dump(report.to_json(), stream, indent=2)
        stream.write("\n")
    elif fmt == "sarif":
        json.dump(to_sarif(report), stream, indent=2)
        stream.write("\n")
    else:
        _render_text(report, stream)


def _git(args: List[str], cwd: Path) -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git"] + args, cwd=str(cwd), capture_output=True,
            text=True, check=False)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def changed_files(cwd: Path,
                  base_refs: Optional[List[str]] = None
                  ) -> Optional[List[Path]]:
    """Python files changed vs. the merge-base, plus untracked ones.

    Returns None when git (or a usable base ref) is unavailable, in
    which case the caller falls back to a full lint.
    """
    refs = base_refs if base_refs is not None else ["origin/main", "main"]
    merge_base: Optional[str] = None
    for ref in refs:
        out = _git(["merge-base", "HEAD", ref], cwd)
        if out is not None and out.strip():
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    diff = _git(["diff", "--name-only", "--diff-filter=d",
                 merge_base, "HEAD"], cwd)
    staged = _git(["diff", "--name-only", "--diff-filter=d",
                   merge_base], cwd)
    untracked = _git(["ls-files", "--others", "--exclude-standard"], cwd)
    if diff is None or staged is None or untracked is None:
        return None
    names = sorted({
        line.strip()
        for out in (diff, staged, untracked)
        for line in out.splitlines() if line.strip()})
    top = _git(["rev-parse", "--show-toplevel"], cwd)
    base = Path(top.strip()) if top is not None and top.strip() else cwd
    return [base / name for name in names
            if name.endswith(".py") and (base / name).is_file()]


def _restrict_to(requested: List[Path],
                 changed: List[Path]) -> List[Path]:
    """Changed files that fall under one of the requested paths."""
    resolved = [p.resolve() for p in requested]
    kept: List[Path] = []
    for path in changed:
        target = path.resolve()
        for scope in resolved:
            if target == scope or scope in target.parents:
                kept.append(path)
                break
    return kept


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code, (name, description) in sorted(RULES.items()):
            marker = "*" if code in PROJECT_RULES else " "
            print(f"{code}{marker} {name:<22s} {description}")
        print("\n(* = needs whole-program context: runs only under "
              "--project)")
        return 0
    if args.check and not args.fix:
        print("repro lint: --check only makes sense with --fix",
              file=sys.stderr)
        return 2
    if args.fix and not args.project:
        print("repro lint: --fix requires --project (the RA7xx "
              "autofixes come from the whole-program dataflow rules)",
              file=sys.stderr)
        return 2
    raw_paths: List[str] = args.paths or ["src"]
    paths = [Path(p) for p in raw_paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print("repro lint: no such path: "
              + ", ".join(str(p) for p in missing), file=sys.stderr)
        return 1
    hot = frozenset(
        p.strip() for p in args.hot_path.split(",") if p.strip())
    select = _parse_codes(args.select)

    # --changed-only: per-file mode narrows the *scanned* set; project
    # mode keeps analyzing the whole tree (RA5xx/RA6xx/RA7xx are only
    # sound over the full module graph) and narrows the *report*
    changed_display: Optional[Set[str]] = None
    if args.changed_only:
        changed = changed_files(Path.cwd())
        if changed is None:
            print("repro lint: --changed-only: no git merge-base "
                  "available; linting everything", file=sys.stderr)
        else:
            restricted = _restrict_to(paths, changed)
            if not restricted:
                _render(AnalysisReport(), args.format, sys.stdout)
                return 0
            if args.project:
                changed_display = {
                    display_for(p, Path.cwd()) or str(p)
                    for p in restricted}
            else:
                paths = restricted

    def narrow(report: AnalysisReport) -> AnalysisReport:
        if changed_display is not None:
            report.violations = [v for v in report.violations
                                 if v.path in changed_display]
            report.fixes = [f for f in report.fixes
                            if f.display in changed_display]
        return report

    def analyze() -> AnalysisReport:
        if args.project:
            cache_dir = None if args.no_cache else Path(args.cache_dir)
            return narrow(analyze_project(
                paths, hot_packages=hot, select=select,
                root=Path.cwd(), cache_dir=cache_dir))
        return narrow(analyze_paths(paths, hot_packages=hot,
                                    select=select, root=Path.cwd()))

    report = analyze()
    if args.fix and report.fixes:
        results = apply_fixes(report.fixes, write=not args.check)
        if results:
            # diffs go to stderr so --format json/sarif stdout stays
            # machine-parseable
            sys.stderr.write(render_diffs(results))
            applied = sum(len(r.applied) for r in results)
            verb = "pending (not written)" if args.check else "applied"
            print(f"repro lint --fix: {applied} fix(es) {verb} in "
                  f"{len(results)} file(s)", file=sys.stderr)
            if not args.check:
                report = analyze()  # re-lint the rewritten tree
    _render(report, args.format, sys.stdout)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _render(report, args.format, handle)
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & parallel-safety static checks")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
