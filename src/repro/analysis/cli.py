"""``repro lint`` — the determinism & parallel-safety gate.

Exit codes: 0 clean, 1 violations found (including files that failed to
parse, reported as RA000).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import FrozenSet, List, Optional, TextIO

from .base import DEFAULT_HOT_PACKAGES, RULES
from .engine import AnalysisReport, analyze_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is machine-readable, for CI artifacts)")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to enable (default: all)")
    parser.add_argument(
        "--hot-path", default=",".join(sorted(DEFAULT_HOT_PACKAGES)),
        metavar="PKGS",
        help="comma-separated package dirs treated as determinism-"
             "critical for RA201")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the report to FILE (in the chosen format)")


def _parse_codes(spec: Optional[str]) -> Optional[FrozenSet[str]]:
    if spec is None:
        return None
    codes = frozenset(c.strip().upper() for c in spec.split(",") if c.strip())
    unknown = codes.difference(RULES)
    if unknown:
        raise SystemExit(
            f"repro lint: unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def _render_text(report: AnalysisReport, stream: TextIO) -> None:
    for violation in report.violations:
        print(violation.render(), file=stream)
    counts = report.counts_by_code()
    summary = ", ".join(f"{code}×{n}" for code, n in counts.items())
    if report.clean:
        print(f"repro lint: {report.files_scanned} files scanned, clean",
              file=stream)
    else:
        print(f"repro lint: {report.files_scanned} files scanned, "
              f"{len(report.violations)} violation(s): {summary}",
              file=stream)


def _render(report: AnalysisReport, fmt: str, stream: TextIO) -> None:
    if fmt == "json":
        json.dump(report.to_json(), stream, indent=2)
        stream.write("\n")
    else:
        _render_text(report, stream)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code, (name, description) in sorted(RULES.items()):
            print(f"{code}  {name:<22s} {description}")
        return 0
    raw_paths: List[str] = args.paths or ["src"]
    paths = [Path(p) for p in raw_paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print("repro lint: no such path: "
              + ", ".join(str(p) for p in missing), file=sys.stderr)
        return 1
    hot = frozenset(
        p.strip() for p in args.hot_path.split(",") if p.strip())
    report = analyze_paths(paths, hot_packages=hot,
                           select=_parse_codes(args.select),
                           root=Path.cwd())
    _render(report, args.format, sys.stdout)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _render(report, args.format, handle)
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & parallel-safety static checks")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
