"""``repro lint`` — the determinism & parallel-safety gate.

Exit codes: 0 clean, 1 violations found (including files that failed to
parse, reported as RA000).

Three analysis modes:

* default — per-file rules (RA0xx–RA4xx) over the given paths;
* ``--project`` — whole-program mode: per-file rules **plus** the
  semantic rules RA501/RA502/RA601, with an incremental on-disk cache
  (``--cache-dir``, ``--no-cache``);
* ``--changed-only`` — per-file rules over only the files changed
  versus the git merge-base (plus untracked files), which keeps the
  pre-commit hook O(diff) instead of O(tree).

``--format sarif`` emits SARIF 2.1.0 for GitHub code scanning.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, TextIO

from .base import DEFAULT_HOT_PACKAGES, PROJECT_RULES, RULES
from .engine import AnalysisReport, analyze_paths
from .project import DEFAULT_CACHE_DIR, analyze_project


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--project", action="store_true",
        help="whole-program mode: adds the cross-module rules "
             "RA501/RA502/RA601 and uses the incremental cache")
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files changed vs. the git merge-base "
             "(plus untracked files); incompatible with --project")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json/sarif are machine-readable; sarif "
             "feeds GitHub code scanning)")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to enable (default: all)")
    parser.add_argument(
        "--hot-path", default=",".join(sorted(DEFAULT_HOT_PACKAGES)),
        metavar="PKGS",
        help="comma-separated package dirs treated as determinism-"
             "critical for RA201")
    parser.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR), metavar="DIR",
        help="incremental-cache directory for --project runs")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the --project incremental cache for this run")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the report to FILE (in the chosen format)")


def _parse_codes(spec: Optional[str]) -> Optional[FrozenSet[str]]:
    if spec is None:
        return None
    codes = frozenset(c.strip().upper() for c in spec.split(",") if c.strip())
    unknown = codes.difference(RULES)
    if unknown:
        raise SystemExit(
            f"repro lint: unknown rule code(s): {', '.join(sorted(unknown))}")
    return codes


def _render_text(report: AnalysisReport, stream: TextIO) -> None:
    for violation in report.violations:
        print(violation.render(), file=stream)
    counts = report.counts_by_code()
    summary = ", ".join(f"{code}×{n}" for code, n in counts.items())
    cache = ""
    if report.cache_hits is not None:
        cache = (f" (cache: {report.cache_hits} hits, "
                 f"{report.cache_misses} misses)")
    if report.clean:
        print(f"repro lint: {report.files_scanned} files scanned, "
              f"clean{cache}", file=stream)
    else:
        print(f"repro lint: {report.files_scanned} files scanned, "
              f"{len(report.violations)} violation(s): {summary}{cache}",
              file=stream)


def to_sarif(report: AnalysisReport) -> Dict[str, object]:
    """SARIF 2.1.0 payload for GitHub code-scanning upload."""
    used = sorted({v.code for v in report.violations})
    rules = [{
        "id": code,
        "name": RULES[code][0] if code in RULES else code,
        "shortDescription": {
            "text": RULES[code][1] if code in RULES else code},
        "helpUri": ("https://github.com/tipsy-repro/tipsy-repro/blob/"
                    "main/docs/static-analysis.md"),
    } for code in used]
    results = [{
        "ruleId": v.code,
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": v.path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": v.line,
                           "startColumn": v.col},
            },
        }],
    } for v in report.violations]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": ("https://github.com/tipsy-repro/"
                                   "tipsy-repro"),
                "rules": rules,
            }},
            "results": results,
        }],
    }


def _render(report: AnalysisReport, fmt: str, stream: TextIO) -> None:
    if fmt == "json":
        json.dump(report.to_json(), stream, indent=2)
        stream.write("\n")
    elif fmt == "sarif":
        json.dump(to_sarif(report), stream, indent=2)
        stream.write("\n")
    else:
        _render_text(report, stream)


def _git(args: List[str], cwd: Path) -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git"] + args, cwd=str(cwd), capture_output=True,
            text=True, check=False)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def changed_files(cwd: Path,
                  base_refs: Optional[List[str]] = None
                  ) -> Optional[List[Path]]:
    """Python files changed vs. the merge-base, plus untracked ones.

    Returns None when git (or a usable base ref) is unavailable, in
    which case the caller falls back to a full lint.
    """
    refs = base_refs if base_refs is not None else ["origin/main", "main"]
    merge_base: Optional[str] = None
    for ref in refs:
        out = _git(["merge-base", "HEAD", ref], cwd)
        if out is not None and out.strip():
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    diff = _git(["diff", "--name-only", "--diff-filter=d",
                 merge_base, "HEAD"], cwd)
    staged = _git(["diff", "--name-only", "--diff-filter=d",
                   merge_base], cwd)
    untracked = _git(["ls-files", "--others", "--exclude-standard"], cwd)
    if diff is None or staged is None or untracked is None:
        return None
    names = sorted({
        line.strip()
        for out in (diff, staged, untracked)
        for line in out.splitlines() if line.strip()})
    top = _git(["rev-parse", "--show-toplevel"], cwd)
    base = Path(top.strip()) if top is not None and top.strip() else cwd
    return [base / name for name in names
            if name.endswith(".py") and (base / name).is_file()]


def _restrict_to(requested: List[Path],
                 changed: List[Path]) -> List[Path]:
    """Changed files that fall under one of the requested paths."""
    resolved = [p.resolve() for p in requested]
    kept: List[Path] = []
    for path in changed:
        target = path.resolve()
        for scope in resolved:
            if target == scope or scope in target.parents:
                kept.append(path)
                break
    return kept


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code, (name, description) in sorted(RULES.items()):
            marker = "*" if code in PROJECT_RULES else " "
            print(f"{code}{marker} {name:<22s} {description}")
        print("\n(* = needs whole-program context: runs only under "
              "--project)")
        return 0
    if args.project and args.changed_only:
        print("repro lint: --changed-only is incompatible with "
              "--project (project rules need the whole tree)",
              file=sys.stderr)
        return 2
    raw_paths: List[str] = args.paths or ["src"]
    paths = [Path(p) for p in raw_paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print("repro lint: no such path: "
              + ", ".join(str(p) for p in missing), file=sys.stderr)
        return 1
    hot = frozenset(
        p.strip() for p in args.hot_path.split(",") if p.strip())
    select = _parse_codes(args.select)

    if args.changed_only:
        changed = changed_files(Path.cwd())
        if changed is None:
            print("repro lint: --changed-only: no git merge-base "
                  "available; linting everything", file=sys.stderr)
        else:
            paths = _restrict_to(paths, changed)
            if not paths:
                report = AnalysisReport()
                _render(report, args.format, sys.stdout)
                return 0

    if args.project:
        cache_dir = None if args.no_cache else Path(args.cache_dir)
        report = analyze_project(paths, hot_packages=hot,
                                 select=select, root=Path.cwd(),
                                 cache_dir=cache_dir)
    else:
        report = analyze_paths(paths, hot_packages=hot,
                               select=select, root=Path.cwd())
    _render(report, args.format, sys.stdout)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _render(report, args.format, handle)
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & parallel-safety static checks")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
