"""Documentation hygiene checker (RA401).

RA401 — every public module must open with a docstring.  The repo's
docs (``docs/architecture.md`` and friends) describe the layers; the
module docstring is where a reader lands *next*, so a missing one
breaks the documentation trail exactly where it matters most.  Modules
whose filename starts with an underscore are implementation details and
exempt — except ``__init__.py`` and ``__main__.py``, which are the
public face of a package and must be documented.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from .base import Checker, Violation

#: dunder modules that are public API surface despite the underscore
_PUBLIC_DUNDERS = frozenset({"__init__", "__main__"})


def is_public_module(stem: str) -> bool:
    """True when a module filename names public API surface."""
    return not stem.startswith("_") or stem in _PUBLIC_DUNDERS


class ModuleDocstringChecker(Checker):
    """RA401: public modules open with a docstring."""

    codes: Tuple[str, ...] = ("RA401",)

    def run(self) -> List[Violation]:
        stem = self.context.path.stem
        if not is_public_module(stem):
            return self.violations
        if ast.get_docstring(self.context.tree) is None:
            # ast.Module has no lineno; report() anchors it at 1:1,
            # which is exactly where the docstring belongs.
            self.report(
                self.context.tree, "RA401",
                f"public module `{self.context.path.name}` has no "
                f"docstring; open with one line saying what the module "
                f"is for (see docs/architecture.md for the layer map)")
        return self.violations
