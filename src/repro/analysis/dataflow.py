"""Interprocedural determinism & numeric-safety dataflow (RA700-RA704).

The repo's load-bearing claims are *bit-identical equivalences*:
parallel aggregation equals serial, incremental retrain equals strict
rebuild, snapshot/restore equals an uninterrupted service.  Each holds
only while every function on the contract path is free of order- and
platform-dependence.  This module makes those paths explicit and
checkable:

1. a ``[tool.repro.determinism]`` table in ``pyproject.toml`` names
   each contract's *entry points* (functions, ``Class.method`` pairs,
   classes, or whole modules/packages)::

       [tool.repro.determinism]
       exempt = ["repro.obs"]          # instrumentation, not results
       [tool.repro.determinism.contracts]
       parallel-pipeline = ["repro.perf.parallel._aggregate_shard"]
       snapshot-restore  = ["repro.store"]

2. :func:`extract_det_sites` scans each module once (cacheable, plain
   data) for *sites* — expressions whose value or visible effect can
   depend on iteration order, float summation order, platform dtype
   defaults, or ambient process state;

3. :func:`check_determinism` resolves the entry points against the
   conservative call graph (``callgraph.ProjectGraph``), computes the
   reachable closure, and reports only the sites inside it.  A site in
   a function no contract reaches is silent: nondeterminism is allowed
   anywhere it cannot leak into an equivalence guarantee.

The rules:

* **RA701** iteration over an unordered collection (``set``, ``dict``
  views of sets, ``os.listdir``/``glob``/``Path.iterdir`` results)
  feeding accumulation or emitted output — fix: ``sorted(...)``;
* **RA702** order-sensitive float accumulation (``sum()`` or a ``+=``
  loop) over an unordered collection — fix:
  :func:`repro.util.exactsum.exact_total` (order-independent,
  correctly rounded) or sorted iteration.  Integer sums are exact and
  hence order-free, so provably-integer literals are skipped; the
  autofix applies only to a bare single-argument ``sum(...)`` (a
  ``start`` argument is reported but left alone) and always yields a
  ``float`` — the remedy text calls that out for int inputs;
* **RA703** numpy arrays built without a platform-stable dtype
  (``dtype=int`` is the C ``long``: 64-bit on Linux, 32-bit on
  Windows) — fix: pin ``int64``/``float64`` explicitly;
* **RA704** ambient process state (wall clock, ``os.environ``,
  ``uuid``, global RNG, ``id()``-keyed lookups) — report-only, the
  value must be threaded in explicitly.

Sites are conservative and carry their own autofix recipe where one is
safe (see ``fixer.py``); everything honours ``# repro: noqa[RAxxx]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, FrozenSet, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from .base import ImportMap, Violation
from .callgraph import FunctionKey, ProjectGraph
from .hygiene import _WALL_CLOCK
from .layers import _fallback_read_table

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on py3.9 CI
    tomllib = None  # type: ignore[assignment]


class DeterminismConfigError(ValueError):
    """The ``[tool.repro.determinism]`` table is malformed."""


@dataclass(frozen=True)
class DeterminismConfig:
    """Validated contract table: contract name -> entry-point paths."""

    contracts: Mapping[str, Tuple[str, ...]]
    exempt: Tuple[str, ...] = ()
    source: str = "<memory>"

    def is_exempt(self, module: str) -> bool:
        """True when ``module`` sits under an exempt prefix."""
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.exempt)


def _config_from_mapping(raw: Mapping[str, object],
                         source: str) -> DeterminismConfig:
    contracts: Dict[str, Tuple[str, ...]] = {}
    exempt: Tuple[str, ...] = ()

    def entry_list(name: str, value: object) -> Tuple[str, ...]:
        if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, str) for item in value):
            raise DeterminismConfigError(
                f"{source}: [tool.repro.determinism] key {name!r} must "
                "map to a list of dotted paths")
        return tuple(value)

    for key, value in raw.items():
        if key == "exempt":
            exempt = entry_list(key, value)
        elif key == "contracts":
            if not isinstance(value, dict):
                raise DeterminismConfigError(
                    f"{source}: [tool.repro.determinism.contracts] must "
                    "be a table of contract-name = [entry, ...] pairs")
            for name, entries in value.items():
                contracts[str(name)] = entry_list(str(name), entries)
        else:
            # `name = [...]` directly under the table is sugar for a
            # contract, so small configs need only one section
            contracts[key] = entry_list(key, value)
    return DeterminismConfig(contracts=contracts, exempt=exempt,
                             source=source)


def read_determinism_table(pyproject: Path) -> Optional[DeterminismConfig]:
    """Load ``[tool.repro.determinism]`` from a pyproject file.

    Returns None when the file has no such table; raises
    :class:`DeterminismConfigError` when it exists but is invalid.
    """
    source = str(pyproject)
    text = pyproject.read_text(encoding="utf-8")
    raw: Optional[Mapping[str, object]]
    if tomllib is not None:
        data = tomllib.loads(text)
        tool = data.get("tool", {})
        repro = tool.get("repro", {}) if isinstance(tool, dict) else {}
        det = repro.get("determinism") if isinstance(repro, dict) else None
        raw = det if isinstance(det, dict) else None
    else:  # pragma: no cover - py<3.11 only
        base = _fallback_read_table(text, source, "tool.repro.determinism")
        nested = _fallback_read_table(
            text, source, "tool.repro.determinism.contracts")
        if base is None and nested is None:
            raw = None
        else:
            merged: Dict[str, object] = dict(base or {})
            if nested is not None:
                merged["contracts"] = dict(nested)
            raw = merged
    if raw is None:
        return None
    return _config_from_mapping(raw, source)


def find_determinism_config(start: Path) -> Optional[DeterminismConfig]:
    """Walk up from ``start`` to the nearest determinism table."""
    cursor = start.resolve()
    if cursor.is_file():
        cursor = cursor.parent
    while True:
        candidate = cursor / "pyproject.toml"
        if candidate.is_file():
            config = read_determinism_table(candidate)
            if config is not None:
                return config
        parent = cursor.parent
        if parent == cursor:
            return None
        cursor = parent


# -- sites --------------------------------------------------------------------

#: autofix recipes a site may carry (applied by ``fixer.py``)
FIX_KINDS: FrozenSet[str] = frozenset({
    "wrap-sorted",     # insert sorted( ... ) around the span; a payload
                       # becomes an extra sorted() argument (scandir key)
    "exact-total",     # replace the span (the `sum` name) with exact_total
    "dtype-replace",   # replace the span (a dtype value) with the payload
    "dtype-add",       # insert the payload at the span start (zero-width)
})

#: sort key for scandir-derived iterables: ``os.DirEntry`` defines no
#: ``<``, so a bare ``sorted(...)`` over one raises TypeError
_SCANDIR_SORT_KEY = "key=lambda e: e.name"


@dataclass(frozen=True)
class DetSite:
    """One potential determinism hazard inside one function.

    Sites are extracted per file with no knowledge of the contract
    table, so they cache alongside :class:`ModuleFacts`; whether a site
    is *reported* depends on reachability, decided at link time.
    """

    function: str        # qualname within the module ("f", "C.m", "<module>")
    code: str            # RA701..RA704
    lineno: int
    col: int             # 1-based, like Violation
    detail: str          # message fragment describing the hazard
    fix_kind: Optional[str] = None
    #: (lineno, col_offset, end_lineno, end_col_offset) — AST positions,
    #: 0-based columns; the region the fix edits (zero-width for inserts)
    span: Optional[Tuple[int, int, int, int]] = None
    payload: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "code": self.code,
            "lineno": self.lineno,
            "col": self.col,
            "detail": self.detail,
            "fix_kind": self.fix_kind,
            "span": None if self.span is None else list(self.span),
            "payload": self.payload,
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "DetSite":
        span = raw.get("span")
        return cls(
            function=str(raw["function"]),
            code=str(raw["code"]),
            lineno=int(raw["lineno"]),  # type: ignore[arg-type]
            col=int(raw["col"]),  # type: ignore[arg-type]
            detail=str(raw["detail"]),
            fix_kind=(None if raw.get("fix_kind") is None
                      else str(raw["fix_kind"])),
            span=(None if span is None else (
                int(span[0]), int(span[1]),  # type: ignore[index]
                int(span[2]), int(span[3]))),  # type: ignore[index]
            payload=str(raw.get("payload", "")),
        )


# -- extraction ---------------------------------------------------------------

#: calls that return filesystem listings in arbitrary order
_UNORDERED_PRODUCERS: FrozenSet[str] = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: attribute calls returning unordered listings regardless of receiver
#: (Path.iterdir/glob/rglob yield in os.scandir order, i.e. arbitrary)
_UNORDERED_METHODS: FrozenSet[str] = frozenset({
    "iterdir", "glob", "rglob", "scandir", "listdir",
})

#: set methods returning another unordered set
_SET_RETURNING_METHODS: FrozenSet[str] = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy",
})

#: builtins whose result does not depend on argument order (ties in
#: min/max are a documented blind spot)
_ORDER_FREE_CONSUMERS: FrozenSet[str] = frozenset({
    "min", "max", "len", "any", "all", "set", "frozenset", "sorted",
})

#: numpy constructors whose dtype handling RA703 audits
_NUMPY_CTORS: FrozenSet[str] = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "arange",
})

#: dtype spellings that mean "the platform C long" (RA703, fixable)
_PLATFORM_INT_DTYPES: FrozenSet[str] = frozenset({
    "numpy.int_", "numpy.intp", "numpy.intc", "numpy.long",
})

#: ambient-state calls beyond the wall clock (RA704, report-only)
_AMBIENT_ENV: FrozenSet[str] = frozenset({
    "os.getenv", "os.environ.get",
})
_AMBIENT_UUID: FrozenSet[str] = frozenset({
    "uuid.uuid1", "uuid.uuid4",
})
_AMBIENT_RANDOM: FrozenSet[str] = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle",
    "random.sample", "random.uniform", "random.gauss",
    "random.getrandbits",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random",
})

_COMPREHENSIONS = (ast.ListComp, ast.GeneratorExp, ast.DictComp)


def _snippet(node: ast.expr, limit: int = 40) -> str:
    """Short source rendering of an expression for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<expr>"
    return text if len(text) <= limit else text[:limit - 3] + "..."


def _span_of(node: ast.expr) -> Optional[Tuple[int, int, int, int]]:
    end_lineno = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_lineno is None or end_col is None:  # pragma: no cover
        return None
    return (node.lineno, node.col_offset, end_lineno, end_col)


def _int_only_set_literal(node: ast.expr) -> bool:
    """``{1, 2, 3}``: integer summation is exact, hence order-free.

    The one case where the RA702 detector can *prove* the summands are
    ints — where ``exact_total`` (always float) would change the result
    type — is a set literal of integer constants, so it is skipped.
    """
    return isinstance(node, ast.Set) and bool(node.elts) and all(
        isinstance(elt, ast.Constant) and isinstance(elt.value, int)
        for elt in node.elts)


def _contains_id_call(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"):
            return True
    return False


class _FunctionDetScanner:
    """Order-aware walk of one function body collecting :class:`DetSite`.

    Tracks which local names are currently bound to unordered values
    (statement order matters: ``xs = set(...)`` then ``xs = sorted(xs)``
    clears the taint), so the walk is hand-rolled rather than a plain
    ``ast.walk``.
    """

    def __init__(self, qualname: str, imports: ImportMap,
                 sites: List[DetSite]) -> None:
        self.qualname = qualname
        self.imports = imports
        self.sites = sites
        self.unordered: Set[str] = set()
        #: names currently bound to scandir results (DirEntry streams)
        self.scandir: Set[str] = set()
        #: comprehension nodes already claimed by an order-free consumer
        self.consumed: Set[int] = set()

    # -- recording ----------------------------------------------------------

    def _site(self, node: ast.expr, code: str, detail: str,
              fix_kind: Optional[str] = None,
              span: Optional[Tuple[int, int, int, int]] = None,
              payload: str = "") -> None:
        if fix_kind is not None and span is None:
            fix_kind = None  # no span, no safe edit: report-only
        self.sites.append(DetSite(
            function=self.qualname, code=code,
            lineno=node.lineno, col=node.col_offset + 1,
            detail=detail, fix_kind=fix_kind, span=span,
            payload=payload))

    # -- value-kind inference ------------------------------------------------

    def _dotted(self, node: ast.expr) -> Optional[str]:
        return self.imports.resolve_attribute(node)

    def is_unordered(self, node: ast.expr) -> bool:
        """Conservatively: does this expression yield in arbitrary order?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if isinstance(node, ast.IfExp):
            return (self.is_unordered(node.body)
                    or self.is_unordered(node.orelse))
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self.is_unordered(node.left)
                    or self.is_unordered(node.right))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id == "sorted":
                    return False
            dotted = self._dotted(func)
            if dotted in _UNORDERED_PRODUCERS:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _UNORDERED_METHODS:
                    return True
                if (func.attr in _SET_RETURNING_METHODS
                        and self.is_unordered(func.value)):
                    return True
        return False

    def is_scandir(self, node: ast.expr) -> bool:
        """Does this expression yield ``os.DirEntry`` objects?

        DirEntry does not support ``<``, so the wrap-sorted fix for a
        scandir-derived iterable must sort by ``e.name`` instead of the
        elements themselves.
        """
        if isinstance(node, ast.Name):
            return node.id in self.scandir
        if isinstance(node, ast.IfExp):
            return (self.is_scandir(node.body)
                    or self.is_scandir(node.orelse))
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and node.args
                    and func.id in ("set", "frozenset", "list",
                                    "tuple", "iter", "reversed")):
                return self.is_scandir(node.args[0])
            if self._dotted(func) == "os.scandir":
                return True
            if isinstance(func, ast.Attribute) and func.attr == "scandir":
                return True
        return False

    def _sorted_payload(self, node: ast.expr) -> str:
        """Extra ``sorted()`` argument the wrap-sorted fix needs, if any."""
        return _SCANDIR_SORT_KEY if self.is_scandir(node) else ""

    def _genexp_iter_unordered(self,
                               node: ast.expr) -> Optional[ast.expr]:
        """First unordered generator iterable of a comprehension arg."""
        if not isinstance(node, _COMPREHENSIONS):
            return None
        for gen in node.generators:
            if self.is_unordered(gen.iter):
                return gen.iter
        return None

    # -- statements ----------------------------------------------------------

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _bind(self, target: ast.expr, unordered: bool,
              scandir: bool = False) -> None:
        if isinstance(target, ast.Name):
            if unordered:
                self.unordered.add(target.id)
            else:
                self.unordered.discard(target.id)
            if scandir:
                self.scandir.add(target.id)
            else:
                self.scandir.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, False)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, False)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            unordered = self.is_unordered(stmt.value)
            scandir = self.is_scandir(stmt.value)
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    self._expr(target)
                self._bind(target, unordered, scandir)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._bind(stmt.target, self.is_unordered(stmt.value),
                           self.is_scandir(stmt.value))
            if not isinstance(stmt.target, ast.Name):
                self._expr(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            if not isinstance(stmt.target, ast.Name):
                self._expr(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._loop(stmt)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, False)
            self.scan(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.scan(stmt.body)
            for handler in stmt.handlers:
                self.scan(handler.body)
            self.scan(stmt.orelse)
            self.scan(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs: sites attribute to the enclosing function so
            # call-graph reachability (which only knows top-level names)
            # still covers them; taint does not flow across the boundary
            nested = _FunctionDetScanner(self.qualname, self.imports,
                                         self.sites)
            nested.scan(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    nested = _FunctionDetScanner(
                        self.qualname, self.imports, self.sites)
                    nested.scan(item.body)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _loop(self, stmt: "ast.For | ast.AsyncFor") -> None:
        self._expr(stmt.iter)
        if self.is_unordered(stmt.iter):
            code = self._classify_loop_body(stmt.body)
            if code is not None:
                noun = ("order-sensitive arithmetic accumulation"
                        if code == "RA702" else
                        "order-dependent output (append/store/yield)")
                self._site(
                    stmt.iter, code,
                    detail=(f"loop over unordered `{_snippet(stmt.iter)}` "
                            f"feeds {noun}"),
                    fix_kind="wrap-sorted", span=_span_of(stmt.iter),
                    payload=self._sorted_payload(stmt.iter))
        self._bind(stmt.target, False)
        self.scan(stmt.body)
        self.scan(stmt.orelse)

    @staticmethod
    def _classify_loop_body(body: Sequence[ast.stmt]) -> Optional[str]:
        """RA702 for arithmetic accumulation, RA701 for ordered output."""
        arith = False
        ordered = False
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and isinstance(
                        node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
                    arith = True
                elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute) and node.func.attr in (
                        "append", "extend", "insert", "appendleft",
                        "write", "writerow"):
                    ordered = True
                elif isinstance(node, ast.Assign):
                    if any(isinstance(t, ast.Subscript)
                           for t in node.targets):
                        ordered = True
                elif isinstance(node, (ast.Yield, ast.YieldFrom,
                                       ast.Return, ast.Break)):
                    # first-match exit or emission: which element wins
                    # depends on iteration order
                    ordered = True
        if arith:
            return "RA702"
        if ordered:
            return "RA701"
        return None

    # -- expressions ---------------------------------------------------------

    def _expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call(sub)
            elif isinstance(sub, _COMPREHENSIONS):
                self._comp(sub)
            elif isinstance(sub, ast.Subscript):
                self._subscript(sub)

    def _claim(self, node: ast.expr) -> None:
        if isinstance(node, _COMPREHENSIONS + (ast.SetComp,)):
            self.consumed.add(id(node))

    def _flag_unordered_arg(self, arg: ast.expr, code: str,
                            consumer: str) -> bool:
        """RA701/RA702 for a consumer whose argument is unordered."""
        if self.is_unordered(arg):
            self._claim(arg)
            self._site(
                arg, code,
                detail=(f"`{consumer}` consumes unordered "
                        f"`{_snippet(arg)}`"),
                fix_kind="wrap-sorted", span=_span_of(arg),
                payload=self._sorted_payload(arg))
            return True
        gen_iter = self._genexp_iter_unordered(arg)
        if gen_iter is not None:
            self._claim(arg)
            self._site(
                gen_iter, code,
                detail=(f"`{consumer}` consumes a generator over "
                        f"unordered `{_snippet(gen_iter)}`"),
                fix_kind="wrap-sorted", span=_span_of(gen_iter),
                payload=self._sorted_payload(gen_iter))
            return True
        return False

    def _call(self, node: ast.Call) -> None:
        func = node.func
        dotted = self._dotted(func)
        if isinstance(func, ast.Name) and node.args:
            if func.id == "sum":
                arg = node.args[0]
                if ((self.is_unordered(arg)
                        or self._genexp_iter_unordered(arg) is not None)
                        and not _int_only_set_literal(arg)):
                    self._claim(arg)
                    # exact_total takes exactly one iterable, so the
                    # rewrite is only safe for a bare sum(iterable);
                    # sum(xs, start) would become a TypeError — and a
                    # non-numeric start (list concatenation) is not
                    # float accumulation at all
                    bare = len(node.args) == 1 and not node.keywords
                    self._site(
                        node, "RA702",
                        detail=(f"`sum({_snippet(arg)})` accumulates "
                                "floats in arbitrary order"
                                + ("" if bare else
                                   "; the start argument rules out the "
                                   "exact_total rewrite")),
                        fix_kind="exact-total" if bare else None,
                        span=_span_of(func) if bare else None,
                        payload="exact_total" if bare else "")
            elif func.id in ("list", "tuple"):
                self._flag_unordered_arg(node.args[0], "RA701", func.id)
            elif func.id in _ORDER_FREE_CONSUMERS:
                for arg in node.args:
                    self._claim(arg)
        elif (isinstance(func, ast.Attribute) and func.attr == "join"
                and node.args):
            self._flag_unordered_arg(node.args[0], "RA701", "join")
        if dotted is not None and dotted.startswith("numpy."):
            self._numpy(node, dotted)
        self._ambient(node, dotted)

    def _comp(self, node: ast.expr) -> None:
        if id(node) in self.consumed:
            return
        assert isinstance(node, _COMPREHENSIONS)
        kind = {"ListComp": "list", "GeneratorExp": "generator",
                "DictComp": "dict"}[type(node).__name__]
        for gen in node.generators:
            if self.is_unordered(gen.iter):
                self._site(
                    gen.iter, "RA701",
                    detail=(f"{kind} comprehension iterates unordered "
                            f"`{_snippet(gen.iter)}`"),
                    fix_kind="wrap-sorted", span=_span_of(gen.iter),
                    payload=self._sorted_payload(gen.iter))
                return

    def _subscript(self, node: ast.Subscript) -> None:
        if _contains_id_call(node.slice):
            self._site(
                node, "RA704",
                detail="`id()`-keyed lookup depends on allocation "
                       "addresses, which differ every run")
        dotted = self._dotted(node.value)
        if dotted == "os.environ":
            self._site(
                node, "RA704",
                detail="`os.environ[...]` reads ambient process state")

    # -- RA703: numpy dtype stability ---------------------------------------

    def _numpy_alias(self, func: ast.expr) -> Optional[str]:
        """Textual module expression for fixes, e.g. ``np``.

        ``np.zeros`` -> ``np``; ``from numpy import zeros`` -> whatever
        local name binds the numpy module, or None (report-only fix).
        """
        if isinstance(func, ast.Attribute):
            return _snippet(func.value, limit=120)
        for local, target in self.imports.modules.items():
            if target == "numpy":
                return local
        return None

    def _numpy(self, node: ast.Call, dotted: str) -> None:
        tail = dotted[len("numpy."):]
        if tail not in _NUMPY_CTORS:
            return
        alias = self._numpy_alias(node.func)
        dtype_kw = next(
            (kw for kw in node.keywords if kw.arg == "dtype"), None)
        if dtype_kw is not None:
            self._numpy_dtype_value(node, tail, alias, dtype_kw.value)
            return
        if tail in ("zeros", "ones", "empty"):
            self._numpy_add_dtype(node, tail, alias, "float64",
                                  "defaults to float64 but leaves the "
                                  "dtype unpinned in a persisted/hashed "
                                  "buffer")
        elif tail == "arange":
            consts = [a.value for a in node.args
                      if isinstance(a, ast.Constant)]
            if len(consts) == len(node.args) and node.args and all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in consts):
                wanted = ("float64" if any(
                    isinstance(v, float) for v in consts) else "int64")
                self._numpy_add_dtype(
                    node, tail, alias, wanted,
                    "infers the platform default int (C long) from "
                    "integer bounds" if wanted == "int64" else
                    "leaves the dtype unpinned")
            else:
                self._site(node, "RA703",
                           detail=f"`{_snippet(node)}` without dtype= "
                                  "infers a platform-dependent type")
        elif tail == "full":
            fill = node.args[1] if len(node.args) >= 2 else None
            if isinstance(fill, ast.Constant) and isinstance(
                    fill.value, (int, float)) and not isinstance(
                    fill.value, bool):
                wanted = ("int64" if isinstance(fill.value, int)
                          else "float64")
                self._numpy_add_dtype(
                    node, tail, alias, wanted,
                    "infers its dtype from the fill value (ints become "
                    "the platform C long)")
            else:
                self._site(node, "RA703",
                           detail=f"`{_snippet(node)}` without dtype= "
                                  "infers a platform-dependent type")
        else:  # array / asarray / ascontiguousarray
            self._site(
                node, "RA703",
                detail=(f"`{tail}(...)` without dtype= infers from the "
                        "data: integer input becomes the platform C "
                        "long (64-bit Linux, 32-bit Windows)"))

    def _numpy_dtype_value(self, node: ast.Call, tail: str,
                           alias: Optional[str],
                           value: ast.expr) -> None:
        dotted = self._dotted(value)
        is_platform_int = (
            (isinstance(value, ast.Name) and value.id == "int")
            or (isinstance(value, ast.Constant) and value.value == "int")
            or dotted in _PLATFORM_INT_DTYPES)
        if is_platform_int:
            span = _span_of(value)
            payload = f"{alias}.int64" if alias else ""
            self._site(
                node, "RA703",
                detail=(f"`{tail}(..., dtype={_snippet(value)})` is the "
                        "platform C long (64-bit Linux, 32-bit Windows)"),
                fix_kind="dtype-replace" if payload else None,
                span=span, payload=payload)
        elif (dotted == "numpy.float32"
                or (isinstance(value, ast.Constant)
                    and value.value == "float32")):
            self._site(
                node, "RA703",
                detail=(f"`{tail}(..., dtype=float32)` silently upcasts "
                        "when mixed with float64 accumulators; keep "
                        "contract-path arrays float64 or isolate the "
                        "cast"))

    def _numpy_add_dtype(self, node: ast.Call, tail: str,
                         alias: Optional[str], wanted: str,
                         why: str) -> None:
        insert_after = self._last_arg_end(node)
        payload = f", dtype={alias}.{wanted}" if alias else ""
        self._site(
            node, "RA703",
            detail=f"`{tail}(...)` {why}",
            fix_kind="dtype-add" if payload and insert_after else None,
            span=(None if insert_after is None else
                  (insert_after[0], insert_after[1],
                   insert_after[0], insert_after[1])),
            payload=payload)

    @staticmethod
    def _last_arg_end(node: ast.Call) -> Optional[Tuple[int, int]]:
        """Position just after the last argument (insertion point)."""
        best: Optional[Tuple[int, int]] = None
        candidates: List[ast.expr] = list(node.args)
        candidates.extend(kw.value for kw in node.keywords)
        for arg in candidates:
            end_lineno = getattr(arg, "end_lineno", None)
            end_col = getattr(arg, "end_col_offset", None)
            if end_lineno is None or end_col is None:  # pragma: no cover
                return None
            if best is None or (end_lineno, end_col) > best:
                best = (end_lineno, end_col)
        return best

    # -- RA704: ambient state ------------------------------------------------

    def _ambient(self, node: ast.Call,
                 dotted: Optional[str]) -> None:
        func = node.func
        if dotted is None:
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("get", "setdefault", "pop")
                    and node.args and _contains_id_call(node.args[0])):
                self._site(
                    node, "RA704",
                    detail="`id()`-keyed lookup depends on allocation "
                           "addresses, which differ every run")
            return
        if dotted in _WALL_CLOCK:
            self._site(
                node, "RA704",
                detail=f"wall-clock read `{dotted}(...)` makes output "
                       "depend on when the run happened")
        elif dotted in _AMBIENT_ENV:
            self._site(
                node, "RA704",
                detail=f"`{dotted}(...)` reads ambient process "
                       "environment")
        elif dotted in _AMBIENT_UUID:
            self._site(
                node, "RA704",
                detail=f"`{dotted}()` draws from OS entropy/clock")
        elif dotted in _AMBIENT_RANDOM:
            self._site(
                node, "RA704",
                detail=f"`{dotted}(...)` draws from process-global "
                       "RNG state")


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def extract_det_sites(tree: ast.Module) -> List[DetSite]:
    """All determinism sites in one module, grouped by function.

    Mirrors the call-graph extractor's notion of a "function" (top-level
    defs, class methods, and a ``<module>`` pseudo-function for
    module-level statements) so sites join cleanly against
    :class:`~repro.analysis.callgraph.FunctionFacts` keys.
    """
    imports = ImportMap().collect(tree)
    sites: List[DetSite] = []
    module_stmts: List[ast.stmt] = []

    def scan_body(body: Sequence[ast.stmt],
                  owner_class: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = (node.name if owner_class is None
                            else f"{owner_class}.{node.name}")
                _FunctionDetScanner(qualname, imports,
                                    sites).scan(node.body)
            elif isinstance(node, ast.ClassDef) and owner_class is None:
                scan_body(node.body, node.name)
            elif isinstance(node, ast.If) and owner_class is None:
                if not _is_type_checking(node.test):
                    scan_body(node.body, None)
                    scan_body(node.orelse, None)
            elif owner_class is None:
                module_stmts.append(node)

    scan_body(tree.body, None)
    _FunctionDetScanner("<module>", imports, sites).scan(module_stmts)
    return sites


# -- the check ----------------------------------------------------------------

def _resolve_entry(graph: ProjectGraph, entry: str,
                   _depth: int = 0) -> List[FunctionKey]:
    """Entry path -> function keys: function, Class.method, class
    (every method), or module/package (every function)."""
    if _depth > 8:
        return []
    matches = [name for name in graph.modules
               if name == entry or name.startswith(entry + ".")]
    if matches:
        return [(name, qualname)
                for name in sorted(matches)
                for qualname in sorted(graph.modules[name].functions)]
    parts = entry.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:cut])
        module = graph.modules.get(prefix)
        if module is None:
            continue
        rest = parts[cut:]
        if len(rest) == 1 and module.defs.get(rest[0]) == "class":
            head = rest[0] + "."
            return [(prefix, qualname)
                    for qualname in sorted(module.functions)
                    if qualname.startswith(head)]
        name = ".".join(rest)
        if name in module.functions:
            return [(prefix, name)]
        if rest[0] in module.symbol_imports:
            chained = ".".join(
                [module.symbol_imports[rest[0]]] + rest[1:])
            return _resolve_entry(graph, chained, _depth + 1)
        return []
    return []


_REMEDIES: Dict[str, str] = {
    "RA701": "wrap the iterable in `sorted(...)`",
    "RA702": ("accumulate with `repro.util.exactsum.exact_total` "
              "(order-independent, correctly rounded; returns float "
              "even for int inputs) or iterate in sorted order"),
    "RA703": "pin an explicit platform-stable dtype",
    "RA704": ("thread the value in explicitly (seed, hour, config) "
              "instead of reading process state"),
}


def check_determinism(
    graph: ProjectGraph,
    sites_by_module: Mapping[str, Sequence[DetSite]],
    config: DeterminismConfig,
) -> Tuple[List[Violation], List[Tuple[str, DetSite]]]:
    """Report sites reachable from contract entry points.

    Returns ``(violations, fixable)`` where ``fixable`` pairs each
    reported auto-fixable site with its display path, in report order.
    """
    violations: List[Violation] = []
    fixable: List[Tuple[str, DetSite]] = []
    roots: Dict[FunctionKey, Tuple[str, str]] = {}
    for contract in sorted(config.contracts):
        for entry in config.contracts[contract]:
            keys = _resolve_entry(graph, entry)
            if not keys:
                violations.append(Violation(
                    path=config.source, line=1, col=1, code="RA700",
                    message=(f"contract `{contract}` entry `{entry}` "
                             "does not resolve to a known module, "
                             "class, or function; fix the path or "
                             "remove the entry")))
                continue
            for key in keys:
                roots.setdefault(key, (contract, entry))
    origin = graph.reachable_from(list(roots))
    for module_name in sorted(sites_by_module):
        facts = graph.modules.get(module_name)
        if facts is None or config.is_exempt(module_name):
            continue
        for site in sites_by_module[module_name]:
            root = origin.get((module_name, site.function))
            if root is None:
                continue
            if facts.is_suppressed(site.lineno, site.code):
                continue
            contract, entry = roots[root]
            fix_note = (" (auto-fixable with --fix)"
                        if site.fix_kind is not None else "")
            violations.append(Violation(
                path=facts.display_path, line=site.lineno,
                col=site.col, code=site.code,
                message=(f"{site.detail} — on determinism contract "
                         f"`{contract}` (reachable from `{entry}`); "
                         f"{_REMEDIES[site.code]}{fix_note}")))
            if site.fix_kind is not None and site.span is not None:
                fixable.append((facts.display_path, site))
    return violations, fixable
