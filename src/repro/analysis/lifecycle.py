"""Concurrency-lifecycle analysis (RA801, RA802, RA803, RA805).

PR 9 made the reproduction a long-running sharded daemon, which means
the failure modes that matter are no longer "wrong number" but "stuck
process": two locks taken in opposite orders on different paths, a
blocking ``recv``/``join`` executed while a query lock is held, a
worker thread started and never joined, a descriptor leaked on an
error path.  None of those are visible to per-file pattern rules, so
this module adds a fourth project-mode wave over the conservative
call graph:

* **RA801** lock-order deadlock: every ``with <lock>:`` acquisition is
  recorded together with the locks already held (directly, and through
  resolvable calls made while holding).  The resulting
  acquired-while-holding graph is searched for cycles; each edge on a
  cycle is reported at its acquisition site, naming the opposite-order
  site so both halves of the deadlock are in the message.
* **RA802** blocking call under lock: ``join()``/``recv()``/``get()``/
  ``wait()``/``time.sleep``/``open()`` lexically inside a ``with
  <lock>:`` body, or transitively reachable from a call made while the
  lock is held.  A ``timeout=`` keyword (or a bounded positional
  ``join(5)``) exempts the call; helpers whose name ends in
  ``_locked`` — the repo's caller-holds-lock convention from RA502 —
  are exempt from the *transitive* report, since the suffix documents
  deliberate under-lock work.
* **RA803** thread/process lifecycle: a ``Thread``/``Process``
  constructed and ``start()``-ed in a scope with no ``join``/
  ``terminate``/``kill`` anywhere in that scope, and a bare
  ``join()`` without ``timeout=`` inside a shutdown-path function
  (``stop``/``shutdown``/``close``/…) — the exact hang the serve
  daemon's escalation ladder exists to prevent.
* **RA805** (report-only, no autofix) unclosed resources: an
  ``open``/``os.open``/``NamedTemporaryFile``/``Pipe`` result bound to
  a local that never escapes the function and is never closed.

Like RA502 and the RA7xx rules, extraction is per file and JSON
round-trippable (:class:`LifeSite`) so the project cache can persist
it; everything cross-module happens at link time in
:func:`check_lifecycle`, which honours ``# repro: noqa[RAxxx]``
through :class:`~repro.analysis.callgraph.ModuleFacts`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (Dict, FrozenSet, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from .base import ImportMap, Violation
from .callgraph import FunctionKey, ModuleFacts, ProjectGraph

#: attribute calls that block unboundedly when called with no timeout
_BLOCKING_ATTRS: FrozenSet[str] = frozenset({
    "join", "recv", "recv_bytes", "get", "wait",
})

#: dotted calls that block (or sleep) regardless of receiver
_BLOCKING_DOTTED: FrozenSet[str] = frozenset({
    "time.sleep",
})

#: thread/process constructors RA803 tracks
_THREAD_CTORS: FrozenSet[str] = frozenset({"Thread", "Process"})

#: function names that are shutdown paths for the join-timeout rule
_SHUTDOWN_NAMES: FrozenSet[str] = frozenset({
    "stop", "shutdown", "close", "terminate", "kill",
    "__exit__", "__del__",
})

#: receiver-name fragments that mark a join target as thread-like even
#: when the constructor is out of view (e.g. handed in from elsewhere)
_THREADISH_FRAGMENTS: Tuple[str, ...] = ("thread", "process", "proc",
                                         "worker")

#: resource constructors RA805 tracks (attribute-name forms)
_RESOURCE_ATTRS: FrozenSet[str] = frozenset({
    "NamedTemporaryFile", "Pipe",
})


def _is_lock_name(name: str) -> bool:
    return "lock" in name.lower()


def _lock_identity(expr: ast.expr,
                   owner_class: Optional[str]) -> Optional[str]:
    """Stable identity for a lock-like ``with`` context expression.

    ``self._lock`` inside class ``C`` becomes ``C._lock`` so every
    method of the class (and every instance) maps to one node in the
    order graph; subscripts are stripped (``self._locks[i]`` and
    ``self._locks[j]`` are the same *level* in a lock hierarchy, and
    same-identity edges are ignored rather than reported).  Returns
    None for non-lock expressions.
    """
    node: ast.expr = expr.func if isinstance(expr, ast.Call) else expr
    while isinstance(node, ast.Subscript):
        node = node.value
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
        while isinstance(cursor, ast.Subscript):
            cursor = cursor.value
    parts.reverse()
    if not isinstance(cursor, ast.Name):
        return None
    if cursor.id in ("self", "cls"):
        if not parts or not _is_lock_name(parts[0]):
            return None
        return f"{owner_class or 'self'}.{parts[0]}"
    chain = [cursor.id] + parts
    for index, part in enumerate(chain):
        if _is_lock_name(part):
            return ".".join(chain[:index + 1])
    return None


def _receiver_desc(node: ast.expr) -> Optional[str]:
    """``self.X`` / bare-name receiver of a method call, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")):
        return f"self.{node.attr}"
    return None


def _has_timeout(node: ast.Call) -> bool:
    return any(kw.arg in ("timeout", "block") for kw in node.keywords)


@dataclass(frozen=True)
class LifeSite:
    """One lifecycle fact inside one function (plain, cacheable data).

    ``kind`` is one of:

    * ``acquire`` — a lock acquisition; ``name`` is the lock identity,
      ``held`` the identities already held at that point;
    * ``blocking`` — an unbounded blocking call; ``name`` describes it,
      ``held`` the locks held lexically (may be empty — link time needs
      every blocking site to resolve transitive RA802);
    * ``held-call`` — a call made while ``held`` is non-empty; ``name``
      is the raw callee text resolved against the graph at link time;
    * ``ctor`` / ``start`` / ``reap`` / ``join-bare`` — thread
      lifecycle events on receiver ``name`` (``detail`` carries the
      constructor kind for ``ctor``);
    * ``resource`` — an unclosed resource; ``name`` is the local,
      ``detail`` the constructor.
    """

    function: str        # qualname within the module ("f", "C.m", "<module>")
    kind: str
    lineno: int
    col: int             # 1-based, like Violation
    name: str
    held: Tuple[str, ...] = ()
    detail: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
            "name": self.name,
            "held": list(self.held),
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, object]) -> "LifeSite":
        return cls(
            function=str(raw["function"]),
            kind=str(raw["kind"]),
            lineno=int(raw["lineno"]),  # type: ignore[arg-type]
            col=int(raw["col"]),  # type: ignore[arg-type]
            name=str(raw["name"]),
            held=tuple(str(h) for h in raw.get("held", ())),  # type: ignore[union-attr]
            detail=str(raw.get("detail", "")),
        )


# -- extraction ---------------------------------------------------------------

class _LifeScanner:
    """Order-aware walk of one function body collecting :class:`LifeSite`.

    Tracks the stack of held lock identities through nested ``with``
    statements and the local resource/thread bindings in statement
    order, so the walk is hand-rolled like the RA7xx scanner rather
    than a plain ``ast.walk``.
    """

    def __init__(self, qualname: str, owner_class: Optional[str],
                 imports: ImportMap, sites: List[LifeSite]) -> None:
        self.qualname = qualname
        self.owner_class = owner_class
        self.imports = imports
        self.sites = sites
        self.held: List[str] = []
        #: local name -> constructor description ("open", "Pipe", ...)
        self.resources: Dict[str, Tuple[str, int, int]] = {}
        self.closed: Set[str] = set()
        self.escaped: Set[str] = set()

    def _site(self, node: ast.AST, kind: str, name: str,
              held: Tuple[str, ...] = (), detail: str = "") -> None:
        self.sites.append(LifeSite(
            function=self.qualname, kind=kind,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            name=name, held=held, detail=detail))

    # -- call classification -------------------------------------------------

    def _dotted(self, node: ast.expr) -> Optional[str]:
        return self.imports.resolve_attribute(node)

    def _raw_callee(self, func: ast.expr) -> Optional[str]:
        """Link-time-resolvable callee text, or None."""
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")):
                return f"self.{func.attr}"
            parts: List[str] = []
            cursor: ast.expr = func
            while isinstance(cursor, ast.Attribute):
                parts.append(cursor.attr)
                cursor = cursor.value
            if isinstance(cursor, ast.Name):
                return ".".join([cursor.id] + list(reversed(parts)))
        return None

    def _blocking_desc(self, node: ast.Call) -> Optional[str]:
        """Human description when the call blocks unboundedly."""
        if _has_timeout(node):
            return None
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "file IO `open(...)`"
            return None
        dotted = self._dotted(func)
        if dotted in _BLOCKING_DOTTED:
            return f"`{dotted}(...)`"
        if isinstance(func, ast.Attribute) \
                and func.attr in _BLOCKING_ATTRS and not node.args:
            # zero positional args: excludes str.join(xs), dict.get(k),
            # and the bounded thread.join(5) form in one stroke
            receiver = _receiver_desc(func.value)
            shown = receiver if receiver is not None else "<obj>"
            return f"`{shown}.{func.attr}()`"
        return None

    def _call(self, node: ast.Call) -> None:
        desc = self._blocking_desc(node)
        if desc is not None:
            self._site(node, "blocking", desc, held=tuple(self.held))
        if self.held:
            raw = self._raw_callee(node.func)
            if raw is not None:
                self._site(node, "held-call", raw,
                           held=tuple(self.held))
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _receiver_desc(func.value)
            if receiver is not None:
                if func.attr == "start" and not node.args:
                    self._site(node, "start", receiver)
                elif func.attr in ("join", "terminate", "kill"):
                    self._site(node, "reap", receiver)
                    if (func.attr == "join" and not node.args
                            and not _has_timeout(node)):
                        self._site(node, "join-bare", receiver)
                elif func.attr == "close" and isinstance(func.value,
                                                         ast.Name):
                    self.closed.add(func.value.id)
        dotted = self._dotted(func)
        if dotted == "os.close":
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.closed.add(arg.id)

    def _resource_ctor(self, node: ast.expr) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open"
        dotted = self._dotted(func)
        if dotted == "os.open":
            return "os.open"
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if name in _RESOURCE_ATTRS:
            return name
        return None

    def _thread_ctor(self, node: ast.expr) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        return name if name in _THREAD_CTORS else None

    # -- expressions ---------------------------------------------------------

    def _mark_escapes(self, node: ast.expr) -> None:
        # a name used only as a method receiver (`f.read()`) has not
        # escaped; a name passed, returned, yielded, aliased, or put in
        # a container has
        receivers: Set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and isinstance(
                    sub.value, ast.Name):
                receivers.add(id(sub.value))
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and id(sub) not in receivers):
                self.escaped.add(sub.id)

    def _expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call(sub)
                # a tracked resource passed as an argument changes
                # ownership: closing becomes the callee's business
                for arg in sub.args:
                    self._mark_escapes(arg)
                for keyword in sub.keywords:
                    self._mark_escapes(keyword.value)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                value = sub.value
                if value is not None:
                    self._mark_escapes(value)

    # -- statements ----------------------------------------------------------

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _bind_resource(self, target: ast.expr, ctor: str,
                       node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.resources[target.id] = (
                ctor, getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1)
            self.closed.discard(target.id)
            self.escaped.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # a, b = multiprocessing.Pipe(): both ends need closing
            for element in target.elts:
                self._bind_resource(element, ctor, node)

    def _assign(self, targets: Sequence[ast.expr],
                value: ast.expr, node: ast.AST) -> None:
        self._expr(value)
        ctor = self._resource_ctor(value)
        thread = self._thread_ctor(value)
        for target in targets:
            receiver = _receiver_desc(target) if thread else None
            if thread is not None and receiver is not None:
                self._site(node, "ctor", receiver, detail=thread)
            if ctor is not None:
                self._bind_resource(target, ctor, node)
            elif isinstance(target, ast.Name):
                # rebinding drops the old tracking (conservative)
                self.resources.pop(target.id, None)
            if not isinstance(target, ast.Name):
                self._expr(target)
        if ctor is None and thread is None:
            # `alias = f` keeps the object alive elsewhere
            self._mark_escapes(value)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._mark_escapes(stmt.value)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self.scan(stmt.body)
            self.scan(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.scan(stmt.body)
            for handler in stmt.handlers:
                self.scan(handler.body)
            self.scan(stmt.orelse)
            self.scan(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs run later (often on another thread): locks
            # held here are NOT held there, so scan with a fresh stack;
            # sites attribute to the enclosing function like RA7xx
            nested = _LifeScanner(self.qualname, self.owner_class,
                                  self.imports, self.sites)
            nested.scan(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    nested = _LifeScanner(self.qualname, self.owner_class,
                                          self.imports, self.sites)
                    nested.scan(item.body)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _with(self, stmt: "ast.With | ast.AsyncWith") -> None:
        pushed = 0
        for item in stmt.items:
            identity = _lock_identity(item.context_expr, self.owner_class)
            if identity is not None:
                self._site(item.context_expr, "acquire", identity,
                           held=tuple(self.held))
                self.held.append(identity)
                pushed += 1
                continue
            self._expr(item.context_expr)
            if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name):
                # `with open(...) as f:` — context-managed, not tracked
                self.resources.pop(item.optional_vars.id, None)
        self.scan(stmt.body)
        del self.held[len(self.held) - pushed:]

    def finish(self) -> None:
        """Emit RA805 sites for resources never closed or handed off."""
        for name, (ctor, lineno, col) in sorted(self.resources.items()):
            if name in self.closed or name in self.escaped:
                continue
            self.sites.append(LifeSite(
                function=self.qualname, kind="resource",
                lineno=lineno, col=col, name=name, detail=ctor))


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def extract_life_sites(tree: ast.Module) -> List[LifeSite]:
    """All lifecycle sites in one module, grouped by function.

    Mirrors the call-graph extractor's notion of a "function"
    (top-level defs, class methods, and a ``<module>``
    pseudo-function) so sites join cleanly against
    :class:`~repro.analysis.callgraph.FunctionFacts` keys.
    """
    imports = ImportMap().collect(tree)
    sites: List[LifeSite] = []
    module_stmts: List[ast.stmt] = []

    def scan_body(body: Sequence[ast.stmt],
                  owner_class: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = (node.name if owner_class is None
                            else f"{owner_class}.{node.name}")
                scanner = _LifeScanner(qualname, owner_class, imports,
                                       sites)
                scanner.scan(node.body)
                scanner.finish()
            elif isinstance(node, ast.ClassDef) and owner_class is None:
                scan_body(node.body, node.name)
            elif isinstance(node, ast.If) and owner_class is None:
                if not _is_type_checking(node.test):
                    scan_body(node.body, None)
                    scan_body(node.orelse, None)
            elif owner_class is None:
                module_stmts.append(node)

    scan_body(tree.body, None)
    top = _LifeScanner("<module>", None, imports, sites)
    top.scan(module_stmts)
    top.finish()
    return sites


# -- the check ----------------------------------------------------------------

@dataclass(frozen=True)
class _Edge:
    """First acquired-while-holding edge seen for an ordered lock pair."""

    module: str
    display_path: str
    function: str
    lineno: int
    col: int
    #: for transitive edges: where the far acquisition actually happens
    via: str = ""


def _resolve_raw_callee(graph: ProjectGraph, facts: ModuleFacts,
                        function: str, raw: str
                        ) -> Optional[FunctionKey]:
    """Resolve a :class:`LifeSite` held-call against the graph."""
    if raw.startswith("self."):
        if "." not in function:
            return None
        owner = function.split(".")[0]
        return graph.resolve_callable(
            f"{facts.module}.{owner}.{raw[len('self.'):]}")
    head = raw.split(".")[0]
    if head in facts.defs:
        key = graph.resolve_callable(f"{facts.module}.{raw}")
        if key is not None:
            return key
    if head in facts.symbol_imports:
        chained = ".".join([facts.symbol_imports[head]]
                           + raw.split(".")[1:])
        return graph.resolve_callable(chained)
    return graph.resolve_callable(raw)


def _qualify(module: str, identity: str) -> str:
    """Namespace a lock identity by module so unrelated same-named
    locks in different files never alias into a false cycle."""
    return f"{module}:{identity}"


def _short(identity: str) -> str:
    return identity.split(":", 1)[1] if ":" in identity else identity


def _find_path(adjacency: Mapping[str, Set[str]], start: str,
               goal: str) -> Optional[List[str]]:
    """Shortest lock-identity path ``start -> ... -> goal`` (BFS)."""
    if start == goal:
        return [start]
    parents: Dict[str, str] = {}
    queue: List[str] = [start]
    seen: Set[str] = {start}
    while queue:
        node = queue.pop(0)
        for succ in sorted(adjacency.get(node, set())):
            if succ in seen:
                continue
            parents[succ] = node
            if succ == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            seen.add(succ)
            queue.append(succ)
    return None


def _index_sites(
        graph: ProjectGraph,
        sites_by_module: Mapping[str, Sequence[LifeSite]],
) -> Tuple[Dict[FunctionKey, List[LifeSite]],
           Dict[FunctionKey, List[LifeSite]],
           List[Tuple[ModuleFacts, LifeSite, FunctionKey]]]:
    """(acquires per function, blocking per function, resolved held-calls)."""
    acquires: Dict[FunctionKey, List[LifeSite]] = {}
    blocking: Dict[FunctionKey, List[LifeSite]] = {}
    held_calls: List[Tuple[ModuleFacts, LifeSite, FunctionKey]] = []
    for module_name in sorted(sites_by_module):
        facts = graph.modules.get(module_name)
        if facts is None:
            continue
        for site in sites_by_module[module_name]:
            key: FunctionKey = (module_name, site.function)
            if site.kind == "acquire":
                acquires.setdefault(key, []).append(site)
            elif site.kind == "blocking":
                blocking.setdefault(key, []).append(site)
            elif site.kind == "held-call":
                target = _resolve_raw_callee(graph, facts,
                                             site.function, site.name)
                if target is not None:
                    held_calls.append((facts, site, target))
    return acquires, blocking, held_calls


def _check_lock_order(
        graph: ProjectGraph,
        acquires: Mapping[FunctionKey, Sequence[LifeSite]],
        held_calls: Sequence[Tuple[ModuleFacts, LifeSite, FunctionKey]],
) -> List[Violation]:
    """RA801: cycles in the acquired-while-holding graph."""
    edges: Dict[Tuple[str, str], _Edge] = {}

    def add_edge(held: str, acquired: str, facts: ModuleFacts,
                 site: LifeSite, via: str = "") -> None:
        if held == acquired:
            return  # re-entrant/same-level acquisition is not an order
        pair = (held, acquired)
        if pair not in edges:
            edges[pair] = _Edge(
                module=facts.module, display_path=facts.display_path,
                function=site.function, lineno=site.lineno,
                col=site.col, via=via)

    for key in sorted(acquires):
        facts = graph.modules[key[0]]
        for site in acquires[key]:
            for held in site.held:
                add_edge(_qualify(key[0], held),
                         _qualify(key[0], site.name), facts, site)

    closures: Dict[FunctionKey, Dict[FunctionKey, FunctionKey]] = {}
    for facts, site, target in held_calls:
        if target not in closures:
            closures[target] = graph.reachable_from([target])
        for reached in sorted(closures[target]):
            for acquired in acquires.get(reached, ()):
                far = graph.modules[reached[0]]
                via = (f"`{acquired.name}` acquired at "
                       f"{far.display_path}:{acquired.lineno} in "
                       f"`{acquired.function}`")
                for held in site.held:
                    add_edge(_qualify(facts.module, held),
                             _qualify(reached[0], acquired.name),
                             facts, site, via=via)

    adjacency: Dict[str, Set[str]] = {}
    for held, acquired in edges:
        adjacency.setdefault(held, set()).add(acquired)

    violations: List[Violation] = []
    for (held, acquired) in sorted(edges):
        edge = edges[(held, acquired)]
        back = _find_path(adjacency, acquired, held)
        if back is None:
            continue
        facts = graph.modules.get(edge.module)
        if facts is not None and facts.is_suppressed(edge.lineno,
                                                     "RA801"):
            continue
        reverse = edges.get((acquired, held))
        if reverse is not None:
            opposite = (f"the opposite order is taken at "
                        f"{reverse.display_path}:{reverse.lineno} in "
                        f"`{reverse.function}`"
                        + (f" ({reverse.via})" if reverse.via else ""))
        else:
            chain = " -> ".join(_short(node) for node in back)
            opposite = (f"the cycle closes through {chain} -> "
                        f"{_short(held)}")
        where = (f" ({edge.via})" if edge.via else "")
        violations.append(Violation(
            path=edge.display_path, line=edge.lineno, col=edge.col,
            code="RA801",
            message=(f"lock-order cycle: `{_short(acquired)}` is "
                     f"acquired while `{_short(held)}` is held in "
                     f"`{edge.function}`{where}, but {opposite}; pick "
                     "one global acquisition order for these locks")))
    return violations


def _check_blocking(
        graph: ProjectGraph,
        blocking: Mapping[FunctionKey, Sequence[LifeSite]],
        held_calls: Sequence[Tuple[ModuleFacts, LifeSite, FunctionKey]],
) -> List[Violation]:
    """RA802: blocking calls executed while a lock is held."""
    violations: List[Violation] = []
    reported: Set[Tuple[str, int, str]] = set()

    for key in sorted(blocking):
        facts = graph.modules[key[0]]
        for site in blocking[key]:
            if not site.held:
                continue
            if facts.is_suppressed(site.lineno, "RA802"):
                continue
            marker = (facts.display_path, site.lineno, site.held[-1])
            if marker in reported:
                continue
            reported.add(marker)
            violations.append(Violation(
                path=facts.display_path, line=site.lineno,
                col=site.col, code="RA802",
                message=(f"blocking {site.name} inside `with "
                         f"{site.held[-1]}:` in `{site.function}` can "
                         "stall every thread contending for the lock; "
                         "move it outside the critical section or "
                         "bound it with `timeout=`")))

    closures: Dict[FunctionKey, Dict[FunctionKey, FunctionKey]] = {}
    for facts, call_site, target in held_calls:
        if target not in closures:
            closures[target] = graph.reachable_from([target])
        for reached in sorted(closures[target]):
            # `_locked`-suffixed helpers document deliberate
            # under-lock work (the RA502 convention): exempt
            if reached[1].split(".")[-1].endswith("_locked"):
                continue
            far = graph.modules[reached[0]]
            for site in blocking.get(reached, ()):
                if site.held:
                    continue  # already reported directly above
                if far.is_suppressed(site.lineno, "RA802"):
                    continue
                lock = call_site.held[-1]
                marker = (far.display_path, site.lineno, lock)
                if marker in reported:
                    continue
                reported.add(marker)
                violations.append(Violation(
                    path=far.display_path, line=site.lineno,
                    col=site.col, code="RA802",
                    message=(f"blocking {site.name} in "
                             f"`{site.function}` runs while `{lock}` "
                             "is held (called via "
                             f"{facts.display_path}:{call_site.lineno} "
                             f"in `{call_site.function}`); move it off "
                             "the locked path, bound it with "
                             "`timeout=`, or suffix the helper "
                             "`_locked` if holding the lock here is "
                             "deliberate")))
    return violations


def _scope_for(site: LifeSite) -> str:
    """Grouping scope for a thread receiver: the class for ``self.X``
    (constructed in ``__init__``, reaped in ``stop``), the function
    for locals."""
    if site.name.startswith("self.") and "." in site.function:
        return site.function.split(".")[0]
    return site.function


def _check_thread_lifecycle(
        graph: ProjectGraph,
        sites_by_module: Mapping[str, Sequence[LifeSite]],
) -> List[Violation]:
    """RA803: started-but-never-reaped and unbounded shutdown joins."""
    violations: List[Violation] = []
    for module_name in sorted(sites_by_module):
        facts = graph.modules.get(module_name)
        if facts is None:
            continue
        ctors: Dict[Tuple[str, str], LifeSite] = {}
        starts: Dict[Tuple[str, str], LifeSite] = {}
        reaped: Set[Tuple[str, str]] = set()
        bare_joins: List[LifeSite] = []
        for site in sites_by_module[module_name]:
            group = (_scope_for(site), site.name)
            if site.kind == "ctor":
                ctors.setdefault(group, site)
            elif site.kind == "start":
                starts.setdefault(group, site)
            elif site.kind == "reap":
                reaped.add(group)
            elif site.kind == "join-bare":
                bare_joins.append(site)
        for group in sorted(starts):
            ctor = ctors.get(group)
            if ctor is None or group in reaped:
                continue
            start = starts[group]
            if facts.is_suppressed(start.lineno, "RA803"):
                continue
            scope, receiver = group
            violations.append(Violation(
                path=facts.display_path, line=start.lineno,
                col=start.col, code="RA803",
                message=(f"`{receiver}` ({ctor.detail}) is started but "
                         f"never joined, terminated, or killed in "
                         f"`{scope}`; reap it on the shutdown path so "
                         "exits cannot leak a live "
                         f"{ctor.detail.lower()}")))
        for site in bare_joins:
            terminal = site.function.split(".")[-1]
            if terminal not in _SHUTDOWN_NAMES:
                continue
            group = (_scope_for(site), site.name)
            threadish = group in ctors or any(
                fragment in site.name.lower()
                for fragment in _THREADISH_FRAGMENTS)
            if not threadish:
                continue
            if facts.is_suppressed(site.lineno, "RA803"):
                continue
            violations.append(Violation(
                path=facts.display_path, line=site.lineno,
                col=site.col, code="RA803",
                message=(f"`{site.name}.join()` without `timeout=` on "
                         f"shutdown path `{site.function}` hangs "
                         "forever if the worker is wedged; join with "
                         "a timeout and escalate (terminate/kill, "
                         "then surface the stuck worker as an "
                         "error)")))
    return violations


def _check_resources(
        graph: ProjectGraph,
        sites_by_module: Mapping[str, Sequence[LifeSite]],
) -> List[Violation]:
    """RA805: resources that never escape and are never closed."""
    violations: List[Violation] = []
    for module_name in sorted(sites_by_module):
        facts = graph.modules.get(module_name)
        if facts is None:
            continue
        for site in sites_by_module[module_name]:
            if site.kind != "resource":
                continue
            if facts.is_suppressed(site.lineno, "RA805"):
                continue
            violations.append(Violation(
                path=facts.display_path, line=site.lineno,
                col=site.col, code="RA805",
                message=(f"`{site.detail}(...)` result `{site.name}` "
                         f"is never closed in `{site.function}` and "
                         "never leaves it; close it on every path or "
                         "use a `with` block")))
    return violations


def check_lifecycle(
        graph: ProjectGraph,
        sites_by_module: Mapping[str, Sequence[LifeSite]],
) -> List[Violation]:
    """Run RA801/RA802/RA803/RA805 over the linked project graph."""
    acquires, blocking, held_calls = _index_sites(graph, sites_by_module)
    violations = _check_lock_order(graph, acquires, held_calls)
    violations.extend(_check_blocking(graph, blocking, held_calls))
    violations.extend(_check_thread_lifecycle(graph, sites_by_module))
    violations.extend(_check_resources(graph, sites_by_module))
    return violations


__all__: Tuple[str, ...] = ("LifeSite", "extract_life_sites",
                            "check_lifecycle")
