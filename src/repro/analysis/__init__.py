"""Repo-specific static analysis: the determinism & parallel-safety gate.

``repro lint`` (see :mod:`repro.analysis.cli`) walks the tree with
custom AST checkers enforcing the invariants the reproduction's
correctness rests on — explicitly-seeded RNG everywhere, picklable
symbols across process-pool boundaries, no wall-clock reads on the
hot path, no mutable default arguments.  ``repro lint --project``
(see :mod:`repro.analysis.project`) adds whole-program rules on top:
a call-graph race detector (RA501), a lock-discipline checker
(RA502), the architecture-layer contract (RA601), the
determinism/numeric-safety dataflow rules RA700–RA704 (see
:mod:`repro.analysis.dataflow`) driven by the
``[tool.repro.determinism]`` contract table, and the
concurrency-lifecycle & durability wave RA800–RA805 (see
:mod:`repro.analysis.lifecycle` and
:mod:`repro.analysis.durability`) — lock-order deadlocks, blocking
calls under a lock, leaked threads/processes, and durable artifacts
(``[tool.repro.durability]``) written without tmp+fsync+rename — with
per-file results cached incrementally by content hash.  ``repro lint
--fix`` applies the safe RA7xx rewrites (see
:mod:`repro.analysis.fixer`).  Rules are documented in
``docs/static-analysis.md`` and suppressed inline with
``# repro: noqa[RAxxx]``.
"""

from .base import (DEFAULT_HOT_PACKAGES, FIXABLE_RULES, LINT_VERSION,
                   PROJECT_RULES, RULES, Checker, ImportMap,
                   ModuleContext, Violation, apply_suppressions,
                   checker_classes, ruleset_fingerprint,
                   suppressed_lines)
from .dataflow import (DeterminismConfig, DeterminismConfigError,
                       DetSite, check_determinism, extract_det_sites,
                       find_determinism_config, read_determinism_table)
from .durability import (DurabilityConfig, DurabilityConfigError,
                         DuraSite, check_durability, extract_dura_sites,
                         find_durability_config, read_durability_table)
from .engine import (AnalysisReport, analyze_paths, analyze_source,
                     iter_python_files)
from .lifecycle import LifeSite, check_lifecycle, extract_life_sites
from .fixer import Fix, apply_fixes, fix_for_site, render_diffs
from .project import analyze_project

__all__ = [
    "DEFAULT_HOT_PACKAGES",
    "FIXABLE_RULES",
    "LINT_VERSION",
    "PROJECT_RULES",
    "RULES",
    "Checker",
    "ImportMap",
    "ModuleContext",
    "Violation",
    "apply_suppressions",
    "checker_classes",
    "ruleset_fingerprint",
    "suppressed_lines",
    "DeterminismConfig",
    "DeterminismConfigError",
    "DetSite",
    "check_determinism",
    "extract_det_sites",
    "find_determinism_config",
    "read_determinism_table",
    "DurabilityConfig",
    "DurabilityConfigError",
    "DuraSite",
    "check_durability",
    "extract_dura_sites",
    "find_durability_config",
    "read_durability_table",
    "LifeSite",
    "check_lifecycle",
    "extract_life_sites",
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "analyze_project",
    "iter_python_files",
    "Fix",
    "apply_fixes",
    "fix_for_site",
    "render_diffs",
]
