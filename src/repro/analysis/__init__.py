"""Repo-specific static analysis: the determinism & parallel-safety gate.

``repro lint`` (see :mod:`repro.analysis.cli`) walks the tree with
custom AST checkers enforcing the invariants the reproduction's
correctness rests on — explicitly-seeded RNG everywhere, picklable
symbols across process-pool boundaries, no wall-clock reads on the
hot path, no mutable default arguments.  ``repro lint --project``
(see :mod:`repro.analysis.project`) adds whole-program rules on top:
a call-graph race detector (RA501), a lock-discipline checker
(RA502), and the architecture-layer contract (RA601), with per-file
results cached incrementally by content hash.  Rules are documented
in ``docs/static-analysis.md`` and suppressed inline with
``# repro: noqa[RAxxx]``.
"""

from .base import (DEFAULT_HOT_PACKAGES, PROJECT_RULES, RULES, Checker,
                   ImportMap, ModuleContext, Violation,
                   apply_suppressions, checker_classes, suppressed_lines)
from .engine import (AnalysisReport, analyze_paths, analyze_source,
                     iter_python_files)
from .project import analyze_project

__all__ = [
    "DEFAULT_HOT_PACKAGES",
    "PROJECT_RULES",
    "RULES",
    "Checker",
    "ImportMap",
    "ModuleContext",
    "Violation",
    "apply_suppressions",
    "checker_classes",
    "suppressed_lines",
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "analyze_project",
    "iter_python_files",
]
