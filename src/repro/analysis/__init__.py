"""Repo-specific static analysis: the determinism & parallel-safety gate.

``repro lint`` (see :mod:`repro.analysis.cli`) walks the tree with
custom AST checkers enforcing the invariants the reproduction's
correctness rests on — explicitly-seeded RNG everywhere, picklable
symbols across process-pool boundaries, no wall-clock reads on the
hot path, no mutable default arguments.  Rules are documented in
``docs/static-analysis.md`` and suppressed inline with
``# repro: noqa[RAxxx]``.
"""

from .base import (DEFAULT_HOT_PACKAGES, RULES, Checker, ImportMap,
                   ModuleContext, Violation, apply_suppressions,
                   checker_classes, suppressed_lines)
from .engine import (AnalysisReport, analyze_paths, analyze_source,
                     iter_python_files)

__all__ = [
    "DEFAULT_HOT_PACKAGES",
    "RULES",
    "Checker",
    "ImportMap",
    "ModuleContext",
    "Violation",
    "apply_suppressions",
    "checker_classes",
    "suppressed_lines",
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]
