"""RA601: the architecture-layer contract.

``docs/architecture.md`` draws the package layer map ("arrows point
down"); this module makes that diagram executable.  The allowed import
edges live in a ``[tool.repro.layers]`` table in ``pyproject.toml``::

    [tool.repro.layers]
    root = "repro"
    util = []
    topology = ["util"]
    core = ["pipeline", "topology", "obs", "util"]

Each key is a *layer* — the first dotted component under the root
package — and its value lists the layers its modules may import at
module scope.  ``"*"`` permits everything (used for the package root's
own modules and for glue layers like ``experiments``).  The table must
itself form a DAG; a cyclic table would make the contract vacuous, so
:func:`load_layer_config` rejects it with :class:`LayerConfigError`.

Two import forms are deliberately exempt, because they are the
sanctioned cycle-breaking idioms used throughout the tree:

* imports under ``if TYPE_CHECKING:`` (annotations only, no runtime
  edge), and
* function-scope (lazy) imports.

The checker therefore only sees the *runtime module-scope* edges that
:mod:`callgraph` recorded in ``ModuleFacts.internal_imports``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from .base import Violation

if TYPE_CHECKING:
    from .callgraph import ModuleFacts

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on py3.9 CI
    tomllib = None  # type: ignore[assignment]

_DEFAULT_ROOT = "repro"


class LayerConfigError(ValueError):
    """The ``[tool.repro.layers]`` table is malformed or cyclic."""


@dataclass(frozen=True)
class LayerConfig:
    """A validated layer map: layer -> layers it may import."""

    root: str
    allowed: Mapping[str, Tuple[str, ...]]
    source: str = "<memory>"

    def layer_of(self, module: str) -> Optional[str]:
        """Layer a dotted module belongs to, or None if outside root.

        ``repro.core.service`` -> ``core``; ``repro`` itself and
        top-level modules like ``repro.cli`` map to the root layer
        (named after the root package).  A module inside an
        *undeclared* subpackage keeps that subpackage's name, so
        :func:`check_layers` can flag it — adding a package without
        extending the layer table is itself a contract violation.
        """
        parts = module.split(".")
        if parts[0] != self.root:
            return None
        if len(parts) == 1:
            return self.root
        candidate = parts[1]
        if candidate in self.allowed:
            return candidate
        if len(parts) == 2:
            return self.root  # a top-level module file, not a package
        return candidate

    def permits(self, importer_layer: str, target_layer: str) -> bool:
        if importer_layer == target_layer:
            return True
        allowed = self.allowed.get(importer_layer)
        if allowed is None:
            return False
        return "*" in allowed or target_layer in allowed


def _validate(root: str, allowed: Dict[str, Tuple[str, ...]],
              source: str) -> LayerConfig:
    known = set(allowed) | {root}
    for layer, targets in allowed.items():
        for target in targets:
            if target == "*":
                continue
            if target not in known:
                raise LayerConfigError(
                    f"{source}: layer {layer!r} allows unknown layer "
                    f"{target!r} (declare it, even as an empty list)")
    # the table must be a DAG, ignoring "*" wildcard layers (a wildcard
    # layer sits at the top and cannot create a meaningful cycle below)
    edges: Dict[str, List[str]] = {
        layer: [t for t in targets if t != "*" and t != layer]
        for layer, targets in allowed.items() if "*" not in targets}
    state: Dict[str, int] = {}

    def visit(node: str, trail: List[str]) -> None:
        mark = state.get(node, 0)
        if mark == 1:
            cycle = " -> ".join(trail[trail.index(node):] + [node])
            raise LayerConfigError(
                f"{source}: [tool.repro.layers] is cyclic ({cycle}); "
                "a cyclic layer map cannot express an architecture")
        if mark == 2:
            return
        state[node] = 1
        for target in edges.get(node, ()):
            visit(target, trail + [node])
        state[node] = 2

    for layer in edges:
        visit(layer, [])
    return LayerConfig(root=root, allowed=dict(allowed), source=source)


def _layers_from_mapping(raw: Mapping[str, object],
                         source: str) -> LayerConfig:
    root = _DEFAULT_ROOT
    allowed: Dict[str, Tuple[str, ...]] = {}
    for key, value in raw.items():
        if key == "root":
            if not isinstance(value, str) or not value:
                raise LayerConfigError(
                    f"{source}: [tool.repro.layers] `root` must be a "
                    "non-empty string")
            root = value
            continue
        if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, str) for item in value):
            raise LayerConfigError(
                f"{source}: layer {key!r} must map to a list of layer "
                "names")
        allowed[key] = tuple(value)
    if not allowed:
        raise LayerConfigError(
            f"{source}: [tool.repro.layers] declares no layers")
    return _validate(root, allowed, source)


# -- minimal TOML fallback ----------------------------------------------------
#
# tomllib is 3.11+; the CI matrix still runs 3.9.  The layers table only
# uses `key = "str"` and `key = ["a", "b"]` forms, so a tiny line-based
# reader suffices there.  On 3.11+ the real tomllib is always used.

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KV_RE = re.compile(r"^(?P<key>[A-Za-z0-9_.\-\"']+)\s*=\s*(?P<value>.+)$")


def _parse_toml_value(text: str, source: str) -> object:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(part, source)
                for part in _split_toml_list(inner)]
    if (text.startswith('"') and text.endswith('"')) or (
            text.startswith("'") and text.endswith("'")):
        return text[1:-1]
    raise LayerConfigError(
        f"{source}: unsupported TOML value {text!r} in "
        "[tool.repro.layers] (fallback parser handles strings and "
        "string lists only)")


def _split_toml_list(inner: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    quote = ""
    current = ""
    for char in inner:
        if quote:
            current += char
            if char == quote:
                quote = ""
            continue
        if char in "\"'":
            quote = char
            current += char
        elif char == "[":
            depth += 1
            current += char
        elif char == "]":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current)
    return parts


def _strip_toml_comment(line: str) -> str:
    out: List[str] = []
    quote = ""
    for char in line:
        if quote:
            out.append(char)
            if char == quote:
                quote = ""
        elif char in "\"'":
            quote = char
            out.append(char)
        elif char == "#":
            break
        else:
            out.append(char)
    return "".join(out).rstrip()


def _fallback_read_table(text: str, source: str,
                         section_name: str) -> Optional[Mapping[str, object]]:
    """Read one ``[section_name]`` table with the line-based fallback.

    Shared by the layers and determinism config loaders on py<3.11;
    handles ``key = "str"`` / ``key = ["a", "b"]`` forms only.
    """
    table: Dict[str, object] = {}
    in_section = False
    found = False
    buffer = ""
    for raw_line in text.splitlines():
        line = _strip_toml_comment(raw_line)
        if not line.strip():
            continue
        section = _SECTION_RE.match(line.strip())
        if section and not buffer:
            in_section = section.group("name").strip() == section_name
            found = found or in_section
            continue
        if not in_section:
            continue
        buffer = f"{buffer} {line.strip()}" if buffer else line.strip()
        # multi-line arrays: keep buffering until brackets balance
        if buffer.count("[") > buffer.count("]") or buffer.endswith(","):
            continue
        match = _KV_RE.match(buffer)
        buffer = ""
        if not match:
            continue
        key = match.group("key").strip("\"'")
        table[key] = _parse_toml_value(match.group("value"), source)
    return table if found else None


def _fallback_read_layers(text: str,
                          source: str) -> Optional[Mapping[str, object]]:
    return _fallback_read_table(text, source, "tool.repro.layers")


def read_layers_table(pyproject: Path) -> Optional[LayerConfig]:
    """Load and validate ``[tool.repro.layers]`` from a pyproject file.

    Returns None when the file has no such table; raises
    :class:`LayerConfigError` when the table exists but is invalid.
    """
    source = str(pyproject)
    text = pyproject.read_text(encoding="utf-8")
    raw: Optional[Mapping[str, object]]
    if tomllib is not None:
        data = tomllib.loads(text)
        tool = data.get("tool", {})
        repro = tool.get("repro", {}) if isinstance(tool, dict) else {}
        layers = repro.get("layers") if isinstance(repro, dict) else None
        raw = layers if isinstance(layers, dict) else None
    else:  # pragma: no cover - py<3.11 only
        raw = _fallback_read_layers(text, source)
    if raw is None:
        return None
    return _layers_from_mapping(raw, source)


def find_layer_config(start: Path) -> Optional[LayerConfig]:
    """Walk up from ``start`` to the nearest pyproject layer table."""
    cursor = start.resolve()
    if cursor.is_file():
        cursor = cursor.parent
    while True:
        candidate = cursor / "pyproject.toml"
        if candidate.is_file():
            config = read_layers_table(candidate)
            if config is not None:
                return config
        parent = cursor.parent
        if parent == cursor:
            return None
        cursor = parent


# -- the RA601 check ----------------------------------------------------------

def check_layers(modules: Sequence["ModuleFacts"],
                 config: LayerConfig) -> List[Violation]:
    """RA601 violations for every module-scope up-layer import."""
    violations: List[Violation] = []
    declared = set(config.allowed) | {config.root}
    for facts in modules:
        importer_layer = config.layer_of(facts.module)
        if importer_layer is None:
            continue
        for imp in facts.internal_imports:
            target_layer = config.layer_of(imp.target)
            if target_layer is None:
                continue
            if config.permits(importer_layer, target_layer):
                continue
            if importer_layer not in declared:
                detail = (f"layer {importer_layer!r} is not declared in "
                          f"[tool.repro.layers]")
            else:
                detail = (f"[tool.repro.layers] does not allow "
                          f"{importer_layer!r} -> {target_layer!r}")
            violation = Violation(
                path=facts.display_path,
                line=imp.lineno,
                col=imp.col,
                code="RA601",
                message=(f"module-scope import of `{imp.target}` "
                         f"crosses the layer map: {detail}; use a "
                         "TYPE_CHECKING or function-scope import if "
                         "this edge is a sanctioned cycle-break"),
            )
            if not facts.is_suppressed(imp.lineno, "RA601"):
                violations.append(violation)
    return violations
