"""Topology substrate: geography, AS graph, and the cloud WAN.

The bottom layer of the world model (``docs/architecture.md``): metros
with real coordinates and haversine distances, an AS-level Internet
graph with customer/provider/peer edges, and the cloud WAN itself —
edge sites, peering links, capacities.  Everything above (BGP
propagation, traffic, telemetry) is built on these objects; nothing
here depends on any other ``repro`` package except ``util``.
"""

from .geography import EARTH_RADIUS_KM, Metro, MetroCatalog, WORLD_METROS, haversine_km
from .relationships import ASLink, LOCAL_PREF, Relationship, exportable, is_valley_free
from .asgraph import ASGraph, ASNode, ASRole, Pocket, TopologyParams, generate_as_graph
from .wan import (
    CloudWAN,
    DEFAULT_SERVICES,
    DestPrefix,
    PeeringLink,
    Region,
    WANParams,
    generate_wan,
)

__all__ = [
    "EARTH_RADIUS_KM", "Metro", "MetroCatalog", "WORLD_METROS", "haversine_km",
    "ASLink", "LOCAL_PREF", "Relationship", "exportable", "is_valley_free",
    "ASGraph", "ASNode", "ASRole", "Pocket", "TopologyParams", "generate_as_graph",
    "CloudWAN", "DEFAULT_SERVICES", "DestPrefix", "PeeringLink", "Region",
    "WANParams", "generate_wan",
]
