"""The cloud WAN: edge routers, peering links, regions, services, prefixes.

This is the network whose ingress TIPSY predicts.  A peering link is
modelled at the granularity of an individual eBGP session (paper §3.1): a
(peer AS, metro, router, session index) tuple with a capacity.  The WAN
advertises a set of anycast destination prefixes on (by default) all links;
each destination prefix maps to a cloud region and a service type — the two
destination features of §3.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .asgraph import ASGraph
from .geography import MetroCatalog

#: Default catalogue of cloud service types (paper: ~200; scaled down).
DEFAULT_SERVICES: Tuple[str, ...] = (
    "storage", "web", "conferencing", "email", "ai-training", "video-analytics",
    "vpn-gateway", "cdn-origin", "database", "gaming", "iot-hub", "backup",
    "search", "auth", "queueing", "monitoring", "code-hosting", "virtual-desktop",
    "media-upload", "dns", "cache", "batch", "speech", "maps",
)


@dataclass(frozen=True)
class PeeringLink:
    """A single eBGP peering session between the WAN and a neighbor AS."""

    link_id: int
    peer_asn: int
    metro: str
    router: str
    capacity_gbps: float
    kind: str = "direct"  # "direct" | "ixp"

    @property
    def name(self) -> str:
        return f"{self.router}|AS{self.peer_asn}|{self.link_id}"


@dataclass(frozen=True)
class Region:
    """A cloud region (destination geography feature)."""

    name: str
    metro: str


@dataclass(frozen=True)
class DestPrefix:
    """An anycast destination prefix advertised by the WAN.

    Each prefix hosts one service type in one region; flows to it carry the
    (destination region, destination type) features of paper §3.2.
    """

    prefix_id: int
    cidr: str
    region: str
    service: str


class CloudWAN:
    """The cloud provider's WAN: its peering surface and destinations."""

    def __init__(
        self,
        asn: int,
        links: Sequence[PeeringLink],
        regions: Sequence[Region],
        dest_prefixes: Sequence[DestPrefix],
        metros: MetroCatalog,
    ):
        if not links:
            raise ValueError("a WAN needs at least one peering link")
        self.asn = asn
        self.metros = metros
        self.links: Tuple[PeeringLink, ...] = tuple(links)
        self.regions: Tuple[Region, ...] = tuple(regions)
        self.dest_prefixes: Tuple[DestPrefix, ...] = tuple(dest_prefixes)

        self._link_by_id: Dict[int, PeeringLink] = {}
        self._links_by_peer: Dict[int, List[PeeringLink]] = {}
        for link in self.links:
            if link.link_id in self._link_by_id:
                raise ValueError(f"duplicate link id {link.link_id}")
            self._link_by_id[link.link_id] = link
            self._links_by_peer.setdefault(link.peer_asn, []).append(link)
        self._region_by_name = {r.name: r for r in self.regions}
        self._prefix_by_id = {p.prefix_id: p for p in self.dest_prefixes}

    # -- lookups ----------------------------------------------------------

    def link(self, link_id: int) -> PeeringLink:
        return self._link_by_id[link_id]

    def has_link(self, link_id: int) -> bool:
        return link_id in self._link_by_id

    def links_of_peer(self, peer_asn: int) -> Tuple[PeeringLink, ...]:
        return tuple(self._links_by_peer.get(peer_asn, ()))

    @property
    def peer_asns(self) -> Tuple[int, ...]:
        return tuple(sorted(self._links_by_peer))

    @property
    def link_ids(self) -> Tuple[int, ...]:
        return tuple(self._link_by_id)

    def region(self, name: str) -> Region:
        return self._region_by_name[name]

    def dest_prefix(self, prefix_id: int) -> DestPrefix:
        return self._prefix_by_id[prefix_id]

    def link_distance_km(self, a: int, b: int) -> float:
        """Geographic distance between two peering links, by link id."""
        la, lb = self._link_by_id[a], self._link_by_id[b]
        return self.metros.distance_km(la.metro, lb.metro)

    def services(self) -> Tuple[str, ...]:
        return tuple(sorted({p.service for p in self.dest_prefixes}))

    def summary(self) -> Dict[str, int]:
        """Headline counts, useful in logs and docs."""
        return {
            "links": len(self.links),
            "peers": len(self._links_by_peer),
            "metros": len({l.metro for l in self.links}),
            "regions": len(self.regions),
            "dest_prefixes": len(self.dest_prefixes),
        }


@dataclass
class WANParams:
    """Knobs for generating the WAN's peering surface and destinations."""

    asn: int = 8075
    # fraction of world metros where the WAN has edge routers
    edge_metro_fraction: float = 0.85
    n_regions: int = 16
    services: Tuple[str, ...] = DEFAULT_SERVICES
    # how many (region, service) pairs get a destination prefix
    n_dest_prefixes: int = 96
    # probability of peering with each AS role
    peer_prob: Dict[str, float] = field(default_factory=lambda: {
        "tier1": 1.0, "transit": 0.75, "cdn": 1.0, "access": 0.3, "stub": 0.04,
    })
    # (min, max) peering metros per role
    peer_metros: Dict[str, Tuple[int, int]] = field(default_factory=lambda: {
        "tier1": (8, 14), "transit": (2, 6), "cdn": (6, 12),
        "access": (1, 2), "stub": (1, 1),
    })
    # (min, max) parallel sessions per (peer, metro)
    links_per_metro: Dict[str, Tuple[int, int]] = field(default_factory=lambda: {
        "tier1": (1, 3), "transit": (1, 2), "cdn": (1, 3),
        "access": (1, 1), "stub": (1, 1),
    })
    capacity_choices: Dict[str, Tuple[float, ...]] = field(default_factory=lambda: {
        "tier1": (100.0, 400.0), "transit": (40.0, 100.0, 400.0),
        "cdn": (100.0, 400.0), "access": (10.0, 20.0, 40.0), "stub": (10.0, 20.0),
    })


def generate_wan(
    graph: ASGraph,
    params: Optional[WANParams] = None,
    seed: int = 0,
) -> CloudWAN:
    """Generate the cloud WAN's peering surface over an AS graph.

    Peering is constrained to metros in the peer's footprint where the WAN
    has edge presence, so hot-potato geography is physically coherent.
    """
    params = params or WANParams()
    rng = random.Random(seed ^ 0x5A17)
    metros = graph.metros
    all_metros = list(metros.names)
    n_edge = max(4, int(len(all_metros) * params.edge_metro_fraction))
    edge_metros = sorted(rng.sample(all_metros, k=n_edge))
    edge_set = set(edge_metros)

    links: List[PeeringLink] = []
    link_id = 0
    router_session_count: Dict[str, int] = {}

    for node in sorted(graph.nodes(), key=lambda n: n.asn):
        role = node.role.value
        if rng.random() >= params.peer_prob.get(role, 0.0):
            continue
        candidate_metros = sorted(set(node.footprint) & edge_set)
        if not candidate_metros:
            continue
        lo, hi = params.peer_metros[role]
        n_metros = min(len(candidate_metros), rng.randint(lo, hi))
        chosen = rng.sample(candidate_metros, k=n_metros)
        for metro in sorted(chosen):
            llo, lhi = params.links_per_metro[role]
            n_links = rng.randint(llo, lhi)
            for _ in range(n_links):
                router_idx = rng.randint(1, 3)
                router = f"{metro}-er{router_idx}"
                router_session_count[router] = router_session_count.get(router, 0) + 1
                capacity = rng.choice(params.capacity_choices[role])
                kind = "ixp" if (role in ("access", "stub") and rng.random() < 0.2) else "direct"
                links.append(PeeringLink(
                    link_id=link_id, peer_asn=node.asn, metro=metro,
                    router=router, capacity_gbps=capacity, kind=kind,
                ))
                link_id += 1

    # cloud regions anchored at edge metros
    region_metros = rng.sample(edge_metros, k=min(params.n_regions, len(edge_metros)))
    regions = [Region(name=f"{m}-region", metro=m) for m in sorted(region_metros)]

    # destination prefixes: spread (region, service) combinations
    dest_prefixes: List[DestPrefix] = []
    for i in range(params.n_dest_prefixes):
        region = regions[i % len(regions)]
        service = params.services[rng.randrange(len(params.services))]
        cidr = f"100.{64 + i // 256}.{i % 256}.0/24"
        dest_prefixes.append(DestPrefix(i, cidr, region.name, service))

    return CloudWAN(params.asn, links, regions, dest_prefixes, metros)
