"""Synthetic AS-level Internet topology.

Generates an AS graph with Gao-Rexford business relationships, geographic
footprints, and the structural quirks the paper calls out as the reason
ingress prediction is hard (§2):

* a flattening Internet where most bytes originate at ASes 1-3 hops away
  (Figure 2),
* large direct peers that *spray* traffic over many peering links, partly
  because of isolated "pockets" of their network that can only reach the
  WAN over public transit (Figure 3),
* opaque per-AS policy biases that the predictor can never observe.

The generated graph is the ground-truth world; TIPSY only ever sees the
telemetry derived from it.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from .geography import MetroCatalog
from .relationships import Relationship


class ASRole(enum.Enum):
    """Coarse role of an AS in the synthetic Internet."""

    TIER1 = "tier1"      # global transit, full-mesh peering at the top
    TRANSIT = "transit"  # continental / national transit provider
    ACCESS = "access"    # regional access / eyeball ISP
    CDN = "cdn"          # large content network, possibly with pockets
    STUB = "stub"        # enterprise or small eyeball, no customers


@dataclass(frozen=True)
class Pocket:
    """A connectivity island within an AS (paper §2).

    Traffic originating in a pocket can only leave the AS through exits
    inside the pocket's metros, or through the pocket's own transit
    providers.  This models CDNs without a global backbone and large ASes
    whose routing policy avoids private long-haul links.
    """

    metros: FrozenSet[str]
    providers: Tuple[int, ...]


@dataclass
class ASNode:
    """An autonomous system in the synthetic topology.

    Attributes:
        asn: AS number.
        role: coarse role (tier-1, transit, access, CDN, stub).
        footprint: metros where the AS has network presence.
        pockets: connectivity islands; empty means a single global backbone
            spanning the whole footprint.
        policy_bias: opaque per-AS tie-break bias added to provider route
            ranking — stands in for the confidential routing policies that
            make prediction non-deterministic.
    """

    asn: int
    role: ASRole
    footprint: Tuple[str, ...]
    pockets: Tuple[Pocket, ...] = ()
    policy_bias: float = 0.0

    def pocket_for(self, metro: str) -> Optional[Pocket]:
        """The pocket containing ``metro``, or None if not pocketed there."""
        for pocket in self.pockets:
            if metro in pocket.metros:
                return pocket
        return None


class ASGraph:
    """An AS-level topology: nodes, relationship-annotated adjacencies.

    Adjacencies are stored from each endpoint's point of view:
    ``self.relationship(a, b)`` is what ``b`` is *to* ``a``.
    """

    def __init__(self, metros: MetroCatalog):
        self.metros = metros
        self._nodes: Dict[int, ASNode] = {}
        self._adj: Dict[int, Dict[int, Relationship]] = {}
        self._version = 0
        self._dense: Optional["DenseTopology"] = None
        self._dense_version = -1

    # -- construction -----------------------------------------------------

    def add_as(self, node: ASNode) -> None:
        if node.asn in self._nodes:
            raise ValueError(f"AS{node.asn} already present")
        for metro in node.footprint:
            if metro not in self.metros:
                raise ValueError(f"AS{node.asn} footprint metro {metro!r} unknown")
        self._nodes[node.asn] = node
        self._adj[node.asn] = {}
        self._version += 1

    def add_link(self, a: int, b: int, rel_of_b: Relationship) -> None:
        """Add an adjacency; ``rel_of_b`` is what ``b`` is to ``a``."""
        if a == b:
            raise ValueError("self-loops are not allowed")
        for asn in (a, b):
            if asn not in self._nodes:
                raise KeyError(f"AS{asn} not in graph")
        if b in self._adj[a]:
            raise ValueError(f"link AS{a}-AS{b} already present")
        self._adj[a][b] = rel_of_b
        self._adj[b][a] = rel_of_b.invert()
        self._version += 1

    # -- queries ----------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def asns(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    def node(self, asn: int) -> ASNode:
        return self._nodes[asn]

    def nodes(self) -> Iterable[ASNode]:
        return self._nodes.values()

    def neighbors(self, asn: int) -> Tuple[int, ...]:
        return tuple(self._adj[asn])

    def relationship(self, a: int, b: int) -> Relationship:
        """What ``b`` is to ``a``. Raises ``KeyError`` if not adjacent."""
        return self._adj[a][b]

    def providers(self, asn: int) -> Tuple[int, ...]:
        return tuple(n for n, rel in self._adj[asn].items() if rel is Relationship.PROVIDER)

    def customers(self, asn: int) -> Tuple[int, ...]:
        return tuple(n for n, rel in self._adj[asn].items() if rel is Relationship.CUSTOMER)

    def peers(self, asn: int) -> Tuple[int, ...]:
        return tuple(n for n, rel in self._adj[asn].items() if rel is Relationship.PEER)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (cache layers)."""
        return self._version

    def dense(self) -> "DenseTopology":
        """Columnar CSR view of the graph (cached until mutated).

        The view assigns every AS a dense row index in insertion order;
        routing tables and other columnar consumers share it so their
        arrays stay aligned across derived states.
        """
        if self._dense is None or self._dense_version != self._version:
            self._dense = DenseTopology(self)
            self._dense_version = self._version
        return self._dense

    def to_networkx(self) -> nx.Graph:
        """Export to an undirected networkx graph (for analysis/plots)."""
        graph = nx.Graph()
        for node in self._nodes.values():
            graph.add_node(node.asn, role=node.role.value, footprint=node.footprint)
        seen = set()
        for a, nbrs in self._adj.items():
            for b, rel in nbrs.items():
                key = (min(a, b), max(a, b))
                if key in seen:
                    continue
                seen.add(key)
                graph.add_edge(a, b, relationship=self._adj[key[0]][key[1]].value)
        return graph

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for asn, node in self._nodes.items():
            if not node.footprint:
                raise ValueError(f"AS{asn} has empty footprint")
            for pocket in node.pockets:
                if not pocket.metros <= set(node.footprint):
                    raise ValueError(f"AS{asn} pocket metros outside footprint")
                for provider in pocket.providers:
                    if provider not in self._nodes:
                        raise ValueError(f"AS{asn} pocket provider AS{provider} missing")
        for a, nbrs in self._adj.items():
            for b, rel in nbrs.items():
                if self._adj[b][a] is not rel.invert():
                    raise ValueError(f"asymmetric relationship on AS{a}-AS{b}")


class DenseTopology:
    """Immutable columnar (CSR) view of an :class:`ASGraph`.

    Rows are ASes in graph insertion order; ``index`` maps ASN -> row.
    Provider and customer adjacencies are packed CSR-style — for row
    ``r``, ``prov_indices[prov_indptr[r]:prov_indptr[r + 1]]`` are the
    rows of ``r``'s providers — with explicit dtype pins (``int32`` row
    ids, ``int64`` ASNs/offsets) so tables derived from the view are
    platform-stable (RA703).

    Built by :meth:`ASGraph.dense`; treat instances as frozen.
    """

    def __init__(self, graph: ASGraph):
        asns = tuple(graph.asns)
        self.n = len(asns)
        self.asns = np.array(asns, dtype=np.int64)
        self.index: Dict[int, int] = {asn: row for row, asn in enumerate(asns)}
        self.prov_indptr, self.prov_indices = self._pack(graph, asns, True)
        self.cust_indptr, self.cust_indices = self._pack(graph, asns, False)

    def _pack(self, graph: ASGraph, asns: Tuple[int, ...],
              providers: bool) -> Tuple[np.ndarray, np.ndarray]:
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        rows: List[np.ndarray] = []
        for row, asn in enumerate(asns):
            nbrs = graph.providers(asn) if providers else graph.customers(asn)
            packed = np.array([self.index[n] for n in nbrs], dtype=np.int32)
            indptr[row + 1] = indptr[row] + len(packed)
            rows.append(packed)
        if rows:
            indices = np.concatenate(rows).astype(np.int32, copy=False)
        else:
            indices = np.zeros(0, dtype=np.int32)
        return indptr, indices

    def providers_of(self, row: int) -> np.ndarray:
        """Provider rows of ``row`` (int32 slice of the CSR arrays)."""
        return self.prov_indices[self.prov_indptr[row]:self.prov_indptr[row + 1]]

    def customers_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Sorted unique customer rows of every row in ``rows``."""
        counts = self.cust_indptr[rows + 1] - self.cust_indptr[rows]
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int32)
        starts = np.repeat(self.cust_indptr[rows], counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts)
        return np.unique(self.cust_indices[starts + within])


@dataclass
class TopologyParams:
    """Knobs controlling the synthetic AS topology size and shape.

    Defaults produce a laptop-scale Internet preserving the statistical
    structure of the paper's measurements (see DESIGN.md §3 scale note).
    """

    n_tier1: int = 6
    n_transit: int = 36
    n_access: int = 120
    n_cdn: int = 10
    n_stub: int = 420

    # fraction of CDNs' footprints organised into isolated pockets
    cdn_pocket_fraction: float = 0.6
    # mean number of transit providers per access ISP / stub
    access_providers: int = 2
    stub_providers: int = 2
    # probability that two same-continent transit ASes peer directly
    transit_peering_prob: float = 0.25
    # magnitude of per-AS opaque policy bias (route-rank units)
    policy_bias_scale: float = 0.35

    first_asn: int = 1000


def generate_as_graph(
    metros: MetroCatalog,
    params: Optional[TopologyParams] = None,
    seed: int = 0,
) -> ASGraph:
    """Generate a synthetic AS-level Internet.

    The construction is deterministic for a given ``seed``.

    Args:
        metros: geographic frame (shared with the WAN and Geo-IP DB).
        params: size/shape knobs; defaults are laptop scale.
        seed: RNG seed.

    Returns:
        A validated :class:`ASGraph`.
    """
    params = params or TopologyParams()
    rng = random.Random(seed)
    graph = ASGraph(metros)
    all_metros = list(metros.names)
    next_asn = params.first_asn

    def take_asn() -> int:
        nonlocal next_asn
        asn = next_asn
        next_asn += 1
        return asn

    def bias() -> float:
        return rng.uniform(0.0, params.policy_bias_scale)

    # --- tier-1s: global footprint, full-mesh peering --------------------
    tier1s: List[int] = []
    for _ in range(params.n_tier1):
        asn = take_asn()
        footprint = tuple(sorted(rng.sample(all_metros, k=max(10, int(len(all_metros) * 0.7)))))
        graph.add_as(ASNode(asn, ASRole.TIER1, footprint, policy_bias=bias()))
        tier1s.append(asn)
    for i, a in enumerate(tier1s):
        for b in tier1s[i + 1:]:
            graph.add_link(a, b, Relationship.PEER)

    # --- transit: continental footprint, tier-1 providers ----------------
    transits: List[int] = []
    transit_continent: Dict[int, str] = {}
    continents = sorted({m.continent for m in metros})
    for i in range(params.n_transit):
        asn = take_asn()
        continent = continents[i % len(continents)]
        cont_metros = [m.name for m in metros.in_continent(continent)]
        k = min(len(cont_metros), max(2, rng.randint(2, max(2, len(cont_metros)))))
        footprint = tuple(sorted(rng.sample(cont_metros, k=k)))
        graph.add_as(ASNode(asn, ASRole.TRANSIT, footprint, policy_bias=bias()))
        for provider in rng.sample(tier1s, k=min(len(tier1s), rng.randint(2, 3))):
            graph.add_link(asn, provider, Relationship.PROVIDER)
        transits.append(asn)
        transit_continent[asn] = continent
    for i, a in enumerate(transits):
        for b in transits[i + 1:]:
            if transit_continent[a] == transit_continent[b] and rng.random() < params.transit_peering_prob:
                graph.add_link(a, b, Relationship.PEER)

    # --- access ISPs: country/regional, transit providers ----------------
    accesses: List[int] = []
    for _ in range(params.n_access):
        asn = take_asn()
        home = rng.choice(all_metros)
        country = metros.get(home).country
        country_metros = [m.name for m in metros.in_country(country)]
        footprint = tuple(sorted(set(country_metros[: rng.randint(1, len(country_metros))]) | {home}))
        continent = metros.get(home).continent
        local_transits = [t for t in transits if transit_continent[t] == continent] or transits
        n_prov = min(len(local_transits), max(1, round(rng.gauss(params.access_providers, 0.7))))
        graph.add_as(ASNode(asn, ASRole.ACCESS, footprint, policy_bias=bias()))
        for provider in rng.sample(local_transits, k=n_prov):
            graph.add_link(asn, provider, Relationship.PROVIDER)
        accesses.append(asn)

    # --- CDNs: wide footprint, pockets reaching out via local transit ----
    for _ in range(params.n_cdn):
        asn = take_asn()
        k = max(8, int(len(all_metros) * rng.uniform(0.35, 0.8)))
        footprint = sorted(rng.sample(all_metros, k=min(k, len(all_metros))))
        pockets: List[Pocket] = []
        pocketed: List[str] = []
        if rng.random() < 0.9:
            n_pocket_metros = int(len(footprint) * params.cdn_pocket_fraction)
            pocketed = rng.sample(footprint, k=n_pocket_metros)
            # group pocketed metros by continent into islands
            by_continent: Dict[str, List[str]] = {}
            for m in pocketed:
                by_continent.setdefault(metros.get(m).continent, []).append(m)
            for cont, ms in sorted(by_continent.items()):
                local_transits = [t for t in transits if transit_continent[t] == cont] or transits
                providers = tuple(rng.sample(local_transits, k=min(2, len(local_transits))))
                pockets.append(Pocket(frozenset(ms), providers))
        node = ASNode(asn, ASRole.CDN, tuple(footprint), tuple(pockets), policy_bias=bias())
        graph.add_as(node)
        # CDNs also buy transit for their backbone (rarely used, but present)
        for provider in rng.sample(tier1s, k=2):
            graph.add_link(asn, provider, Relationship.PROVIDER)
        # pocket providers must be adjacent so routes can flow
        for pocket in pockets:
            for provider in pocket.providers:
                if provider not in graph.neighbors(asn):
                    graph.add_link(asn, provider, Relationship.PROVIDER)

    # --- stubs: enterprises and small eyeballs ---------------------------
    for _ in range(params.n_stub):
        asn = take_asn()
        home = rng.choice(all_metros)
        footprint = (home,)
        graph.add_as(ASNode(asn, ASRole.STUB, footprint, policy_bias=bias()))
        continent = metros.get(home).continent
        # providers drawn from access ISPs covering the home metro when
        # possible, otherwise any same-continent transit
        local_access = [a for a in accesses if home in graph.node(a).footprint]
        local_transits = [t for t in transits if transit_continent[t] == continent] or transits
        pool = local_access + local_transits
        n_prov = min(len(pool), max(1, round(rng.gauss(params.stub_providers, 0.6))))
        for provider in rng.sample(pool, k=n_prov):
            graph.add_link(asn, provider, Relationship.PROVIDER)

    graph.validate()
    return graph
