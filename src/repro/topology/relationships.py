"""AS business relationships (Gao-Rexford model).

Inter-domain routing policy in the synthetic Internet follows the classic
customer/provider/peer model: an AS prefers routes learned from customers
over routes learned from peers over routes learned from providers, and only
exports customer routes (and its own) to peers and providers ("valley-free"
routing).  TIPSY never observes these relationships — they are part of the
opaque Internet the predictor must learn around (paper §2, challenge 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class Relationship(enum.Enum):
    """Relationship of a neighbor *to us*, from our point of view."""

    CUSTOMER = "customer"  # the neighbor pays us
    PEER = "peer"          # settlement-free
    PROVIDER = "provider"  # we pay the neighbor

    def invert(self) -> "Relationship":
        """The same edge seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: BGP local-preference ordering implied by the relationship of the neighbor
#: the route was learned from.  Higher is preferred (Gao-Rexford).
LOCAL_PREF: Dict[Relationship, int] = {
    Relationship.CUSTOMER: 300,
    Relationship.PEER: 200,
    Relationship.PROVIDER: 100,
}


def exportable(learned_from: Relationship, export_to: Relationship) -> bool:
    """Whether a route learned from one neighbor may be exported to another.

    Valley-free export rule: routes learned from customers are exported to
    everyone; routes learned from peers or providers are exported only to
    customers.

    Args:
        learned_from: relationship of the neighbor the route was learned
            from, from the exporting AS's point of view.
        export_to: relationship of the neighbor the route would be sent to.

    Returns:
        True if exporting the route respects valley-free routing.
    """
    if learned_from is Relationship.CUSTOMER:
        return True
    return export_to is Relationship.CUSTOMER


def is_valley_free(path_relationships: Tuple[Relationship, ...]) -> bool:
    """Whether an AS path is valley-free.

    ``path_relationships`` gives, for each hop, the relationship of the
    *next* AS as seen from the current AS (the direction of travel of
    traffic).  A valley-free path is zero or more PROVIDER ("up") steps,
    then at most one PEER step, then zero or more CUSTOMER ("down") steps.
    """
    phase = 0  # 0 = climbing, 1 = after peak (peer or first down-step)
    for rel in path_relationships:
        if rel is Relationship.PROVIDER:
            if phase != 0:
                return False
        elif rel is Relationship.PEER:
            if phase != 0:
                return False
            phase = 1
        else:  # CUSTOMER: going down
            phase = 1
    return True


@dataclass(frozen=True)
class ASLink:
    """An inter-AS adjacency with its business relationship.

    The relationship is stored from ``a``'s point of view: ``rel_of_b`` is
    what ``b`` is to ``a``.  E.g. ``rel_of_b == CUSTOMER`` means ``b`` is
    ``a``'s customer.
    """

    a: int
    b: int
    rel_of_b: Relationship

    def relationship_of(self, asn: int) -> Relationship:
        """The relationship of the *other* endpoint, from ``asn``'s view."""
        if asn == self.a:
            return self.rel_of_b
        if asn == self.b:
            return self.rel_of_b.invert()
        raise ValueError(f"AS{asn} is not an endpoint of {self}")

    def other(self, asn: int) -> int:
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValueError(f"AS{asn} is not an endpoint of {self}")
