"""Geographic substrate: metros, coordinates, and distances.

TIPSY's ``AL`` feature set and the ``AL+G`` model both depend on coarse
geo-location at the level of "large metropolitan areas" (paper §3.2) and on
the geographic distance between peering links (paper §3.3.1, "Geographic
distance of peering").  This module provides the metro catalogue used by the
synthetic Internet, plus great-circle distance helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class Metro:
    """A large metropolitan area where ASes have presence and links land.

    Attributes:
        name: Short unique metro code, e.g. ``"sea"``.
        city: Human-readable city name.
        country: ISO-ish country code.
        continent: Continent code (``na``, ``sa``, ``eu``, ``as``, ``af``,
            ``oc``).
        lat: Latitude in degrees.
        lon: Longitude in degrees.
    """

    name: str
    city: str
    country: str
    continent: str
    lat: float
    lon: float

    def distance_km(self, other: "Metro") -> float:
        """Great-circle distance to another metro in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) points in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


# A world metro catalogue, loosely modelled on where large cloud WANs have
# edge presence.  Coordinates are approximate city centres.
WORLD_METROS: Tuple[Metro, ...] = (
    # North America
    Metro("sea", "Seattle", "us", "na", 47.61, -122.33),
    Metro("pao", "Palo Alto", "us", "na", 37.44, -122.14),
    Metro("lax", "Los Angeles", "us", "na", 34.05, -118.24),
    Metro("phx", "Phoenix", "us", "na", 33.45, -112.07),
    Metro("dfw", "Dallas", "us", "na", 32.78, -96.80),
    Metro("chi", "Chicago", "us", "na", 41.88, -87.63),
    Metro("atl", "Atlanta", "us", "na", 33.75, -84.39),
    Metro("mia", "Miami", "us", "na", 25.76, -80.19),
    Metro("iad", "Ashburn", "us", "na", 39.04, -77.49),
    Metro("nyc", "New York", "us", "na", 40.71, -74.01),
    Metro("bos", "Boston", "us", "na", 42.36, -71.06),
    Metro("tor", "Toronto", "ca", "na", 43.65, -79.38),
    Metro("yvr", "Vancouver", "ca", "na", 49.28, -123.12),
    Metro("mex", "Mexico City", "mx", "na", 19.43, -99.13),
    # South America
    Metro("gru", "Sao Paulo", "br", "sa", -23.55, -46.63),
    Metro("eze", "Buenos Aires", "ar", "sa", -34.60, -58.38),
    Metro("bog", "Bogota", "co", "sa", 4.71, -74.07),
    Metro("scl", "Santiago", "cl", "sa", -33.45, -70.67),
    # Europe
    Metro("lon", "London", "gb", "eu", 51.51, -0.13),
    Metro("ams", "Amsterdam", "nl", "eu", 52.37, 4.90),
    Metro("fra", "Frankfurt", "de", "eu", 50.11, 8.68),
    Metro("par", "Paris", "fr", "eu", 48.86, 2.35),
    Metro("mad", "Madrid", "es", "eu", 40.42, -3.70),
    Metro("mil", "Milan", "it", "eu", 45.46, 9.19),
    Metro("sto", "Stockholm", "se", "eu", 59.33, 18.07),
    Metro("waw", "Warsaw", "pl", "eu", 52.23, 21.01),
    Metro("vie", "Vienna", "at", "eu", 48.21, 16.37),
    Metro("dub", "Dublin", "ie", "eu", 53.35, -6.26),
    # Middle East / Africa
    Metro("dxb", "Dubai", "ae", "as", 25.20, 55.27),
    Metro("tlv", "Tel Aviv", "il", "as", 32.07, 34.78),
    Metro("jnb", "Johannesburg", "za", "af", -26.20, 28.05),
    Metro("cai", "Cairo", "eg", "af", 30.04, 31.24),
    Metro("nbo", "Nairobi", "ke", "af", -1.29, 36.82),
    # Asia-Pacific
    Metro("bom", "Mumbai", "in", "as", 19.08, 72.88),
    Metro("maa", "Chennai", "in", "as", 13.08, 80.27),
    Metro("sin", "Singapore", "sg", "as", 1.35, 103.82),
    Metro("hkg", "Hong Kong", "hk", "as", 22.32, 114.17),
    Metro("tpe", "Taipei", "tw", "as", 25.03, 121.57),
    Metro("tyo", "Tokyo", "jp", "as", 35.68, 139.69),
    Metro("osa", "Osaka", "jp", "as", 34.69, 135.50),
    Metro("icn", "Seoul", "kr", "as", 37.57, 126.98),
    Metro("syd", "Sydney", "au", "oc", -33.87, 151.21),
    Metro("mel", "Melbourne", "au", "oc", -37.81, 144.96),
    Metro("akl", "Auckland", "nz", "oc", -36.85, 174.76),
)


class MetroCatalog:
    """Indexed access to a set of metros, with distance utilities.

    The catalogue is the shared geographic frame for the AS topology (AS
    footprints), the cloud WAN (peering link locations) and the Geo-IP
    database (prefix locations).
    """

    def __init__(self, metros: Sequence[Metro] = WORLD_METROS):
        if not metros:
            raise ValueError("metro catalogue must not be empty")
        self._metros: Tuple[Metro, ...] = tuple(metros)
        self._by_name: Dict[str, Metro] = {m.name: m for m in self._metros}
        if len(self._by_name) != len(self._metros):
            raise ValueError("duplicate metro names in catalogue")
        self._distance_cache: Dict[Tuple[str, str], float] = {}

    def __len__(self) -> int:
        return len(self._metros)

    def __iter__(self) -> Iterator[Metro]:
        return iter(self._metros)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self._metros)

    def get(self, name: str) -> Metro:
        """Look up a metro by its short code. Raises ``KeyError`` if absent."""
        return self._by_name[name]

    def distance_km(self, a: str, b: str) -> float:
        """Distance between two metros by name, cached and symmetric."""
        if a == b:
            return 0.0
        key = (a, b) if a < b else (b, a)
        dist = self._distance_cache.get(key)
        if dist is None:
            ma, mb = self._by_name[key[0]], self._by_name[key[1]]
            dist = ma.distance_km(mb)
            self._distance_cache[key] = dist
        return dist

    def nearest(self, origin: str, candidates: Iterable[str]) -> str:
        """The candidate metro nearest to ``origin`` (ties break by name)."""
        best: Tuple[float, str] = (float("inf"), "")
        for name in candidates:
            d = self.distance_km(origin, name)
            if (d, name) < best:
                best = (d, name)
        if best[1] == "":
            raise ValueError("nearest() requires at least one candidate")
        return best[1]

    def rank_by_distance(self, origin: str, candidates: Iterable[str]) -> List[str]:
        """Candidates sorted by distance from ``origin`` (ties by name)."""
        return sorted(candidates, key=lambda name: (self.distance_km(origin, name), name))

    def in_continent(self, continent: str) -> List[Metro]:
        """All metros on a given continent code."""
        return [m for m in self._metros if m.continent == continent]

    def in_country(self, country: str) -> List[Metro]:
        """All metros in a given country code."""
        return [m for m in self._metros if m.country == country]
