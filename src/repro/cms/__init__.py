"""Congestion mitigation system and risk analysis.

The consumer of TIPSY's predictions: a utilization monitor that spots
congested peering links, a safe-withdrawal CMS that asks ``what_if``
before acting (so one withdrawal does not cascade into the §2
incident), Appendix C's Algorithm-1 links-at-risk analysis at link,
router, and site granularity, and the §8 de-peering study.
"""

from .monitor import (
    CongestionEvent,
    SECONDS_PER_HOUR,
    UtilizationMonitor,
    bytes_to_utilization,
)
from .mitigation import (
    CMSConfig,
    CongestionMitigationSystem,
    MitigationAction,
    TrafficEntry,
)
from .risk import GroupRiskAnalyzer, GroupRiskFinding, RiskAnalyzer, RiskFinding
from .depeering import DepeeringAnalyzer, DepeeringAssessment

__all__ = [
    "CongestionEvent", "SECONDS_PER_HOUR", "UtilizationMonitor",
    "bytes_to_utilization",
    "CMSConfig", "CongestionMitigationSystem", "MitigationAction",
    "TrafficEntry",
    "GroupRiskAnalyzer", "GroupRiskFinding", "RiskAnalyzer", "RiskFinding",
    "DepeeringAnalyzer", "DepeeringAssessment",
]
