"""Congestion mitigation system and risk analysis."""

from .monitor import (
    CongestionEvent,
    SECONDS_PER_HOUR,
    UtilizationMonitor,
    bytes_to_utilization,
)
from .mitigation import (
    CMSConfig,
    CongestionMitigationSystem,
    MitigationAction,
    TrafficEntry,
)
from .risk import GroupRiskAnalyzer, GroupRiskFinding, RiskAnalyzer, RiskFinding
from .depeering import DepeeringAnalyzer, DepeeringAssessment

__all__ = [
    "CongestionEvent", "SECONDS_PER_HOUR", "UtilizationMonitor",
    "bytes_to_utilization",
    "CMSConfig", "CongestionMitigationSystem", "MitigationAction",
    "TrafficEntry",
    "GroupRiskAnalyzer", "GroupRiskFinding", "RiskAnalyzer", "RiskFinding",
    "DepeeringAnalyzer", "DepeeringAssessment",
]
