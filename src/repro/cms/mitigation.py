"""The congestion mitigation system (paper §4.4).

When the monitor flags a congested ingress link, CMS:

1. identifies the fewest destination prefixes (largest first) at the link
   whose shift would bring utilization back under the target,
2. asks TIPSY where each prefix's flows would land if withdrawn
   (availability prior = the congested link plus anything already down),
3. withdraws only prefixes whose predicted spill keeps every other link
   under the safety threshold — the whole point of TIPSY: "only inject
   such withdrawal messages when, with high probability, the mitigated
   traffic will shift to new peering links with sufficient spare capacity",
4. re-announces withdrawn prefixes once the link has calmed down.

Without a predictor (``predictor=None``) CMS reverts to its pre-TIPSY
behaviour: withdraw blindly and chase the resulting cascade — which is
exactly the §2 incident, reproduced in ``examples/cascade_incident.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..bgp.state import AdvertisementState
from ..core.base import IngressModel
from ..pipeline.records import FlowContext
from ..topology.wan import CloudWAN
from .monitor import CongestionEvent, UtilizationMonitor


@dataclass(frozen=True)
class TrafficEntry:
    """One observed flow aggregate for CMS decision making."""

    link_id: int
    dest_prefix_id: int
    context: FlowContext
    bytes: float


@dataclass(frozen=True)
class MitigationAction:
    """A CMS decision, for the operator audit log."""

    sample_index: int
    kind: str                 # "withdraw" | "reannounce" | "skip-unsafe"
    link_id: int
    dest_prefix_id: int
    predicted_spill: Tuple[Tuple[int, float], ...] = ()
    note: str = ""


@dataclass
class CMSConfig:
    """CMS behaviour knobs (paper defaults where stated)."""

    threshold: float = 0.85        # trigger utilization (paper)
    sustain_samples: int = 1       # consecutive samples (paper: 4 minutes)
    target: float = 0.70           # shift enough traffic to get under this
    safety: float = 0.85           # predicted spill must keep links under this
    # re-announce a withdrawn prefix once its total observed volume has
    # fallen to this fraction of what it was at withdrawal time (the
    # paper re-announces "when traffic volumes have returned to normal")
    reannounce_volume_fraction: float = 0.70
    prediction_k: int = 3
    max_withdrawals_per_event: int = 4
    # when a single-link withdrawal would overload another link, plan the
    # full set of links to withdraw from simultaneously (the §2 incident's
    # "better option": withdraw at I1-I4 at once instead of cascading)
    coordinated: bool = True
    max_coordinated_links: int = 6


class CongestionMitigationSystem:
    """Closed-loop ingress congestion mitigation over an advertisement state."""

    def __init__(
        self,
        wan: CloudWAN,
        config: Optional[CMSConfig] = None,
        predictor: Optional[IngressModel] = None,
        period_seconds: float = 3600.0,
    ):
        self.wan = wan
        self.config = config or CMSConfig()
        self.predictor = predictor
        self.monitor = UtilizationMonitor(
            {l.link_id: l.capacity_gbps for l in wan.links},
            threshold=self.config.threshold,
            sustain_samples=self.config.sustain_samples,
            period_seconds=period_seconds,
        )
        self.actions: List[MitigationAction] = []
        # (prefix, link) -> prefix's total volume at withdrawal time;
        # pairs we withdrew and still owe a re-announcement
        self._owed: Dict[Tuple[int, int], float] = {}

    # -- main entry point ---------------------------------------------------------

    def handle_sample(
        self,
        sample_index: int,
        state: AdvertisementState,
        entries: Sequence[TrafficEntry],
    ) -> List[MitigationAction]:
        """Process one sample of traffic; possibly mutate ``state``.

        Returns the actions taken this sample (also appended to
        :attr:`actions`).
        """
        link_bytes: Dict[int, float] = {}
        prefix_bytes: Dict[int, float] = {}
        for entry in entries:
            link_bytes[entry.link_id] = (
                link_bytes.get(entry.link_id, 0.0) + entry.bytes)
            prefix_bytes[entry.dest_prefix_id] = (
                prefix_bytes.get(entry.dest_prefix_id, 0.0) + entry.bytes)

        taken: List[MitigationAction] = []
        taken.extend(self._maybe_reannounce(sample_index, state, prefix_bytes))
        for event in self.monitor.observe(sample_index, link_bytes):
            taken.extend(self._mitigate(sample_index, state, entries,
                                        link_bytes, prefix_bytes, event))
        self.actions.extend(taken)
        return taken

    # -- mitigation ------------------------------------------------------------------

    def _mitigate(
        self,
        sample_index: int,
        state: AdvertisementState,
        entries: Sequence[TrafficEntry],
        link_bytes: Mapping[int, float],
        prefix_bytes: Mapping[int, float],
        event: CongestionEvent,
    ) -> List[MitigationAction]:
        link_id = event.link_id
        capacity_bytes = self.monitor.capacities[link_id] * 1e9 / 8.0 * (
            self.monitor.period_seconds)
        excess = link_bytes.get(link_id, 0.0) - self.config.target * capacity_bytes
        if excess <= 0.0:
            return []

        # largest prefixes at the congested link first: fewest withdrawals
        by_prefix: Dict[int, List[TrafficEntry]] = {}
        for entry in entries:
            if entry.link_id == link_id:
                by_prefix.setdefault(entry.dest_prefix_id, []).append(entry)
        candidates = sorted(
            by_prefix.items(),
            key=lambda kv: -sum(e.bytes for e in kv[1]))

        taken: List[MitigationAction] = []
        shifted = 0.0
        withdrawals = 0
        for prefix_id, prefix_entries in candidates:
            if shifted >= excess:
                break
            if withdrawals >= self.config.max_withdrawals_per_event:
                break
            if not state.is_available(prefix_id, link_id):
                continue
            volume = sum(e.bytes for e in prefix_entries)
            spill = self._predict_spill(state, prefix_id, link_id,
                                        prefix_entries)
            if spill is not None and not self._spill_is_safe(
                    spill, link_bytes):
                plan = None
                if self.config.coordinated:
                    plan = self._plan_coordinated(
                        state, prefix_id, link_id, prefix_entries, link_bytes)
                if plan is None:
                    taken.append(MitigationAction(
                        sample_index, "skip-unsafe", link_id, prefix_id,
                        predicted_spill=tuple(sorted(spill.items())),
                        note="predicted spill exceeds safety threshold"))
                    continue
                for planned_link in sorted(plan):
                    state.withdraw(prefix_id, planned_link)
                    self._owed[(prefix_id, planned_link)] = (
                        prefix_bytes.get(prefix_id, 0.0))
                    taken.append(MitigationAction(
                        sample_index, "withdraw-coordinated", planned_link,
                        prefix_id,
                        note=f"coordinated set {sorted(plan)}"))
                withdrawals += 1
                shifted += volume
                continue
            state.withdraw(prefix_id, link_id)
            self._owed[(prefix_id, link_id)] = prefix_bytes.get(prefix_id, 0.0)
            withdrawals += 1
            shifted += volume
            taken.append(MitigationAction(
                sample_index, "withdraw", link_id, prefix_id,
                predicted_spill=tuple(sorted((spill or {}).items())),
                note=f"shift {volume:.3g}B of {excess:.3g}B excess"))
        return taken

    def _plan_coordinated(
        self,
        state: AdvertisementState,
        prefix_id: int,
        link_id: int,
        prefix_entries: Sequence[TrafficEntry],
        link_bytes: Mapping[int, float],
    ) -> Optional[Set[int]]:
        """Grow the withdrawal set until the predicted spill is safe.

        Starts from the congested link and iteratively adds each link the
        prediction says would overload, re-predicting with the enlarged
        availability prior — a what-if loop over TIPSY, exactly the §2
        post-incident analysis turned into an algorithm.  Returns None if
        no safe set exists within the size budget.
        """
        if self.predictor is None:
            return None
        plan: Set[int] = {link_id}
        period = self.monitor.period_seconds
        for _ in range(self.config.max_coordinated_links):
            unavailable = frozenset(
                plan | state.link_outages | state.withdrawn_links(prefix_id))
            spill: Dict[int, float] = {}
            for entry in prefix_entries:
                predictions = self.predictor.predict(
                    entry.context, self.config.prediction_k, unavailable)
                total_score = sum(p.score for p in predictions)
                if total_score <= 0.0:
                    continue
                for p in predictions:
                    spill[p.link_id] = spill.get(p.link_id, 0.0) + (
                        entry.bytes * p.score / total_score)
            overloaded = []
            for target, extra in spill.items():
                capacity = self.monitor.capacities.get(target)
                if capacity is None:
                    continue
                capacity_bytes = capacity * 1e9 / 8.0 * period
                projected = (link_bytes.get(target, 0.0) + extra) / capacity_bytes
                if projected > self.config.safety:
                    overloaded.append(target)
            if not overloaded:
                return plan
            plan.update(overloaded)
            if len(plan) > self.config.max_coordinated_links:
                return None
        return None

    def _predict_spill(
        self,
        state: AdvertisementState,
        prefix_id: int,
        link_id: int,
        prefix_entries: Sequence[TrafficEntry],
    ) -> Optional[Dict[int, float]]:
        """Predicted per-link byte spill if a prefix is withdrawn at a link.

        None when there is no predictor (pre-TIPSY CMS withdraws blindly).
        """
        if self.predictor is None:
            return None
        unavailable = frozenset(
            {link_id} | state.link_outages | state.withdrawn_links(prefix_id))
        spill: Dict[int, float] = {}
        for entry in prefix_entries:
            predictions = self.predictor.predict(
                entry.context, self.config.prediction_k, unavailable)
            if not predictions:
                continue
            total_score = sum(p.score for p in predictions)
            if total_score <= 0.0:
                continue
            for p in predictions:
                spill[p.link_id] = spill.get(p.link_id, 0.0) + (
                    entry.bytes * p.score / total_score)
        return spill

    def _spill_is_safe(self, spill: Mapping[int, float],
                       link_bytes: Mapping[int, float]) -> bool:
        period = self.monitor.period_seconds
        for link_id, extra in spill.items():
            capacity = self.monitor.capacities.get(link_id)
            if capacity is None:
                continue
            capacity_bytes = capacity * 1e9 / 8.0 * period
            projected = (link_bytes.get(link_id, 0.0) + extra) / capacity_bytes
            if projected > self.config.safety:
                return False
        return True

    # -- re-announcement ----------------------------------------------------------------

    def _maybe_reannounce(
        self,
        sample_index: int,
        state: AdvertisementState,
        prefix_bytes: Mapping[int, float],
    ) -> List[MitigationAction]:
        """Restore withdrawals whose prefix traffic has calmed down.

        The congested link now carries little traffic by construction, so
        its own utilization says nothing; what matters is whether the
        withdrawn prefix's demand (observed wherever it currently lands)
        has returned to normal.
        """
        taken: List[MitigationAction] = []
        fraction = self.config.reannounce_volume_fraction
        for (prefix_id, link_id), at_withdrawal in sorted(self._owed.items()):
            current = prefix_bytes.get(prefix_id, 0.0)
            if at_withdrawal <= 0.0 or current < fraction * at_withdrawal:
                state.announce(prefix_id, link_id)
                del self._owed[(prefix_id, link_id)]
                taken.append(MitigationAction(
                    sample_index, "reannounce", link_id, prefix_id,
                    note=(f"prefix volume {current:.3g}B below "
                          f"{fraction:.2f} of {at_withdrawal:.3g}B")))
        return taken

    @property
    def pending_reannouncements(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset(self._owed)
