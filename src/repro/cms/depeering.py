"""De-peering analysis (paper §8).

"In the course of maintaining a large WAN, it is natural to consider
de-peering to reduce cost and operational overhead with peers that add
low value."  This analysis quantifies the question for each peer: how
many bytes does its peering carry, and if the peer were removed
entirely, could the remaining links absorb the traffic TIPSY predicts
would shift to them?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.base import IngressModel
from ..pipeline.records import FlowContext
from ..topology.wan import CloudWAN

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class DepeeringAssessment:
    """Can this peer be removed, and what happens if it is?"""

    peer_asn: int
    n_links: int
    carried_bytes: float
    carried_fraction: float       # of all assessed traffic
    # predicted landing spots of the peer's traffic, descending bytes
    predicted_spill: Tuple[Tuple[int, float], ...]
    # bytes TIPSY could not place anywhere (flows with no alternative)
    unplaceable_bytes: float
    # links the spill would push over the safety threshold
    overloaded_links: Tuple[int, ...]

    @property
    def safe(self) -> bool:
        """Removable without predicted overload or stranded traffic."""
        return not self.overloaded_links and self.unplaceable_bytes == 0.0


class DepeeringAnalyzer:
    """What-if analysis of removing whole peers."""

    def __init__(self, wan: CloudWAN, model: IngressModel,
                 safety_threshold: float = 0.85, prediction_k: int = 3):
        self.wan = wan
        self.model = model
        self.safety_threshold = safety_threshold
        self.prediction_k = prediction_k

    def assess(
        self,
        peer_asn: int,
        entries: Sequence[Tuple[int, FlowContext, float]],
        hours: float = 1.0,
    ) -> DepeeringAssessment:
        """Assess removing one peer, given (link, flow, bytes) traffic.

        Args:
            peer_asn: the peer to hypothetically remove.
            entries: observed traffic (typically one peak hour, as the
                CMS uses — paper §4).
            hours: duration the entries span, for utilization math.
        """
        peer_links = frozenset(
            l.link_id for l in self.wan.links_of_peer(peer_asn))
        if not peer_links:
            raise KeyError(f"AS{peer_asn} does not peer with the WAN")

        total = 0.0
        carried = 0.0
        base_load: Dict[int, float] = {}
        affected: List[Tuple[FlowContext, float]] = []
        for link_id, context, bytes_ in entries:
            total += bytes_
            base_load[link_id] = base_load.get(link_id, 0.0) + bytes_
            if link_id in peer_links:
                carried += bytes_
                affected.append((context, bytes_))

        spill: Dict[int, float] = {}
        unplaceable = 0.0
        for context, bytes_ in affected:
            predictions = self.model.predict(context, self.prediction_k,
                                             peer_links)
            score_total = sum(p.score for p in predictions)
            if score_total <= 0.0:
                unplaceable += bytes_
                continue
            for p in predictions:
                spill[p.link_id] = spill.get(p.link_id, 0.0) + (
                    bytes_ * p.score / score_total)

        overloaded = []
        for link_id, extra in spill.items():
            link = self.wan.link(link_id)
            capacity_bytes = (link.capacity_gbps * 1e9 / 8.0
                              * SECONDS_PER_HOUR * hours)
            projected = (base_load.get(link_id, 0.0) + extra) / capacity_bytes
            if projected > self.safety_threshold:
                overloaded.append(link_id)

        return DepeeringAssessment(
            peer_asn=peer_asn,
            n_links=len(peer_links),
            carried_bytes=carried,
            carried_fraction=carried / total if total else 0.0,
            predicted_spill=tuple(sorted(spill.items(),
                                         key=lambda kv: (-kv[1], kv[0]))),
            unplaceable_bytes=unplaceable,
            overloaded_links=tuple(sorted(overloaded)),
        )

    def rank_candidates(
        self,
        entries: Sequence[Tuple[int, FlowContext, float]],
        max_carried_fraction: float = 0.02,
        hours: float = 1.0,
    ) -> List[DepeeringAssessment]:
        """All low-value peers whose removal TIPSY deems safe.

        Sorted by carried traffic ascending — the least valuable peering
        first, the natural de-peering order.
        """
        candidates = []
        for peer_asn in self.wan.peer_asns:
            assessment = self.assess(peer_asn, entries, hours)
            if (assessment.carried_fraction <= max_carried_fraction
                    and assessment.safe):
                candidates.append(assessment)
        candidates.sort(key=lambda a: a.carried_bytes)
        return candidates
