"""Peering links at risk under single-link outages (paper Appendix C).

Implements the paper's Algorithm 1: for every hour of a test window and
every peering link A, predict where the flows that ingressed on A would
land if A had an outage; add that induced load to each link's actual
load; report links whose predicted utilization crosses the threshold in
hours where it otherwise would not have — the operationally-surprising
rows of paper Tables 12 and 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple


from ..core.base import IngressModel
from ..pipeline.records import FlowContext
from ..topology.wan import CloudWAN

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class RiskFinding:
    """One at-risk link under one affecting link's outage (a table row)."""

    link_id: int
    peer_asn: int
    capacity_gbps: float
    typical_high_hours: int       # hours actually over threshold
    predicted_extra_high_hours: int  # extra over-threshold hours if outage
    affecting_link_id: int
    affecting_peer_asn: int
    affecting_capacity_gbps: float


class RiskAnalyzer:
    """Runs Algorithm 1 over per-hour traffic observations."""

    def __init__(
        self,
        wan: CloudWAN,
        model: IngressModel,
        threshold: float = 0.70,
        prediction_k: int = 3,
    ):
        self.wan = wan
        self.model = model
        self.threshold = threshold
        self.prediction_k = prediction_k
        self._capacity_bytes: Dict[int, float] = {
            l.link_id: l.capacity_gbps * 1e9 / 8.0 * SECONDS_PER_HOUR
            for l in wan.links
        }
        # prediction cache: (context, outaged link) -> ((link, weight), ...)
        self._pred_cache: Dict[Tuple[FlowContext, int],
                               Tuple[Tuple[int, float], ...]] = {}

    def _shift_distribution(
        self, context: FlowContext, outaged: int,
    ) -> Tuple[Tuple[int, float], ...]:
        key = (context, outaged)
        cached = self._pred_cache.get(key)
        if cached is None:
            predictions = self.model.predict(
                context, self.prediction_k, frozenset((outaged,)))
            total = sum(p.score for p in predictions)
            if total <= 0.0:
                cached = ()
            else:
                cached = tuple((p.link_id, p.score / total)
                               for p in predictions)
            self._pred_cache[key] = cached
        return cached

    def analyze(
        self,
        hours: Iterable[Tuple[int, Sequence[Tuple[int, FlowContext, float]]]],
        min_extra_hours: int = 1,
    ) -> List[RiskFinding]:
        """Run Algorithm 1.

        Args:
            hours: iterable of (hour, entries) where each entry is
                (link_id, flow context, bytes) for that hour.
            min_extra_hours: drop findings with fewer predicted extra
                over-threshold hours.

        Returns:
            Findings sorted by predicted extra hours, descending (the
            paper sorts its table the same way).
        """
        threshold = self.threshold
        capacity = self._capacity_bytes
        # per (affected link, affecting link): count of extra high hours
        extra_hours: Dict[Tuple[int, int], int] = {}
        typical_hours: Dict[int, int] = {}

        for _hour, entries in hours:
            actual: Dict[int, float] = {}
            by_link: Dict[int, List[Tuple[FlowContext, float]]] = {}
            for link_id, context, bytes_ in entries:
                actual[link_id] = actual.get(link_id, 0.0) + bytes_
                by_link.setdefault(link_id, []).append((context, bytes_))

            over_actual = {
                link for link, bytes_ in actual.items()
                if bytes_ / capacity[link] >= threshold
            }
            for link in over_actual:
                typical_hours[link] = typical_hours.get(link, 0) + 1

            # what-if: each link A with traffic goes down for this hour
            for a_link, flows in by_link.items():
                induced: Dict[int, float] = {}
                for context, bytes_ in flows:
                    for target, weight in self._shift_distribution(
                            context, a_link):
                        induced[target] = induced.get(target, 0.0) + (
                            bytes_ * weight)
                for b_link, extra in induced.items():
                    if b_link == a_link or b_link in over_actual:
                        continue
                    base = actual.get(b_link, 0.0)
                    cap = capacity.get(b_link)
                    if cap is None:
                        continue
                    if (base + extra) / cap >= threshold:
                        key = (b_link, a_link)
                        extra_hours[key] = extra_hours.get(key, 0) + 1

        findings: List[RiskFinding] = []
        for (b_link, a_link), count in extra_hours.items():
            if count < min_extra_hours:
                continue
            b = self.wan.link(b_link)
            a = self.wan.link(a_link)
            findings.append(RiskFinding(
                link_id=b_link,
                peer_asn=b.peer_asn,
                capacity_gbps=b.capacity_gbps,
                typical_high_hours=typical_hours.get(b_link, 0),
                predicted_extra_high_hours=count,
                affecting_link_id=a_link,
                affecting_peer_asn=a.peer_asn,
                affecting_capacity_gbps=a.capacity_gbps,
            ))
        findings.sort(key=lambda f: (-f.predicted_extra_high_hours,
                                     f.link_id, f.affecting_link_id))
        return findings


@dataclass(frozen=True)
class GroupRiskFinding:
    """An at-risk link under a whole router/site/peer outage."""

    link_id: int
    peer_asn: int
    capacity_gbps: float
    predicted_extra_high_hours: int
    affecting_group: str


class GroupRiskAnalyzer:
    """Appendix C's extension: risk under router or whole-site outages.

    Instead of failing one link at a time, fails every link sharing a
    router, metro, or peer — the "single router or single site outages"
    the paper says the same machinery analyzes.
    """

    GROUPINGS = ("router", "metro", "peer")

    def __init__(self, wan: CloudWAN, model: IngressModel,
                 threshold: float = 0.70, prediction_k: int = 3):
        self.wan = wan
        self.model = model
        self.threshold = threshold
        self.prediction_k = prediction_k
        self._capacity_bytes = {
            l.link_id: l.capacity_gbps * 1e9 / 8.0 * SECONDS_PER_HOUR
            for l in wan.links
        }
        self._pred_cache: Dict[Tuple[FlowContext, FrozenSet[int]],
                               Tuple[Tuple[int, float], ...]] = {}

    def group_of(self, link_id: int, group_by: str) -> str:
        link = self.wan.link(link_id)
        if group_by == "router":
            return link.router
        if group_by == "metro":
            return link.metro
        if group_by == "peer":
            return f"AS{link.peer_asn}"
        raise ValueError(f"unknown grouping {group_by!r}")

    def _groups(self, group_by: str) -> Dict[str, FrozenSet[int]]:
        groups: Dict[str, Set[int]] = {}
        for link in self.wan.links:
            groups.setdefault(self.group_of(link.link_id, group_by),
                              set()).add(link.link_id)
        return {name: frozenset(ids) for name, ids in groups.items()}

    def _shift(self, context: FlowContext,
               down: FrozenSet[int]) -> Tuple[Tuple[int, float], ...]:
        key = (context, down)
        cached = self._pred_cache.get(key)
        if cached is None:
            predictions = self.model.predict(context, self.prediction_k,
                                             down)
            total = sum(p.score for p in predictions)
            cached = tuple(
                (p.link_id, p.score / total) for p in predictions
            ) if total > 0.0 else ()
            self._pred_cache[key] = cached
        return cached

    def analyze(
        self,
        hours: Iterable[Tuple[int, Sequence[Tuple[int, FlowContext, float]]]],
        group_by: str = "router",
        min_extra_hours: int = 1,
    ) -> List[GroupRiskFinding]:
        """Algorithm 1 with whole-group outages."""
        groups = self._groups(group_by)
        threshold = self.threshold
        capacity = self._capacity_bytes
        extra: Dict[Tuple[int, str], int] = {}

        for _hour, entries in hours:
            actual: Dict[int, float] = {}
            by_group: Dict[str, List[Tuple[FlowContext, float]]] = {}
            for link_id, context, bytes_ in entries:
                actual[link_id] = actual.get(link_id, 0.0) + bytes_
                by_group.setdefault(
                    self.group_of(link_id, group_by), []).append(
                        (context, bytes_))
            over_actual = {
                link for link, b in actual.items()
                if b / capacity[link] >= threshold
            }
            for group_name, flows in by_group.items():
                down = groups[group_name]
                induced: Dict[int, float] = {}
                for context, bytes_ in flows:
                    for target, weight in self._shift(context, down):
                        induced[target] = induced.get(target, 0.0) + (
                            bytes_ * weight)
                for b_link, add in induced.items():
                    if b_link in down or b_link in over_actual:
                        continue
                    if (actual.get(b_link, 0.0) + add) / capacity[b_link] >= threshold:
                        key = (b_link, group_name)
                        extra[key] = extra.get(key, 0) + 1

        findings = []
        for (b_link, group_name), count in extra.items():
            if count < min_extra_hours:
                continue
            link = self.wan.link(b_link)
            findings.append(GroupRiskFinding(
                link_id=b_link, peer_asn=link.peer_asn,
                capacity_gbps=link.capacity_gbps,
                predicted_extra_high_hours=count,
                affecting_group=group_name))
        findings.sort(key=lambda f: (-f.predicted_extra_high_hours,
                                     f.link_id, f.affecting_group))
        return findings
