"""Ingress link utilization monitoring (paper §4.4).

The production CMS triggers when a link exceeds 85% ingress utilization
for at least 4 minutes.  The monitor here is time-unit agnostic: it
consumes utilization samples (any fixed period — minutes in unit tests,
hours in the scenario loop) and raises a congestion event after a
configurable number of consecutive over-threshold samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

SECONDS_PER_HOUR = 3600.0


def bytes_to_utilization(bytes_: float, capacity_gbps: float,
                         period_seconds: float = SECONDS_PER_HOUR) -> float:
    """Average utilization fraction over a sample period."""
    if capacity_gbps <= 0.0:
        raise ValueError("capacity must be positive")
    capacity_bytes = capacity_gbps * 1e9 / 8.0 * period_seconds
    return bytes_ / capacity_bytes


@dataclass(frozen=True)
class CongestionEvent:
    """A sustained over-threshold condition on one link."""

    link_id: int
    sample_index: int
    utilization: float


class UtilizationMonitor:
    """Raises :class:`CongestionEvent` after sustained high utilization."""

    def __init__(
        self,
        capacities: Mapping[int, float],
        threshold: float = 0.85,
        sustain_samples: int = 1,
        period_seconds: float = SECONDS_PER_HOUR,
    ):
        """
        Args:
            capacities: link id -> capacity in Gbps.
            threshold: utilization fraction that counts as congested
                (paper default 0.85).
            sustain_samples: consecutive over-threshold samples before an
                event fires (paper: 4 one-minute samples; with hourly
                samples 1 is the natural equivalent).
            period_seconds: duration of one sample.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if sustain_samples < 1:
            raise ValueError("sustain_samples must be >= 1")
        self.capacities = dict(capacities)
        self.threshold = threshold
        self.sustain_samples = sustain_samples
        self.period_seconds = period_seconds
        self._streak: Dict[int, int] = {}

    def utilization(self, link_id: int, bytes_: float) -> float:
        return bytes_to_utilization(bytes_, self.capacities[link_id],
                                    self.period_seconds)

    def observe(self, sample_index: int,
                link_bytes: Mapping[int, float]) -> List[CongestionEvent]:
        """Feed one sample of per-link bytes; returns events that fired.

        Links missing from ``link_bytes`` are treated as carrying zero
        bytes (their streak resets).
        """
        events: List[CongestionEvent] = []
        for link_id, capacity in self.capacities.items():
            bytes_ = link_bytes.get(link_id, 0.0)
            util = bytes_to_utilization(bytes_, capacity, self.period_seconds)
            if util > self.threshold:
                streak = self._streak.get(link_id, 0) + 1
                self._streak[link_id] = streak
                if streak >= self.sustain_samples:
                    events.append(CongestionEvent(link_id, sample_index, util))
            else:
                self._streak[link_id] = 0
        return events

    def reset(self, link_id: Optional[int] = None) -> None:
        """Clear streak state for one link, or all links."""
        if link_id is None:
            self._streak.clear()
        else:
            self._streak.pop(link_id, None)
