"""Bounded LRU mapping with hit/miss/eviction counters.

Week-long simulations resolve millions of (flow, removal-key, drift)
combinations; the caches that make them fast must not also make them
unbounded.  :class:`LruDict` is the one bounded-mapping primitive the
hot paths share: an ``OrderedDict`` kept in recency order, evicting the
least-recently-used entry once ``capacity`` is exceeded, with counters
cheap enough to read on every export (``repro.obs`` gauges).

``capacity <= 0`` means unbounded — the same mapping, the same
counters, no eviction — so callers can expose a single knob that turns
bounding off for short-lived runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LruDict(Generic[K, V]):
    """Least-recently-used bounded mapping with usage counters.

    ``get`` and ``put`` refresh recency; once ``len() > capacity`` the
    stalest entry is dropped.  ``hits``/``misses`` count ``get`` calls
    (unless ``count=False``), ``evictions`` counts capacity drops.
    """

    __slots__ = ("capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 0):
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, count: bool = True) -> Optional[V]:
        """The value for ``key`` (refreshing its recency), else None."""
        value = self._data.get(key)
        if value is None:
            if count:
                self.misses += 1
            return None
        if count:
            self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/overwrite ``key``, evicting the stalest entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        if self.capacity > 0:
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __setitem__(self, key: K, value: V) -> None:
        self.put(key, value)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of counted ``get`` calls that hit (0.0 when unused)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
