"""Shared utilities (deterministic hashing, exact sums, small helpers).

The leaf of the dependency tree: imports nothing from ``repro``, is
imported by everything.  Hosts ``mix64`` — the stateless seeded mixer
that replaces global RNG state everywhere (lint rules RA001–RA003) —
and the Shewchuk-exact accumulators (``exactsum``) that make the
incremental rolling-window retrain bit-identical to a from-scratch
rebuild.
"""

from .cache import LruDict
from .exactsum import exact_add, exact_is_zero, exact_sub, exact_value
from .hashing import geometric_day, mix64, pick, rotation, unit

__all__ = [
    "LruDict",
    "exact_add", "exact_is_zero", "exact_sub", "exact_value",
    "geometric_day", "mix64", "pick", "rotation", "unit",
]
