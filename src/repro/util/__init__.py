"""Shared utilities (deterministic hashing, exact sums, small helpers)."""

from .exactsum import exact_add, exact_is_zero, exact_sub, exact_value
from .hashing import geometric_day, mix64, pick, rotation, unit

__all__ = [
    "exact_add", "exact_is_zero", "exact_sub", "exact_value",
    "geometric_day", "mix64", "pick", "rotation", "unit",
]
