"""Shared utilities (deterministic hashing, small helpers)."""

from .hashing import geometric_day, mix64, pick, rotation, unit

__all__ = ["geometric_day", "mix64", "pick", "rotation", "unit"]
