"""Exactly-rounded, order-free floating-point accumulation.

Incremental model maintenance (add the day that entered the training
window, subtract the day that left) can only be *bit-identical* to
retraining from scratch if the accumulated sums do not depend on the
order or grouping of the additions — plain ``a + b + c`` folds are
neither associative nor invertible in IEEE-754.  This module keeps each
running sum as a list of non-overlapping *partials* (Shewchuk's
grow-expansion, the algorithm behind :func:`math.fsum`): the partials
represent the exact real-valued sum, so adding and later subtracting the
same value restores the previous state exactly, regardless of what was
added in between, and the rounded view is the correctly-rounded float of
the exact sum.

A non-empty partials list whose exact sum is zero compacts to ``[0.0]``:
non-overlapping non-zero floats cannot cancel, so ``value() == 0.0``
holds iff the exact sum is zero — the property delta-training uses to
decide that a (tuple, link) pair has genuinely left the window.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["exact_add", "exact_sub", "exact_value", "exact_is_zero",
           "exact_total"]


def exact_total(values: Iterable[float]) -> float:
    """Order-independent, correctly-rounded sum of ``values``.

    Drop-in replacement for a bare single-argument ``sum(...)`` on
    determinism-contract paths (the target of the RA702 autofix):
    ``math.fsum`` accumulates exact partials, so the result is the
    correctly-rounded float of the true real-valued sum — identical no
    matter how the input is ordered, grouped, sharded, or which
    platform ran it.

    Unlike ``sum``, the result is *always* ``float``: ``sum([2, 3])``
    is the int ``5`` but ``exact_total([2, 3])`` is ``5.0`` — don't
    route provably-integer sums (already exact and order-free) through
    here, and mind the type change where a sum feeds indexing,
    serialization, or hashed snapshots.  There is also no ``start``
    parameter; fold a non-zero start in as one more summand.
    """
    return math.fsum(values)


def exact_add(partials: List[float], value: float) -> List[float]:
    """Fold ``value`` into ``partials`` in place; returns ``partials``.

    ``partials`` must be a list previously produced by this function (or
    empty).  After the call it again holds non-overlapping floats whose
    mathematical sum is exactly the old sum plus ``value``.
    """
    x = value
    count = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        high = x + y
        low = y - (high - x)
        if low != 0.0:
            partials[count] = low
            count += 1
        x = high
    partials[count:] = [x]
    return partials


def exact_sub(partials: List[float], value: float) -> List[float]:
    """Fold ``-value`` into ``partials`` in place; returns ``partials``.

    Subtracting a value that was previously added restores the exact
    prior sum no matter how many other additions happened in between.
    """
    return exact_add(partials, -value)


def exact_value(partials: Sequence[float]) -> float:
    """The correctly-rounded float of the exact sum held in ``partials``."""
    return math.fsum(partials)


def exact_is_zero(partials: Sequence[float]) -> bool:
    """Whether the exact sum is exactly zero (not merely rounding to it)."""
    return not any(partials)
