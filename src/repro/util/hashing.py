"""Deterministic hashing utilities.

Python's builtin ``hash`` is salted per process, so every place the
simulator needs a *stable* pseudo-random decision (per-prefix ECMP
spraying, policy biases, drift schedules) goes through these mixers
instead.  The mixer is a splitmix64-style finalizer: fast, well
distributed, and reproducible across runs and platforms.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

_MASK64 = (1 << 64) - 1
_T = TypeVar("_T")


def mix64(*values: int, seed: int = 0) -> int:
    """Mix integer values into a 64-bit hash, deterministically."""
    h = (seed ^ 0x9E3779B97F4A7C15) & _MASK64
    for v in values:
        h = (h + (v & _MASK64)) & _MASK64
        h ^= h >> 30
        h = (h * 0xBF58476D1CE4E5B9) & _MASK64
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK64
        h ^= h >> 31
    return h


def unit(*values: int, seed: int = 0) -> float:
    """Deterministic uniform float in [0, 1) derived from the inputs."""
    return mix64(*values, seed=seed) / float(1 << 64)


def pick(items: Sequence[_T], *values: int, seed: int = 0) -> _T:
    """Deterministically pick one item from a non-empty sequence."""
    if not items:
        raise ValueError("cannot pick from an empty sequence")
    return items[mix64(*values, seed=seed) % len(items)]


def rotation(n: int, *values: int, seed: int = 0) -> int:
    """Deterministic rotation offset in [0, n) for ECMP-style spraying."""
    if n <= 0:
        raise ValueError("rotation needs n >= 1")
    return mix64(*values, seed=seed) % n


def geometric_day(p: float, *values: int, seed: int = 0, cap: int = 10_000) -> int:
    """Deterministic draw of a geometric 'first success' day.

    Used to schedule slow routing drift: the day (0-based) on which a flow's
    primary route shifts.  ``p`` is the per-day shift probability.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError("p must be in [0, 1)")
    if p == 0.0:
        return cap
    u = unit(*values, seed=seed)
    # avoid log(0)
    u = max(u, 1e-12)
    day = int(math.log(u) / math.log(1.0 - p))
    return min(day, cap)
