"""Peering-link outages: scheduling (ground truth) and inference.

Ground truth side: the scenario injects outages from a per-link hazard
process calibrated so that ~80% of links experience at least one outage
per simulated year (paper Figure 6) with durations between 1 and 24 hours
(the paper's evaluation bounds, §5.1.1).

Inference side: TIPSY infers outages **from IPFIX**, not SNMP — "if a
peering link received no bytes in a one-hour window, we consider it to
have an outage" (paper §5.1.1).  The inference here consumes the per-link
hourly byte matrix produced from sampled telemetry and reproduces that
rule, including its quirk that a sampling dropout looks like an outage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class Outage:
    """A contiguous link-down interval, in absolute hours [start, end)."""

    link_id: int
    start_hour: int
    end_hour: int

    @property
    def duration_hours(self) -> int:
        return self.end_hour - self.start_hour

    def active_at(self, hour: int) -> bool:
        return self.start_hour <= hour < self.end_hour


@dataclass
class OutageParams:
    """Hazard process knobs.

    Real links fail heterogeneously: a flaky minority fails repeatedly
    while solid links fail rarely.  ``hazard_sigma`` spreads the per-link
    hazard lognormally around ``daily_hazard``; this is what produces a
    realistic mix of *seen* outages (the link also failed in the training
    window) and *unseen* ones (paper §5.3.2 reports ~43/57 by bytes).
    """

    # median per-link, per-day probability of an outage starting
    daily_hazard: float = 0.03
    # lognormal sigma of the per-link hazard multiplier (0 = homogeneous)
    hazard_sigma: float = 0.8
    # cap on any single link's daily hazard
    max_daily_hazard: float = 0.25
    # a small "flaky" class fails recurringly (think chronic maintenance
    # windows): high exposure in every window, so their behaviour under
    # withdrawal is well represented in training data.  The balance of
    # flaky vs lognormal-bulk hazard sets the seen/unseen byte split of
    # paper §5.3.2 (~43/57); these defaults land ~47/53.
    flaky_fraction: float = 0.003
    flaky_daily_hazard: float = 0.5
    flaky_duration: Tuple[int, int] = (8, 16)
    # duration mixture: (weight, min_hours, max_hours)
    duration_mixture: Tuple[Tuple[float, int, int], ...] = (
        (0.55, 1, 4),    # short blips
        (0.33, 4, 12),   # maintenance-scale
        (0.12, 12, 24),  # long outages
    )


def schedule_outages(
    link_ids: Sequence[int],
    horizon_hours: int,
    params: Optional[OutageParams] = None,
    seed: int = 0,
) -> List[Outage]:
    """Draw a ground-truth outage schedule over a time horizon.

    Outages on the same link never overlap; the schedule is sorted by
    start hour.
    """
    params = params or OutageParams()
    rng = random.Random(seed ^ 0x0A6E)
    outages: List[Outage] = []
    weights = [w for w, _, _ in params.duration_mixture]
    for link_id in link_ids:
        flaky = rng.random() < params.flaky_fraction
        if flaky:
            hazard = params.flaky_daily_hazard
        else:
            hazard = min(
                params.daily_hazard * rng.lognormvariate(
                    0.0, params.hazard_sigma),
                params.max_daily_hazard)
        day = 0
        horizon_days = horizon_hours // 24
        while day < horizon_days:
            if rng.random() < hazard:
                start = day * 24 + rng.randrange(24)
                if flaky:
                    lo, hi = params.flaky_duration
                else:
                    _, lo, hi = rng.choices(params.duration_mixture,
                                            weights=weights, k=1)[0]
                duration = rng.randint(lo, hi)
                end = min(start + duration, horizon_hours)
                if end > start:
                    outages.append(Outage(link_id, start, end))
                # skip past this outage so the link's outages never overlap
                day = end // 24 + 1
            else:
                day += 1
    outages.sort(key=lambda o: (o.start_hour, o.link_id))
    return outages


class OutageInference:
    """Infer outages from the per-link hourly byte matrix (paper's rule).

    A link is considered down in an hour if it received zero (sampled)
    bytes in that hour.  Links that never carried any bytes over the whole
    window are excluded — they are not in service, not in outage.
    """

    def __init__(self, link_ids: Sequence[int], link_bytes: np.ndarray):
        """
        Args:
            link_ids: link id per matrix row.
            link_bytes: array of shape (n_links, n_hours) of sampled bytes.
        """
        if link_bytes.ndim != 2 or link_bytes.shape[0] != len(link_ids):
            raise ValueError("link_bytes must be (n_links, n_hours)")
        self.link_ids = tuple(link_ids)
        self.link_bytes = link_bytes
        self._active = link_bytes.sum(axis=1) > 0.0
        self._down = (link_bytes <= 0.0) & self._active[:, None]

    @property
    def n_hours(self) -> int:
        return self.link_bytes.shape[1]

    def is_down(self, link_index: int, hour: int) -> bool:
        return bool(self._down[link_index, hour])

    def down_links_at(self, hour: int) -> FrozenSet[int]:
        """Inferred-down link ids for one hour."""
        rows = np.nonzero(self._down[:, hour])[0]
        return frozenset(self.link_ids[i] for i in rows)

    def intervals(self, min_hours: int = 1,
                  max_hours: Optional[int] = None) -> List[Outage]:
        """Contiguous inferred outage intervals, with duration filters.

        The paper evaluates on outages lasting 1-24 hours (§5.1.1); pass
        ``min_hours=1, max_hours=24`` to reproduce that filter.
        """
        results: List[Outage] = []
        n_hours = self.n_hours
        for idx, link_id in enumerate(self.link_ids):
            if not self._active[idx]:
                continue
            row = self._down[idx]
            h = 0
            while h < n_hours:
                if row[h]:
                    start = h
                    while h < n_hours and row[h]:
                        h += 1
                    duration = h - start
                    if duration >= min_hours and (
                            max_hours is None or duration <= max_hours):
                        results.append(Outage(link_id, start, h))
                else:
                    h += 1
        results.sort(key=lambda o: (o.start_hour, o.link_id))
        return results

    def links_with_outage(self, start_hour: int, end_hour: int,
                          min_hours: int = 1,
                          max_hours: Optional[int] = None) -> FrozenSet[int]:
        """Links with >= 1 qualifying outage inside [start_hour, end_hour)."""
        hits: Set[int] = set()
        for outage in self.intervals(min_hours, max_hours):
            if outage.start_hour < end_hour and outage.end_hour > start_hour:
                hits.add(outage.link_id)
        return frozenset(hits)


def first_outage_days(outages: Iterable[Outage]) -> Dict[int, int]:
    """Day of each link's first outage (paper Figure 6 series)."""
    firsts: Dict[int, int] = {}
    for outage in outages:
        day = outage.start_hour // 24
        if outage.link_id not in firsts or day < firsts[outage.link_id]:
            firsts[outage.link_id] = day
    return firsts


def last_outage_days_before(outages: Iterable[Outage],
                            reference_day: int) -> Dict[int, int]:
    """Days since each link's last outage, looking back from a reference
    day (paper Figure 7 series)."""
    lasts: Dict[int, int] = {}
    for outage in outages:
        day = outage.start_hour // 24
        if day >= reference_day:
            continue
        age = reference_day - day
        if outage.link_id not in lasts or age < lasts[outage.link_id]:
            lasts[outage.link_id] = age
    return lasts
