"""Flow-trace files: export and import IPFIX-style records.

The synthetic world is a stand-in for real telemetry; a downstream
operator would feed TIPSY their own flow export.  This module defines a
plain CSV trace format round-trippable with :class:`IpfixRecord`, plus
a loader that replays a trace through the aggregation pipeline into
training counts — the complete "bring your own data" path:

    write_trace("week.csv", records)
    counts = counts_from_trace("week.csv", metadata)
    models = runner.build_models(counts)

Format: a header line then one record per line,
``hour,link_id,src_prefix_id,src_asn,dest_prefix_id,bytes``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List,
                    Optional, Union)

import numpy as np

from ..telemetry.ipfix import IpfixRecord
from ..telemetry.metadata import MetadataStore
from .aggregation import HourlyAggregator

if TYPE_CHECKING:
    from ..core.training import CountsAccumulator

FIELDS = ("hour", "link_id", "src_prefix_id", "src_asn",
          "dest_prefix_id", "bytes")


def write_trace(path: Union[str, Path],
                records: Iterable[IpfixRecord]) -> int:
    """Write records to a CSV trace; returns the record count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(FIELDS)
        for record in records:
            writer.writerow((record.hour, record.link_id,
                             record.src_prefix_id, record.src_asn,
                             record.dest_prefix_id, record.bytes))
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[IpfixRecord]:
    """Stream records back from a CSV trace.

    Raises ``ValueError`` on a malformed header or row so silent data
    corruption cannot flow into training.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != list(FIELDS):
            raise ValueError(f"not a flow trace: header {header!r}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(FIELDS):
                raise ValueError(f"malformed trace row at line {line_no}")
            try:
                yield IpfixRecord(
                    hour=int(row[0]), link_id=int(row[1]),
                    src_prefix_id=int(row[2]), src_asn=int(row[3]),
                    dest_prefix_id=int(row[4]), bytes=float(row[5]))
            except ValueError as exc:
                raise ValueError(
                    f"malformed trace row at line {line_no}: {exc}") from exc


def counts_from_trace(
    path: Union[str, Path],
    metadata: MetadataStore,
    aggregator: Optional[HourlyAggregator] = None,
    start_hour: Optional[int] = None,
    end_hour: Optional[int] = None,
) -> "CountsAccumulator":
    """Replay a trace through aggregation into training counts.

    Args:
        path: trace file.
        metadata: destination/Geo-IP joins for the trace's network.
        aggregator: reuse an aggregator (and its encoders) so codes stay
            consistent across multiple traces; a fresh one by default.
        start_hour / end_hour: optional [start, end) window filter.

    Returns:
        Finest-grain counts ready for ``CountsAccumulator.fit`` /
        ``EvaluationRunner.build_models``.
    """
    # lazy import: the layer map (RA601) points core -> pipeline, and
    # this convenience loader is the one spot pipeline needs core back
    from ..core.training import CountsAccumulator

    aggregator = aggregator or HourlyAggregator(metadata)
    counts = CountsAccumulator()
    by_hour: Dict[int, List[IpfixRecord]] = {}
    for record in read_trace(path):
        if start_hour is not None and record.hour < start_hour:
            continue
        if end_hour is not None and record.hour >= end_hour:
            continue
        by_hour.setdefault(record.hour, []).append(record)
    for hour in sorted(by_hour):
        records = by_hour[hour]
        columns = aggregator.aggregate_hour_columns(
            hour,
            np.fromiter((r.link_id for r in records), np.int64,
                        count=len(records)),
            np.fromiter((r.src_prefix_id for r in records), np.int64,
                        count=len(records)),
            np.fromiter((r.src_asn for r in records), np.int64,
                        count=len(records)),
            np.fromiter((r.dest_prefix_id for r in records), np.int64,
                        count=len(records)),
            np.fromiter((r.bytes for r in records), np.float64,
                        count=len(records)),
            hours=np.fromiter((r.hour for r in records), np.int64,
                              count=len(records)))
        counts.add_columns(columns)
    counts.drain()
    return counts
