"""Data pipeline: records, encoding, aggregation, outages, streaming."""

from .records import AggColumns, AggRecord, FlowContext, UNKNOWN_LOCATION
from .encoding import EncoderSet, OrdinalEncoder
from .aggregation import CompressionStats, HourlyAggregator
from .outages import (
    Outage,
    OutageInference,
    OutageParams,
    first_outage_days,
    last_outage_days_before,
    schedule_outages,
)
from .dataset import HourConsumer, LinkByteTracker, fanout
from .traces import counts_from_trace, read_trace, write_trace

__all__ = [
    "counts_from_trace", "read_trace", "write_trace",
    "AggColumns", "AggRecord", "FlowContext", "UNKNOWN_LOCATION",
    "EncoderSet", "OrdinalEncoder",
    "CompressionStats", "HourlyAggregator",
    "Outage", "OutageInference", "OutageParams",
    "first_outage_days", "last_outage_days_before", "schedule_outages",
    "HourConsumer", "LinkByteTracker", "fanout",
]
