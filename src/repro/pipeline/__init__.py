"""Data pipeline: records, encoding, aggregation, outages, streaming.

Turns sampled telemetry into training rows: hourly aggregation to
(flow-aggregate, ingress link, bytes) with strict/lenient drop
accounting (per-record reference and a bit-identical vectorised
columnar path), ordinal feature encoding, and "no bytes = down" outage
inference.  A determinism-critical package: hot-path output is a pure
function of ``(seed, hour)``, wall-clock-free by lint rule RA201; the
observability hooks here report through the :mod:`repro.obs` facade
only.
"""

from .records import AggColumns, AggRecord, FlowContext, UNKNOWN_LOCATION
from .encoding import EncoderSet, OrdinalEncoder
from .aggregation import CompressionStats, HourlyAggregator
from .outages import (
    Outage,
    OutageInference,
    OutageParams,
    first_outage_days,
    last_outage_days_before,
    schedule_outages,
)
from .dataset import HourConsumer, LinkByteTracker, fanout
from .traces import counts_from_trace, read_trace, write_trace

__all__ = [
    "counts_from_trace", "read_trace", "write_trace",
    "AggColumns", "AggRecord", "FlowContext", "UNKNOWN_LOCATION",
    "EncoderSet", "OrdinalEncoder",
    "CompressionStats", "HourlyAggregator",
    "Outage", "OutageInference", "OutageParams",
    "first_outage_days", "last_outage_days_before", "schedule_outages",
    "HourConsumer", "LinkByteTracker", "fanout",
]
