"""Record types flowing through the data pipeline.

``AggRecord`` is the unit TIPSY trains on: IPFIX joined with metadata and
aggregated into hour-long chunks, indexed by only the features TIPSY uses
(paper §4.2).  String features (location, region, service) are ordinal-
encoded to ints by the aggregation stage; ``FlowContext`` carries the same
feature fields without the hour/link/bytes, and is what models receive at
prediction time.
"""

from __future__ import annotations

import itertools
from typing import List, NamedTuple

import numpy as np

#: encoded value used when the Geo-IP database has no entry for a prefix
UNKNOWN_LOCATION = -1


class AggRecord(NamedTuple):
    """One hourly, feature-indexed, metadata-joined traffic observation."""

    hour: int
    link_id: int
    src_asn: int
    src_prefix: int
    src_loc: int        # ordinal-encoded metro (UNKNOWN_LOCATION if absent)
    dest_region: int    # ordinal-encoded region
    dest_service: int   # ordinal-encoded service type
    bytes: float

    @property
    def context(self) -> "FlowContext":
        return FlowContext(self.src_asn, self.src_prefix, self.src_loc,
                           self.dest_region, self.dest_service)


class FlowContext(NamedTuple):
    """The full feature tuple of a flow aggregate, without measurement."""

    src_asn: int
    src_prefix: int
    src_loc: int
    dest_region: int
    dest_service: int


class AggColumns(NamedTuple):
    """One aggregated hour in columnar form (aligned numpy arrays).

    The columnar twin of a ``List[AggRecord]``: same rows, same order,
    one array per field.  This is what the vectorised aggregation path
    produces and what the parallel pipeline ships between processes —
    arrays serialise orders of magnitude faster than per-record objects.
    ``to_records()`` converts losslessly to the record-level view.
    """

    hour: int
    link_ids: np.ndarray
    src_asns: np.ndarray
    src_prefixes: np.ndarray
    src_locs: np.ndarray
    dest_regions: np.ndarray
    dest_services: np.ndarray
    bytes: np.ndarray

    @property
    def n_records(self) -> int:
        return len(self.bytes)

    def to_records(self) -> List[AggRecord]:
        """The equivalent ``AggRecord`` list, in the same row order."""
        # tuple.__new__ avoids the per-record Python constructor frame
        return list(map(tuple.__new__, itertools.repeat(AggRecord), zip(
            itertools.repeat(self.hour),
            self.link_ids.tolist(), self.src_asns.tolist(),
            self.src_prefixes.tolist(), self.src_locs.tolist(),
            self.dest_regions.tolist(), self.dest_services.tolist(),
            self.bytes.tolist())))
