"""Record types flowing through the data pipeline.

``AggRecord`` is the unit TIPSY trains on: IPFIX joined with metadata and
aggregated into hour-long chunks, indexed by only the features TIPSY uses
(paper §4.2).  String features (location, region, service) are ordinal-
encoded to ints by the aggregation stage; ``FlowContext`` carries the same
feature fields without the hour/link/bytes, and is what models receive at
prediction time.
"""

from __future__ import annotations

from typing import NamedTuple

#: encoded value used when the Geo-IP database has no entry for a prefix
UNKNOWN_LOCATION = -1


class AggRecord(NamedTuple):
    """One hourly, feature-indexed, metadata-joined traffic observation."""

    hour: int
    link_id: int
    src_asn: int
    src_prefix: int
    src_loc: int        # ordinal-encoded metro (UNKNOWN_LOCATION if absent)
    dest_region: int    # ordinal-encoded region
    dest_service: int   # ordinal-encoded service type
    bytes: float

    @property
    def context(self) -> "FlowContext":
        return FlowContext(self.src_asn, self.src_prefix, self.src_loc,
                           self.dest_region, self.dest_service)


class FlowContext(NamedTuple):
    """The full feature tuple of a flow aggregate, without measurement."""

    src_asn: int
    src_prefix: int
    src_loc: int
    dest_region: int
    dest_service: int
