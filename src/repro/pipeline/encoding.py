"""Ordinal (dictionary) encoding of categorical features.

The Azure pipeline compresses features "by using a simple dictionary
(i.e., ordinal encoding)" before they reach the learning system (paper
§4.2).  The encoder assigns dense int codes in first-seen order, supports
decoding for presentation, and can report its size for compression
accounting.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple


class OrdinalEncoder:
    """Bidirectional value <-> dense int code mapping."""

    def __init__(self, name: str = ""):
        self.name = name
        self._to_code: Dict[Hashable, int] = {}
        self._to_value: List[Hashable] = []

    def encode(self, value: Hashable) -> int:
        """Code for a value, assigning a new code on first sight."""
        code = self._to_code.get(value)
        if code is None:
            code = len(self._to_value)
            self._to_code[value] = code
            self._to_value.append(value)
        return code

    def encode_if_known(self, value: Hashable) -> Optional[int]:
        """Code for a value, or None if never seen (no assignment)."""
        return self._to_code.get(value)

    def decode(self, code: int) -> Hashable:
        """Value for a code; raises ``IndexError`` for unknown codes."""
        if code < 0:
            raise IndexError(f"negative code {code} has no value")
        return self._to_value[code]

    def __len__(self) -> int:
        return len(self._to_value)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._to_code

    def values(self) -> Tuple[Hashable, ...]:
        return tuple(self._to_value)


class EncoderSet:
    """The pipeline's shared encoders for the string-valued features."""

    def __init__(self):
        self.location = OrdinalEncoder("source_location")
        self.region = OrdinalEncoder("dest_region")
        self.service = OrdinalEncoder("dest_service")

    def sizes(self) -> Dict[str, int]:
        return {
            "source_location": len(self.location),
            "dest_region": len(self.region),
            "dest_service": len(self.service),
        }
