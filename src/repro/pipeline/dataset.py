"""Streaming dataset plumbing.

The Azure pipeline streams TBs/day through aggregation into the learning
system; nothing holds raw telemetry in memory.  The same architecture
holds here: consumers implement :class:`HourConsumer` and are fed one
hour of aggregated records at a time.  The only dense artifact kept for a
whole window is the per-link hourly byte matrix (:class:`LinkByteTracker`)
— it is what outage inference (§5.1.1) and the CMS utilization monitor
(§4.4) read.
"""

from __future__ import annotations

from typing import Dict, Iterable, Protocol, Sequence

import numpy as np

from .records import AggColumns, AggRecord


class HourConsumer(Protocol):
    """Anything that consumes the hourly aggregated stream."""

    def consume_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        ...


class LinkByteTracker:
    """Per-link, per-hour sampled byte totals."""

    def __init__(self, link_ids: Sequence[int], n_hours: int):
        self.link_ids = tuple(link_ids)
        self._index: Dict[int, int] = {l: i for i, l in enumerate(self.link_ids)}
        self.matrix = np.zeros((len(self.link_ids), n_hours), dtype=np.float64)

    def consume_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        for record in records:
            idx = self._index.get(record.link_id)
            if idx is not None:
                self.matrix[idx, hour] += record.bytes

    def consume_columns(self, columns: AggColumns) -> None:
        """Columnar :meth:`consume_hour` — one bincount per hour.

        Unknown link ids are ignored, matching the per-record walk.
        """
        uniq, inverse = np.unique(columns.link_ids, return_inverse=True)
        uniq_rows = np.fromiter((self._index.get(int(l), -1) for l in uniq),
                                np.int64, count=len(uniq))
        rows = uniq_rows[inverse.ravel()]
        known = rows >= 0
        self.matrix[:, columns.hour] += np.bincount(
            rows[known], weights=columns.bytes[known],
            minlength=len(self.link_ids))

    def add_bulk(self, hour: int, link_ids: np.ndarray,
                 bytes_: np.ndarray) -> None:
        """Vectorised accumulation used by the scenario fast path."""
        rows = np.array([self._index[l] for l in link_ids], dtype=np.int64)
        np.add.at(self.matrix[:, hour], rows, bytes_)

    def merge(self, other: "LinkByteTracker") -> None:
        """Fold another tracker (e.g. one pipeline shard's) into this one."""
        if other.link_ids != self.link_ids:
            raise ValueError("cannot merge trackers over different links")
        if other.matrix.shape != self.matrix.shape:
            raise ValueError("cannot merge trackers over different horizons")
        self.matrix += other.matrix

    def row_index(self, link_id: int) -> int:
        return self._index[link_id]

    def bytes_for(self, link_id: int) -> np.ndarray:
        return self.matrix[self._index[link_id]]

    def utilization(self, link_id: int, capacity_gbps: float) -> np.ndarray:
        """Average hourly utilization as a fraction of capacity."""
        capacity_bytes_hour = capacity_gbps * 1e9 / 8.0 * 3600.0
        return self.bytes_for(link_id) / capacity_bytes_hour


def fanout(hour: int, records: Sequence[AggRecord],
           consumers: Iterable[HourConsumer]) -> None:
    """Feed one aggregated hour to several consumers."""
    for consumer in consumers:
        consumer.consume_hour(hour, records)
