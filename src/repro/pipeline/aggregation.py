"""Hourly aggregation of IPFIX into feature-indexed chunks (paper §4.2).

Aggregation (1) sums bytes over all raw flow records that share the TIPSY
feature tuple and ingress link within an hour, and (2) joins metadata:
Geo-IP source location, destination region and service type.  The paper
reports the aggregated IPFIX at ~2% of the raw size; ``CompressionStats``
tracks the equivalent ratio here.

Two execution paths produce identical output: :meth:`aggregate_hour`
walks records one at a time (the reference implementation), while
:meth:`aggregate_hour_batch` / :meth:`aggregate_hour_arrays` vectorise
the group-by with numpy — same records, same order, bit-identical byte
sums (both accumulate per key in input order), same strict/lenient
drop accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import runtime as obs
from ..telemetry.ipfix import IpfixRecord
from ..telemetry.metadata import MetadataStore
from .encoding import EncoderSet
from .records import AggColumns, AggRecord, UNKNOWN_LOCATION


@dataclass
class CompressionStats:
    """Input vs output record accounting for the aggregation stage."""

    records_in: int = 0
    records_out: int = 0
    records_dropped: int = 0

    @property
    def ratio(self) -> float:
        """Output records as a fraction of input (lower = more compression)."""
        if self.records_in == 0:
            return 1.0
        return self.records_out / self.records_in


class HourlyAggregator:
    """Joins and aggregates one hour of IPFIX records at a time.

    ``strict`` controls the corrupt-telemetry policy: strict aggregation
    raises on a record it cannot join or with a non-positive byte count
    (fail loudly in tests and pipelines you control); lenient
    aggregation counts the record in ``stats.records_dropped`` and moves
    on (collectors in the wild emit garbage occasionally, and one bad
    record must not lose an hour of data).
    """

    def __init__(self, metadata: MetadataStore, encoders: EncoderSet = None,
                 strict: bool = True):
        self.metadata = metadata
        self.encoders = encoders or EncoderSet()
        self.strict = strict
        self.stats = CompressionStats()
        # caches: ids -> encoded feature values
        self._dest_cache: Dict[int, Tuple[int, int]] = {}
        self._loc_cache: Dict[int, int] = {}

    def _dest_features(self, dest_prefix_id: int) -> Tuple[int, int]:
        cached = self._dest_cache.get(dest_prefix_id)
        if cached is None:
            region, service = self.metadata.destination_features(dest_prefix_id)
            cached = (self.encoders.region.encode(region),
                      self.encoders.service.encode(service))
            self._dest_cache[dest_prefix_id] = cached
        return cached

    def _location(self, src_prefix_id: int) -> int:
        cached = self._loc_cache.get(src_prefix_id)
        if cached is None:
            metro = self.metadata.source_location(src_prefix_id)
            cached = (UNKNOWN_LOCATION if metro is None
                      else self.encoders.location.encode(metro))
            self._loc_cache[src_prefix_id] = cached
        return cached

    @staticmethod
    def _observe_hour(records_in: int, records_out: int,
                      dropped: int) -> None:
        """Report one aggregated hour to the obs registry (cheap when off)."""
        if not obs.enabled():
            return
        obs.count("pipeline.aggregate.hours")
        obs.count("pipeline.aggregate.records_in", float(records_in))
        obs.count("pipeline.aggregate.records_out", float(records_out))
        if dropped:
            obs.count("pipeline.aggregate.records_dropped", float(dropped))

    def aggregate_hour(self, hour: int,
                       records: Iterable[IpfixRecord]) -> List[AggRecord]:
        """Aggregate one hour of IPFIX into feature-indexed records.

        Records with an hour differing from ``hour`` are rejected — the
        pipeline's hour-chunking is strict (paper §5.1.1 builds everything
        on hour windows).
        """
        sums: Dict[Tuple[int, int, int, int, int, int], float] = {}
        count_in = 0
        dropped = 0
        for record in records:
            if record.hour != hour:
                raise ValueError(
                    f"record hour {record.hour} does not match chunk {hour}")
            count_in += 1
            try:
                if record.bytes <= 0.0:
                    raise ValueError(
                        f"non-positive byte count {record.bytes!r}")
                region, service = self._dest_features(record.dest_prefix_id)
            except (KeyError, ValueError) as exc:
                if self.strict:
                    raise ValueError(
                        f"cannot aggregate record {record!r}: {exc}"
                    ) from exc
                dropped += 1
                continue
            loc = self._location(record.src_prefix_id)
            key = (record.link_id, record.src_asn, record.src_prefix_id,
                   loc, region, service)
            sums[key] = sums.get(key, 0.0) + record.bytes
        out = [
            AggRecord(hour, link_id, src_asn, src_prefix, loc, region,
                      service, total)
            for (link_id, src_asn, src_prefix, loc, region, service), total
            in sums.items()
        ]
        self.stats.records_in += count_in
        self.stats.records_out += len(out)
        self.stats.records_dropped += dropped
        self._observe_hour(count_in, len(out), dropped)
        return out

    # -- vectorised path ---------------------------------------------------

    def aggregate_hour_batch(self, hour: int,
                             records: Iterable[IpfixRecord]) -> List[AggRecord]:
        """Vectorised :meth:`aggregate_hour`: same records, same output.

        Converts the record stream to columns once, then delegates to
        :meth:`aggregate_hour_arrays`.  Output records, their order, the
        encoder code assignments and the drop accounting all match the
        per-record path exactly.
        """
        recs = records if isinstance(records, list) else list(records)
        n = len(recs)
        if n == 0:
            self.stats.records_out += 0
            return []
        hours = np.fromiter((r.hour for r in recs), np.int64, count=n)
        link_ids = np.fromiter((r.link_id for r in recs), np.int64, count=n)
        src_prefix_ids = np.fromiter(
            (r.src_prefix_id for r in recs), np.int64, count=n)
        src_asns = np.fromiter((r.src_asn for r in recs), np.int64, count=n)
        dest_prefix_ids = np.fromiter(
            (r.dest_prefix_id for r in recs), np.int64, count=n)
        bytes_ = np.fromiter((r.bytes for r in recs), np.float64, count=n)
        return self.aggregate_hour_columns(hour, link_ids, src_prefix_ids,
                                           src_asns, dest_prefix_ids, bytes_,
                                           hours=hours).to_records()

    def _raise_for_row(self, hour: int, link_ids: np.ndarray,
                       src_prefix_ids: np.ndarray, src_asns: np.ndarray,
                       dest_prefix_ids: np.ndarray, bytes_: np.ndarray,
                       row: int) -> None:
        """Re-derive and raise the exact per-record strict-mode error."""
        record = IpfixRecord(hour, int(link_ids[row]),
                             int(src_prefix_ids[row]), int(src_asns[row]),
                             int(dest_prefix_ids[row]), float(bytes_[row]))
        try:
            if record.bytes <= 0.0:
                raise ValueError(f"non-positive byte count {record.bytes!r}")
            self.metadata.destination_features(record.dest_prefix_id)
        except (KeyError, ValueError) as exc:
            raise ValueError(
                f"cannot aggregate record {record!r}: {exc}") from exc
        raise AssertionError(f"row {row} flagged invalid but re-validates")

    def aggregate_hour_arrays(
        self,
        hour: int,
        link_ids: np.ndarray,
        src_prefix_ids: np.ndarray,
        src_asns: np.ndarray,
        dest_prefix_ids: np.ndarray,
        bytes_: np.ndarray,
        hours: Optional[np.ndarray] = None,
    ) -> List[AggRecord]:
        """Columnar :meth:`aggregate_hour`, returning record objects."""
        return self.aggregate_hour_columns(
            hour, link_ids, src_prefix_ids, src_asns, dest_prefix_ids,
            bytes_, hours=hours).to_records()

    def aggregate_hour_columns(
        self,
        hour: int,
        link_ids: np.ndarray,
        src_prefix_ids: np.ndarray,
        src_asns: np.ndarray,
        dest_prefix_ids: np.ndarray,
        bytes_: np.ndarray,
        hours: Optional[np.ndarray] = None,
    ) -> AggColumns:
        """Aggregate one hour given as aligned columns (the fast path).

        Semantics match :meth:`aggregate_hour` exactly, including the
        order encoders assign codes in and the order of the returned
        rows (first-seen key order), so the two paths are
        interchangeable mid-stream — ``.to_records()`` on the result
        equals the serial output record for record.  ``hours`` is
        optional; columnar producers that emit one hour at a time may
        omit it.
        """
        if hours is not None:
            mismatched = np.nonzero(np.asarray(hours) != hour)[0]
            if mismatched.size:
                raise ValueError(
                    f"record hour {int(np.asarray(hours)[mismatched[0]])} "
                    f"does not match chunk {hour}")
        link_ids = np.asarray(link_ids, dtype=np.int64)
        src_prefix_ids = np.asarray(src_prefix_ids, dtype=np.int64)
        src_asns = np.asarray(src_asns, dtype=np.int64)
        dest_prefix_ids = np.asarray(dest_prefix_ids, dtype=np.int64)
        bytes_ = np.asarray(bytes_, dtype=np.float64)
        n = len(bytes_)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return AggColumns(hour, empty, empty, empty, empty, empty,
                              empty, np.empty(0, dtype=np.float64))
        columns = (link_ids, src_prefix_ids, src_asns, dest_prefix_ids,
                   bytes_)

        bad_bytes = bytes_ <= 0.0
        # The strict path must fail on the same record the serial walk
        # fails on: nothing past the first bad-bytes row may be encoded.
        limit = n
        if self.strict and bad_bytes.any():
            limit = int(np.argmax(bad_bytes))
        good = ~bad_bytes
        good[limit:] = False
        good_rows = np.nonzero(good)[0]

        # destination join, per unique prefix, in first-occurrence order
        # (encoder codes are assigned first-seen, like the serial walk)
        uniq_dest, first_dest, inv_dest = np.unique(
            dest_prefix_ids[good_rows], return_index=True,
            return_inverse=True)
        dest_region = np.full(len(uniq_dest), -1, dtype=np.int64)
        dest_service = np.full(len(uniq_dest), -1, dtype=np.int64)
        dest_known = np.zeros(len(uniq_dest), dtype=bool)
        for ui in np.argsort(first_dest, kind="stable"):
            try:
                region, service = self._dest_features(int(uniq_dest[ui]))
            except (KeyError, ValueError):
                if self.strict:
                    self._raise_for_row(hour, *columns,
                                        row=int(good_rows[first_dest[ui]]))
                continue
            dest_region[ui] = region
            dest_service[ui] = service
            dest_known[ui] = True
        if self.strict and limit < n:
            self._raise_for_row(hour, *columns, row=limit)

        valid_good = dest_known[inv_dest]
        valid_rows = good_rows[valid_good]
        dropped = n - len(valid_rows)

        # source-location join, per unique prefix, first-occurrence order
        uniq_src, first_src, inv_src = np.unique(
            src_prefix_ids[valid_rows], return_index=True,
            return_inverse=True)
        src_loc = np.empty(len(uniq_src), dtype=np.int64)
        for ui in np.argsort(first_src, kind="stable"):
            src_loc[ui] = self._location(int(uniq_src[ui]))

        # group-by over the full encoded feature tuple
        key_columns = (
            link_ids[valid_rows],
            src_asns[valid_rows],
            src_prefix_ids[valid_rows],
            src_loc[inv_src],
            dest_region[inv_dest][valid_good],
            dest_service[inv_dest][valid_good],
        )
        combined = _combine_group_codes(key_columns)
        _, first_key, inv_key = np.unique(
            combined, return_index=True, return_inverse=True)
        # bincount accumulates weights in input order — bit-identical to
        # the serial walk's per-key running sums
        sums = np.bincount(inv_key.ravel(), weights=bytes_[valid_rows],
                           minlength=len(first_key))
        order = np.argsort(first_key, kind="stable")
        rep = first_key[order]  # representative rows carry the key values
        out = AggColumns(hour, key_columns[0][rep], key_columns[1][rep],
                         key_columns[2][rep], key_columns[3][rep],
                         key_columns[4][rep], key_columns[5][rep],
                         sums[order])
        self.stats.records_in += n
        self.stats.records_out += out.n_records
        self.stats.records_dropped += dropped
        self._observe_hour(n, out.n_records, dropped)
        return out


def _combine_group_codes(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Mixed-radix encode aligned key columns into one int64 per row.

    Columns are folded into a running code using their value *range* as
    the radix (one O(n) min/max, no sort).  If the combined cardinality
    would overflow int64, the running code and the offending column are
    densified first, so arbitrary key magnitudes stay safe.
    """
    n = len(columns[0])
    combined = np.zeros(n, dtype=np.int64)
    cardinality = 1
    for column in columns:
        if n == 0:
            break
        lo = int(column.min())
        codes = column - lo
        radix = int(column.max()) - lo + 1
        if cardinality > (2 ** 62) // radix:
            # densify both sides before folding to keep codes small
            uniq_c, combined = np.unique(combined, return_inverse=True)
            combined = combined.ravel().astype(np.int64)
            cardinality = max(len(uniq_c), 1)
            uniq_k, codes = np.unique(codes, return_inverse=True)
            codes = codes.ravel()
            radix = max(len(uniq_k), 1)
            if cardinality > (2 ** 62) // radix:
                raise ValueError(
                    "group key cardinality exceeds int64 mixed-radix range")
        combined = combined * radix + codes
        cardinality *= radix
    return combined
