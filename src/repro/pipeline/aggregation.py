"""Hourly aggregation of IPFIX into feature-indexed chunks (paper §4.2).

Aggregation (1) sums bytes over all raw flow records that share the TIPSY
feature tuple and ingress link within an hour, and (2) joins metadata:
Geo-IP source location, destination region and service type.  The paper
reports the aggregated IPFIX at ~2% of the raw size; ``CompressionStats``
tracks the equivalent ratio here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..telemetry.ipfix import IpfixRecord
from ..telemetry.metadata import MetadataStore
from .encoding import EncoderSet
from .records import AggRecord, UNKNOWN_LOCATION


@dataclass
class CompressionStats:
    """Input vs output record accounting for the aggregation stage."""

    records_in: int = 0
    records_out: int = 0
    records_dropped: int = 0

    @property
    def ratio(self) -> float:
        """Output records as a fraction of input (lower = more compression)."""
        if self.records_in == 0:
            return 1.0
        return self.records_out / self.records_in


class HourlyAggregator:
    """Joins and aggregates one hour of IPFIX records at a time.

    ``strict`` controls the corrupt-telemetry policy: strict aggregation
    raises on a record it cannot join or with a non-positive byte count
    (fail loudly in tests and pipelines you control); lenient
    aggregation counts the record in ``stats.records_dropped`` and moves
    on (collectors in the wild emit garbage occasionally, and one bad
    record must not lose an hour of data).
    """

    def __init__(self, metadata: MetadataStore, encoders: EncoderSet = None,
                 strict: bool = True):
        self.metadata = metadata
        self.encoders = encoders or EncoderSet()
        self.strict = strict
        self.stats = CompressionStats()
        # caches: ids -> encoded feature values
        self._dest_cache: Dict[int, Tuple[int, int]] = {}
        self._loc_cache: Dict[int, int] = {}

    def _dest_features(self, dest_prefix_id: int) -> Tuple[int, int]:
        cached = self._dest_cache.get(dest_prefix_id)
        if cached is None:
            region, service = self.metadata.destination_features(dest_prefix_id)
            cached = (self.encoders.region.encode(region),
                      self.encoders.service.encode(service))
            self._dest_cache[dest_prefix_id] = cached
        return cached

    def _location(self, src_prefix_id: int) -> int:
        cached = self._loc_cache.get(src_prefix_id)
        if cached is None:
            metro = self.metadata.source_location(src_prefix_id)
            cached = (UNKNOWN_LOCATION if metro is None
                      else self.encoders.location.encode(metro))
            self._loc_cache[src_prefix_id] = cached
        return cached

    def aggregate_hour(self, hour: int,
                       records: Iterable[IpfixRecord]) -> List[AggRecord]:
        """Aggregate one hour of IPFIX into feature-indexed records.

        Records with an hour differing from ``hour`` are rejected — the
        pipeline's hour-chunking is strict (paper §5.1.1 builds everything
        on hour windows).
        """
        sums: Dict[Tuple[int, int, int, int, int, int], float] = {}
        count_in = 0
        dropped = 0
        for record in records:
            if record.hour != hour:
                raise ValueError(
                    f"record hour {record.hour} does not match chunk {hour}")
            count_in += 1
            try:
                if record.bytes <= 0.0:
                    raise ValueError(
                        f"non-positive byte count {record.bytes!r}")
                region, service = self._dest_features(record.dest_prefix_id)
            except (KeyError, ValueError) as exc:
                if self.strict:
                    raise ValueError(
                        f"cannot aggregate record {record!r}: {exc}"
                    ) from exc
                dropped += 1
                continue
            loc = self._location(record.src_prefix_id)
            key = (record.link_id, record.src_asn, record.src_prefix_id,
                   loc, region, service)
            sums[key] = sums.get(key, 0.0) + record.bytes
        out = [
            AggRecord(hour, link_id, src_asn, src_prefix, loc, region,
                      service, total)
            for (link_id, src_asn, src_prefix, loc, region, service), total
            in sums.items()
        ]
        self.stats.records_in += count_in
        self.stats.records_out += len(out)
        self.stats.records_dropped += dropped
        return out
