"""BGP message and route types.

These types are used by the WAN edge-router model (:mod:`repro.bgp.rib`),
by the BMP telemetry feed (:mod:`repro.telemetry.bmp`), and by the
congestion mitigation system when it injects withdrawals (paper §4.4).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


class Origin(enum.IntEnum):
    """BGP ORIGIN attribute (lower is preferred)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class Route:
    """A BGP route: prefix plus path attributes.

    Attributes:
        prefix: destination prefix in CIDR notation.
        as_path: AS path, nearest AS first; the origin AS is last.
        next_hop: opaque next-hop identifier (router name or peer name).
        local_pref: LOCAL_PREF (higher preferred); assigned on import.
        med: MULTI_EXIT_DISC (lower preferred, comparable between routes
            from the same neighbor AS).
        origin: ORIGIN attribute.
    """

    prefix: str
    as_path: Tuple[int, ...]
    next_hop: str
    local_pref: int = 100
    med: int = 0
    origin: Origin = Origin.IGP

    @property
    def origin_as(self) -> Optional[int]:
        return self.as_path[-1] if self.as_path else None

    @property
    def neighbor_as(self) -> Optional[int]:
        return self.as_path[0] if self.as_path else None

    def has_loop(self, asn: int) -> bool:
        """AS-path loop detection: is ``asn`` already on the path?"""
        return asn in self.as_path

    def prepended(self, asn: int, times: int = 1) -> "Route":
        """A copy of this route with ``asn`` prepended ``times`` times."""
        if times < 1:
            raise ValueError("prepend count must be >= 1")
        return Route(
            prefix=self.prefix,
            as_path=(asn,) * times + self.as_path,
            next_hop=self.next_hop,
            local_pref=self.local_pref,
            med=self.med,
            origin=self.origin,
        )


_message_counter = itertools.count()


@dataclass(frozen=True)
class Announcement:
    """A BGP UPDATE announcing a route on a session."""

    session: str
    route: Route
    timestamp: float = 0.0
    seq: int = field(default_factory=lambda: next(_message_counter))


@dataclass(frozen=True)
class Withdrawal:
    """A BGP UPDATE withdrawing a prefix from a session."""

    session: str
    prefix: str
    timestamp: float = 0.0
    seq: int = field(default_factory=lambda: next(_message_counter))


#: either kind of BGP UPDATE a session can carry
Message = Union[Announcement, Withdrawal]
