"""Routing information bases for the WAN edge-router model.

Each WAN edge router terminates eBGP sessions (peering links).  The RIB
model here is deliberately faithful-but-small: an Adj-RIB-In per session,
a Loc-RIB computed by the decision process, and an outbound advertisement
set per session that the congestion mitigation system manipulates by
injecting withdrawals (paper §4.4).  The BMP feed (paper §4.1) mirrors
Adj-RIB-In contents.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .messages import Announcement, Message, Route, Withdrawal
from .policy import best_route


class AdjRibIn:
    """Per-session inbound RIB: the last route received per prefix."""

    def __init__(self, session: str):
        self.session = session
        self._routes: Dict[str, Route] = {}

    def apply(self, message: Message) -> None:
        """Apply an Announcement or Withdrawal for this session."""
        if isinstance(message, Announcement):
            if message.session != self.session:
                raise ValueError("message for a different session")
            self._routes[message.route.prefix] = message.route
        elif isinstance(message, Withdrawal):
            if message.session != self.session:
                raise ValueError("message for a different session")
            self._routes.pop(message.prefix, None)
        else:
            raise TypeError(f"unsupported message type {type(message)!r}")

    def route_for(self, prefix: str) -> Optional[Route]:
        return self._routes.get(prefix)

    def prefixes(self) -> Tuple[str, ...]:
        return tuple(self._routes)

    def __len__(self) -> int:
        return len(self._routes)


class LocRib:
    """Best routes per prefix across all of a router's sessions."""

    def __init__(self):
        self._best: Dict[str, Route] = {}

    def recompute(self, prefix: str, candidates: Iterable[Route]) -> Optional[Route]:
        """Re-run the decision process for one prefix."""
        best = best_route(candidates)
        if best is None:
            self._best.pop(prefix, None)
        else:
            self._best[prefix] = best
        return best

    def best_for(self, prefix: str) -> Optional[Route]:
        return self._best.get(prefix)

    def prefixes(self) -> Tuple[str, ...]:
        return tuple(self._best)


class EdgeRouter:
    """A WAN edge router: sessions in, decision process, advertisements out.

    The router both *receives* routes from peers (feeding BMP) and
    *advertises* the WAN's anycast prefixes to peers.  CMS-injected
    withdrawals remove prefixes from a session's advertisement set; later
    re-announcement restores them.
    """

    def __init__(self, name: str):
        self.name = name
        self._sessions: Dict[str, AdjRibIn] = {}
        self.loc_rib = LocRib()
        # outbound: session -> set of advertised prefixes
        self._advertised: Dict[str, Set[str]] = {}
        self._log: List[object] = []

    # -- session management -------------------------------------------------

    def add_session(self, session: str) -> None:
        if session in self._sessions:
            raise ValueError(f"session {session!r} already exists on {self.name}")
        self._sessions[session] = AdjRibIn(session)
        self._advertised[session] = set()

    def sessions(self) -> Tuple[str, ...]:
        return tuple(self._sessions)

    def adj_rib_in(self, session: str) -> AdjRibIn:
        return self._sessions[session]

    # -- inbound ------------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Apply an inbound message and recompute the affected prefix."""
        session = message.session
        if session not in self._sessions:
            raise KeyError(f"unknown session {session!r} on {self.name}")
        self._sessions[session].apply(message)
        prefix = message.route.prefix if isinstance(message, Announcement) else message.prefix
        candidates = [
            rib.route_for(prefix)
            for rib in self._sessions.values()
            if rib.route_for(prefix) is not None
        ]
        self.loc_rib.recompute(prefix, candidates)
        self._log.append(message)

    # -- outbound (anycast advertisements, CMS control) ----------------------

    def announce(self, session: str, prefix: str) -> Announcement:
        """Advertise a WAN prefix on a session; returns the message sent."""
        self._advertised[session].add(prefix)
        message = Announcement(session=session, route=Route(prefix=prefix, as_path=(), next_hop=self.name))
        self._log.append(message)
        return message

    def withdraw(self, session: str, prefix: str) -> Withdrawal:
        """Withdraw a WAN prefix from a session (CMS injection)."""
        self._advertised[session].discard(prefix)
        message = Withdrawal(session=session, prefix=prefix)
        self._log.append(message)
        return message

    def is_advertised(self, session: str, prefix: str) -> bool:
        return prefix in self._advertised.get(session, ())

    def advertised(self, session: str) -> Tuple[str, ...]:
        return tuple(sorted(self._advertised.get(session, ())))

    @property
    def message_log(self) -> Tuple[object, ...]:
        """All messages processed or emitted, in order (consumed by BMP)."""
        return tuple(self._log)
