"""Ground-truth ingress resolution for the synthetic Internet.

Given a flow (source AS, source metro, source /24, destination prefix) and
the current advertisement state, the simulator computes the distribution of
the flow's bytes over the WAN's peering links.  This plays the role the
real Internet played for Azure: the TIPSY predictor never calls it — it
only sees IPFIX-style telemetry derived from its output.

The resolution pipeline per flow:

1. **Origin egress.** If the source AS has usable peering links of its own
   (respecting pockets — isolated islands that can only use local exits),
   it delivers directly.  Otherwise it hands off to one or two ranked
   provider next-hops (the second with a small weight, modelling egress
   load balancing).
2. **Path walk.** Each intermediate AS either delivers (if it has usable
   links) or forwards to its best-ranked provider; the flow's geographic
   "entry point" advances to the nearest metro of each next AS's footprint.
3. **Hot-potato link choice.** The delivering AS ranks its usable links by
   distance from the flow's entry metro; links within a tolerance form an
   ECMP set.  A stable per-flow hash picks the primary; the byte share is
   split ~[p, (1-p)·w, (1-p)·(1-w)] over the first three links, with p
   drawn per flow from a configurable range.  This produces the imperfect
   top-1 oracle of paper Figure 5.
4. **Slow drift.** Each flow has deterministic "shift days" after which its
   link rotation (minor) or origin next-hop (major) changes — the
   Internet's slow routing churn behind paper Figure 10.

A crucial design choice (DESIGN.md §4): every hash-based choice is keyed
by the *identity of the candidate set*, not just the flow.  Withdrawing a
link therefore re-draws the choice among the survivors — deterministic
(the same withdrawal always lands the same way, so models that saw an
outage in training predict its repeat accurately, paper Table 6) yet
unknowable from pre-withdrawal history alone (models that never saw it
degrade, paper Table 7).  Geography still constrains the outcome, which
is why the AL+G completion recovers much of the loss.

Results are cached per (flow, removal-key, drift-state); routing tables
are cached per seeded-neighbor set, so week-long simulations stay fast.
The hot caches are bounded LRU maps (``SimulatorParams`` capacities) so
those simulations also stay bounded in memory; table-cache misses are
repaired by dirty-set recomputation from a pinned full-availability
table (``propagation.update_routing_table``) instead of full rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs import runtime as obs
from ..topology.asgraph import ASGraph, Pocket
from ..topology.wan import CloudWAN, PeeringLink
from ..util.cache import LruDict
from ..util.hashing import geometric_day, mix64, rotation, unit
from .propagation import (RoutingTable, compute_routing_table, default_bias,
                          update_routing_table)
from .state import AdvertisementState

#: (link_id, fraction) pairs, descending fraction; fractions sum to 1.0
ShareVector = Tuple[Tuple[int, float], ...]

_EMPTY_REMOVED: FrozenSet[int] = frozenset()


@dataclass
class SimulatorParams:
    """Behavioural knobs of the synthetic Internet's routing."""

    # a delivering AS considers its nearest `candidate_pool_size` links
    # within `reroute_radius_km` of the closest one
    candidate_pool_size: int = 5
    reroute_radius_km: float = 2500.0
    # geometric decay of link preference with distance rank: the nearest
    # link is chosen as primary with probability ~ 1/(sum of locality^i).
    # Smaller = more strictly hot-potato; larger = more regional spread.
    locality: float = 0.35
    # per-flow primary byte share lies in [lo, hi]; the skew exponent
    # biases the draw toward hi, so many flows are near-single-link (their
    # secondaries vanish under IPFIX sampling and history has no fallback
    # to offer when their link is withdrawn — the paper's unseen-outage
    # failure mode) while a spread-out minority keeps oracles imperfect.
    primary_share_lo: float = 0.60
    primary_share_hi: float = 0.995
    primary_share_skew: float = 2.0
    # fraction of the non-primary remainder that goes to the 2nd link
    secondary_weight: float = 0.75
    # weight of the origin AS's secondary next-hop (egress load balancing)
    origin_split: float = 0.15
    # daily probability that a flow's link rotation / next-hop shifts
    minor_drift_daily: float = 0.006
    major_drift_daily: float = 0.002
    max_walk_depth: int = 24
    # ingress TE (AS-path prepending): each prepend hop adds this much
    # effective distance to a link's hot-potato rank, and each upstream
    # AS honours the hint only with this probability (§2: prepending is
    # coarse and "may just be ignored by ASes along the path")
    te_prepend_km: float = 1200.0
    te_compliance: float = 0.85
    # bounded-cache capacities (<= 0 = unbounded).  Week-long runs touch
    # millions of (flow, removal-key, drift) share keys and an open-ended
    # set of removal keys; these caps turn that into bounded memory with
    # LRU recency doing the keeping (docs/architecture.md, cache table)
    share_cache_size: int = 262144
    visited_cache_size: int = 131072
    table_cache_size: int = 256


class IngressSimulator:
    """Resolves flows to peering-link byte shares under a routing state."""

    def __init__(
        self,
        graph: ASGraph,
        wan: CloudWAN,
        params: Optional[SimulatorParams] = None,
        seed: int = 0,
    ):
        self.graph = graph
        self.wan = wan
        self.params = params or SimulatorParams()
        self.seed = seed
        self._bias = default_bias(graph, seed)
        self._links_by_peer: Dict[int, Tuple[PeeringLink, ...]] = {
            asn: wan.links_of_peer(asn) for asn in wan.peer_asns
        }
        self._peer_asns = frozenset(a for a in wan.peer_asns if a in graph)
        p = self.params
        self._table_by_removed: LruDict[FrozenSet[int], RoutingTable] = \
            LruDict(p.table_cache_size)
        self._table_by_seeded: LruDict[FrozenSet[int], RoutingTable] = \
            LruDict(p.table_cache_size)
        self._share_cache: LruDict[Tuple[Any, ...], ShareVector] = \
            LruDict(p.share_cache_size)
        self._visited_cache: LruDict[Tuple[Any, ...], Tuple[int, ...]] = \
            LruDict(p.visited_cache_size)
        self._entry_cache: Dict[Tuple[int, str], str] = {}
        self._removed_peers_cache: LruDict[FrozenSet[int], FrozenSet[int]] = \
            LruDict(p.table_cache_size)
        self._drift_cache: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        self._ranked_cache: Dict[Tuple[Any, ...], Tuple[PeeringLink, ...]] = {}
        self._p_cache: Dict[Tuple[int, int], float] = {}
        # the full-availability table every incremental update derives
        # from; pinned outside the LRU so eviction can never force a
        # second full rebuild
        self._base_table_pin: Optional[RoutingTable] = None
        # hit/miss counters for the ranked candidate pools (the LRU
        # caches carry their own counters)
        self._ranked_hits = 0
        self._ranked_misses = 0
        self._table_full_rebuilds = 0
        self._table_incremental_updates = 0

    # -- routing tables -----------------------------------------------------

    def seeded_for(self, removed: FrozenSet[int]) -> FrozenSet[int]:
        """Peers that keep >= 1 available link once ``removed`` is gone."""
        return frozenset(
            asn
            for asn in self._peer_asns
            if any(l.link_id not in removed for l in self._links_by_peer[asn])
        )

    def _base_table(self) -> RoutingTable:
        """Full-availability table (computed once, pinned forever)."""
        if self._base_table_pin is None:
            self._table_full_rebuilds += 1
            self._base_table_pin = compute_routing_table(
                self.graph, self._peer_asns, self._bias)
        return self._base_table_pin

    def routing_table(self, removed: FrozenSet[int]) -> RoutingTable:
        """AS-level routing table for a set of removed links (cached).

        Cache misses no longer pay a full rebuild: the table for a new
        seeded-neighbor set is derived from the pinned full-availability
        table by dirty-set recomputation (``update_routing_table``),
        bit-identical to a from-scratch compute.
        """
        table = self._table_by_removed.get(removed)
        if table is not None:
            return table
        seeded = self.seeded_for(removed)
        table = self._table_by_seeded.get(seeded)
        if table is None:
            base = self._base_table()
            if seeded == base.seeded:
                table = base
            else:
                self._table_incremental_updates += 1
                table = update_routing_table(self.graph, base, seeded,
                                             self._bias)
            self._table_by_seeded[seeded] = table
        self._table_by_removed[removed] = table
        return table

    def install_table(self, removed: FrozenSet[int],
                      table: RoutingTable) -> None:
        """Adopt a routing table computed elsewhere (e.g. by a worker
        process via ``perf.parallel`` table precomputation).

        Raises ``ValueError`` if the table's seeded set does not match
        what this simulator would compute for ``removed``.
        """
        seeded = self.seeded_for(removed)
        if table.seeded != seeded:
            raise ValueError(
                f"table seeded set does not match removal key {sorted(removed)}")
        self._table_by_seeded[seeded] = table
        self._table_by_removed[removed] = table

    def as_distance(self, asn: int) -> Optional[int]:
        """AS-hop distance to the WAN under full availability (Figure 2)."""
        return self.routing_table(frozenset()).distance(asn)

    # -- drift ----------------------------------------------------------------

    def drift_days(self, src_asn: int, src_prefix: int,
                   dest_prefix: int) -> Tuple[int, int]:
        """(minor shift day, major shift day) for a flow (memoized)."""
        key = (src_asn, src_prefix, dest_prefix)
        days = self._drift_cache.get(key)
        if days is None:
            days = (
                geometric_day(self.params.minor_drift_daily,
                              src_asn, src_prefix, dest_prefix, 11,
                              seed=self.seed),
                geometric_day(self.params.major_drift_daily,
                              src_asn, src_prefix, dest_prefix, 13,
                              seed=self.seed),
            )
            self._drift_cache[key] = days
        return days

    def drift_state(self, src_asn: int, src_prefix: int, dest_prefix: int,
                    day: Optional[int]) -> Tuple[bool, bool]:
        """(minor_shifted, major_shifted) for a flow on a given day."""
        if day is None:
            return (False, False)
        minor_day, major_day = self.drift_days(src_asn, src_prefix, dest_prefix)
        return (day >= minor_day, day >= major_day)

    # -- resolution -----------------------------------------------------------

    def resolve_shares(
        self,
        src_asn: int,
        src_metro: str,
        src_prefix: int,
        dest_prefix: int,
        state: AdvertisementState,
        day: Optional[int] = None,
    ) -> ShareVector:
        """Distribution of a flow's bytes over peering links (cached).

        Returns an empty tuple if the flow has no route to the WAN (all
        candidate paths withdrawn) — callers account those bytes as lost.
        """
        removed = state.removal_key(dest_prefix)
        prepends = state.prepend_key(dest_prefix)
        minor, major = self.drift_state(src_asn, src_prefix, dest_prefix, day)
        key = (src_asn, src_metro, src_prefix, dest_prefix, removed,
               prepends, minor, major)
        shares = self._share_cache.get(key)
        if shares is not None:
            return shares
        if prepends:
            # TE prefixes are rare; resolve them fully
            shares = self._resolve(src_asn, src_metro, src_prefix,
                                   dest_prefix, removed, minor, major,
                                   prepends=dict(prepends))
        else:
            shares = self._resolve_with_shortcut(
                src_asn, src_metro, src_prefix, dest_prefix, removed,
                minor, major)
        self._share_cache[key] = shares
        return shares

    def _resolve_with_shortcut(
        self, src_asn: int, src_metro: str, src_prefix: int, dest_prefix: int,
        removed: FrozenSet[int], minor: bool, major: bool,
    ) -> ShareVector:
        """Skip re-resolution for flows a removal cannot affect.

        A removal changes a flow's outcome only if (a) a removed link
        belongs to an AS the flow delivers to under full availability, or
        (b) AS-level routing changed (some peer fully de-seeded) for an AS
        the flow's path walk actually visited.  Outside those cases the
        full-availability result is reused, which makes week-long
        simulations with dozens of concurrent outages cheap.
        """
        if not removed:
            return self._resolve(src_asn, src_metro, src_prefix, dest_prefix,
                                 removed, minor, major)
        base_key = (src_asn, src_metro, src_prefix, dest_prefix,
                    _EMPTY_REMOVED, (), minor, major)
        base = self._share_cache.get(base_key, count=False)
        if base is None:
            base = self._resolve(src_asn, src_metro, src_prefix,
                                 dest_prefix, _EMPTY_REMOVED, minor, major)
            self._share_cache[base_key] = base
        delivering = {self.wan.link(l).peer_asn for l, _ in base}
        if delivering & self._removed_peers(removed):
            return self._resolve(src_asn, src_metro, src_prefix, dest_prefix,
                                 removed, minor, major)
        base_table = self.routing_table(_EMPTY_REMOVED)
        new_table = self.routing_table(removed)
        if new_table is not base_table:
            visited = self._visited_cache.get(base_key, count=False)
            if visited is None:
                # the LRU dropped the base walk's AS trail: without it
                # the shortcut cannot prove the removal is irrelevant,
                # so resolve fully (correctness over speed)
                return self._resolve(src_asn, src_metro, src_prefix,
                                     dest_prefix, removed, minor, major)
            for asn in visited:
                if base_table.get(asn) != new_table.get(asn):
                    return self._resolve(src_asn, src_metro, src_prefix,
                                         dest_prefix, removed, minor, major)
        return base

    def _removed_peers(self, removed: FrozenSet[int]) -> FrozenSet[int]:
        cached = self._removed_peers_cache.get(removed)
        if cached is None:
            cached = frozenset(self.wan.link(l).peer_asn for l in removed)
            self._removed_peers_cache[removed] = cached
        return cached

    def _resolve(
        self,
        src_asn: int,
        src_metro: str,
        src_prefix: int,
        dest_prefix: int,
        removed: FrozenSet[int],
        minor: bool,
        major: bool,
        prepends: Optional[Dict[int, int]] = None,
    ) -> ShareVector:
        if src_asn == self.wan.asn:
            raise ValueError("internal WAN traffic has no ingress link")
        if src_asn not in self.graph:
            return ()
        table = self.routing_table(removed)
        node = self.graph.node(src_asn)
        rotate_extra = (1 if minor else 0) + (2 if major else 0)
        accum: Dict[int, float] = {}
        visited: List[int] = [src_asn]

        def add(links: Sequence[PeeringLink], entry: str, weight: float) -> None:
            for link_id, frac in self._link_shares(
                links, entry, src_prefix, dest_prefix, rotate_extra,
                prepends=prepends,
            ):
                accum[link_id] = accum.get(link_id, 0.0) + frac * weight

        pocket = node.pocket_for(src_metro)
        own = [l for l in self._links_by_peer.get(src_asn, ()) if l.link_id not in removed]
        if pocket is not None:
            own = [l for l in own if l.metro in pocket.metros]
            visited.extend(pocket.providers)

        if own:
            add(own, src_metro, 1.0)
        else:
            candidates = self._origin_candidates(src_asn, pocket, table)
            if not candidates:
                self._remember_visited(src_asn, src_metro, src_prefix,
                                       dest_prefix, removed, minor, major,
                                       visited)
                return ()
            # keyed by the candidate set: a change in the viable next-hops
            # re-draws the choice among the survivors
            rot = rotation(len(candidates), src_asn, src_prefix, dest_prefix, 3,
                           *candidates, seed=self.seed)
            ordered = candidates[rot:] + candidates[:rot]
            if major and len(ordered) > 1:
                ordered = ordered[1:] + ordered[:1]
            picks = ordered[:2]
            if len(picks) == 1:
                weights = [1.0]
            else:
                weights = [1.0 - self.params.origin_split, self.params.origin_split]
            delivered_weight = 0.0
            for nh, w in zip(picks, weights):
                entry = self._entry_metro(nh, src_metro)
                outcome = self._walk(nh, entry, src_prefix, dest_prefix,
                                     removed, table, visited)
                if outcome is None:
                    continue
                d_metro, links = outcome
                add(links, d_metro, w)
                delivered_weight += w
            if delivered_weight <= 0.0:
                self._remember_visited(src_asn, src_metro, src_prefix,
                                       dest_prefix, removed, minor, major,
                                       visited)
                return ()
            if delivered_weight < 1.0:
                accum = {k: v / delivered_weight for k, v in accum.items()}

        self._remember_visited(src_asn, src_metro, src_prefix, dest_prefix,
                               removed, minor, major, visited)
        shares = tuple(sorted(accum.items(), key=lambda kv: (-kv[1], kv[0])))
        return shares

    def _remember_visited(self, src_asn: int, src_metro: str, src_prefix: int,
                          dest_prefix: int, removed: FrozenSet[int],
                          minor: bool, major: bool,
                          visited: List[int]) -> None:
        """Record the ASes a base resolution touched (shortcut support)."""
        if not removed:
            key = (src_asn, src_metro, src_prefix, dest_prefix,
                   _EMPTY_REMOVED, (), minor, major)
            self._visited_cache[key] = tuple(visited)

    def _origin_candidates(self, src_asn: int, pocket: Optional[Pocket],
                           table: RoutingTable) -> List[int]:
        """Ranked next-hop ASNs for an origin that cannot deliver itself."""
        if pocket is not None:
            candidates = [p for p in pocket.providers if p in table]
            if candidates:
                return candidates
        info = table.get(src_asn)
        if info is None:
            return []
        return list(info.nexthops)

    def _walk(
        self,
        asn: int,
        entry_metro: str,
        src_prefix: int,
        dest_prefix: int,
        removed: FrozenSet[int],
        table: RoutingTable,
        visited: List[int],
    ) -> Optional[Tuple[str, List[PeeringLink]]]:
        """Follow the AS-level route until an AS with usable links delivers."""
        for _ in range(self.params.max_walk_depth):
            visited.append(asn)
            info = table.get(asn)
            if info is None:
                return None
            if info.direct:
                links = [l for l in self._links_by_peer.get(asn, ())
                         if l.link_id not in removed]
                if links:
                    return entry_metro, links
                return None
            if not info.nexthops:
                return None
            nexthops = info.nexthops
            idx = rotation(len(nexthops), asn, src_prefix, dest_prefix, 5,
                           *nexthops, seed=self.seed)
            nh = nexthops[idx]
            entry_metro = self._entry_metro(nh, entry_metro)
            asn = nh
        return None

    def _entry_metro(self, asn: int, from_metro: str) -> str:
        """Where traffic coming from ``from_metro`` enters AS ``asn``."""
        key = (asn, from_metro)
        entry = self._entry_cache.get(key)
        if entry is None:
            footprint = self.graph.node(asn).footprint
            entry = self.graph.metros.nearest(from_metro, footprint)
            self._entry_cache[key] = entry
        return entry

    def _link_shares(
        self,
        links: Sequence[PeeringLink],
        entry_metro: str,
        src_prefix: int,
        dest_prefix: int,
        rotate_extra: int,
        prepends: Optional[Dict[int, int]] = None,
    ) -> ShareVector:
        """Hot-potato byte-share split over a delivering AS's links.

        The nearest ``candidate_pool_size`` links within
        ``reroute_radius_km`` of the closest exit form the candidate pool.
        A deterministic weighted shuffle (Efraimidis-Spirakis with
        geometric weights by distance rank) orders the pool per flow —
        biased toward the nearest exit but not slavishly — and the byte
        shares [p, (1-p)w, (1-p)(1-w)] go to the first three links.

        The shuffle keys include the pool's membership, so withdrawing a
        pool member re-draws the whole assignment among the survivors:
        deterministic (repeats identically, hence learnable once seen)
        but uncorrelated with the pre-withdrawal ranking (hence opaque to
        pure history).
        """
        metros = self.graph.metros

        def effective_distance(link: PeeringLink) -> float:
            distance = metros.distance_km(entry_metro, link.metro)
            if prepends:
                times = prepends.get(link.link_id)
                if times:
                    # the hint is honoured per (delivering link, flow)
                    # only with te_compliance probability
                    honoured = unit(link.link_id, src_prefix, dest_prefix,
                                    23, seed=self.seed)
                    if honoured < self.params.te_compliance:
                        distance += times * self.params.te_prepend_km
            return distance

        # the pool cache is only valid without TE state: compliance is
        # per-flow, so prepended rankings are computed fresh (TE prefixes
        # are rare — 0.7% in the paper's network)
        rank_key = (entry_metro, tuple(l.link_id for l in links))
        pool = None if prepends else self._ranked_cache.get(rank_key)
        if not prepends:
            if pool is None:
                self._ranked_misses += 1
            else:
                self._ranked_hits += 1
        if pool is None:
            ranked = sorted(
                links,
                key=lambda l: (effective_distance(l), l.link_id),
            )
            d0 = effective_distance(ranked[0])
            radius = d0 + self.params.reroute_radius_km
            pool = tuple(
                l for l in ranked[: self.params.candidate_pool_size]
                if effective_distance(l) <= radius
            )
            if not prepends:
                self._ranked_cache[rank_key] = pool
        # fold the pool membership into one hash base so each member draw
        # is a single extra mixing round
        pool_base = mix64(17, *(l.link_id for l in pool), seed=self.seed)
        locality = self.params.locality
        keyed = []
        for rank, link in enumerate(pool):
            weight = locality ** rank
            u = unit(src_prefix, dest_prefix, link.link_id, seed=pool_base)
            keyed.append((max(u, 1e-12) ** (1.0 / weight), link))
        keyed.sort(key=lambda t: (-t[0], t[1].link_id))
        ordered = [link for _key, link in keyed]
        if rotate_extra and len(ordered) > 1:
            shift = rotate_extra % len(ordered)
            ordered = ordered[shift:] + ordered[:shift]

        p_key = (src_prefix, dest_prefix)
        p = self._p_cache.get(p_key)
        if p is None:
            u = unit(src_prefix, dest_prefix, 19, seed=self.seed)
            p = self.params.primary_share_lo + (
                self.params.primary_share_hi - self.params.primary_share_lo
            ) * (1.0 - u ** self.params.primary_share_skew)
            self._p_cache[p_key] = p
        sw = self.params.secondary_weight
        raw = [p, (1.0 - p) * sw, (1.0 - p) * (1.0 - sw)]
        take = ordered[:3]
        weights = raw[: len(take)]
        total = sum(weights)
        return tuple(
            (link.link_id, w / total) for link, w in zip(take, weights)
        )

    # -- statistics -----------------------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        """Occupancy of every cache plus hot-path hit/miss counters."""
        return {
            "share_entries": len(self._share_cache),
            "visited_entries": len(self._visited_cache),
            "entry_metro_entries": len(self._entry_cache),
            "removed_peers_entries": len(self._removed_peers_cache),
            "drift_entries": len(self._drift_cache),
            "ranked_pool_entries": len(self._ranked_cache),
            "primary_share_entries": len(self._p_cache),
            "tables_by_removed": len(self._table_by_removed),
            "tables_by_seeded": len(self._table_by_seeded),
            "share_hits": self._share_cache.hits,
            "share_misses": self._share_cache.misses,
            "share_evictions": self._share_cache.evictions,
            "visited_evictions": self._visited_cache.evictions,
            "table_hits": self._table_by_removed.hits,
            "table_misses": self._table_by_removed.misses,
            "table_seeded_hits": self._table_by_seeded.hits,
            "table_seeded_misses": self._table_by_seeded.misses,
            "table_evictions": (self._table_by_removed.evictions
                                + self._table_by_seeded.evictions),
            "table_full_rebuilds": self._table_full_rebuilds,
            "table_incremental_updates": self._table_incremental_updates,
            "ranked_pool_hits": self._ranked_hits,
            "ranked_pool_misses": self._ranked_misses,
        }

    def export_gauges(self) -> None:
        """Publish :meth:`cache_stats` plus per-cache hit rates to the
        obs registry as gauges (``bgp.simulator.*``); a no-op while
        instrumentation is off.

        Gauges rather than counters on purpose: the snapshot reflects
        this simulator instance's current state, and re-exporting must
        overwrite, not accumulate.
        """
        if not obs.enabled():
            return
        gauges = {key: float(value)
                  for key, value in self.cache_stats().items()}
        gauges["share_hit_rate"] = self._share_cache.hit_rate
        gauges["visited_hit_rate"] = self._visited_cache.hit_rate
        gauges["table_hit_rate"] = self._table_by_removed.hit_rate
        obs.set_gauges(gauges, prefix="bgp.simulator.")
