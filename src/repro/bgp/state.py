"""Advertisement state: which (prefix, link) pairs are currently usable.

The WAN advertises every destination prefix on every peering link by
default (BGP anycast, paper §2).  Two things remove a (prefix, link) pair
from service:

* a **withdrawal** injected by the congestion mitigation system for a
  specific prefix at a specific link (paper §4.4), and
* a **link outage**, which behaves like withdrawing *all* prefixes on the
  link (paper §5.1.1 uses outages as the evaluation proxy).

The state exposes a compact ``removal_key`` per prefix so the ingress
simulator can cache routing outcomes across hours that share a state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..topology.wan import CloudWAN, PeeringLink

_EMPTY: FrozenSet[int] = frozenset()


class AdvertisementState:
    """Mutable advertisement/outage state over a WAN's peering links."""

    _next_uid = 0

    def __init__(self, wan: CloudWAN):
        self.wan = wan
        self._withdrawn: Dict[int, Set[int]] = {}  # prefix_id -> {link_id}
        self._outages: Set[int] = set()
        # prefix_id -> {link_id: prepend count} (ingress TE, §2)
        self._prepends: Dict[int, Dict[int, int]] = {}
        self._version = 0
        self._key_cache: Dict[int, FrozenSet[int]] = {}
        self._key_cache_version = -1
        # process-unique id (unlike id(), never reused) for cache layers
        AdvertisementState._next_uid += 1
        self.uid = AdvertisementState._next_uid

    # -- mutation ----------------------------------------------------------

    def withdraw(self, prefix_id: int, link_id: int) -> None:
        """Withdraw one prefix at one link."""
        self._check_ids(prefix_id, link_id)
        self._withdrawn.setdefault(prefix_id, set()).add(link_id)
        self._version += 1

    def announce(self, prefix_id: int, link_id: int) -> None:
        """Re-announce a previously withdrawn prefix at a link."""
        self._check_ids(prefix_id, link_id)
        links = self._withdrawn.get(prefix_id)
        if links is not None:
            links.discard(link_id)
            if not links:
                del self._withdrawn[prefix_id]
        self._version += 1

    def set_link_down(self, link_id: int) -> None:
        if not self.wan.has_link(link_id):
            raise KeyError(f"unknown link {link_id}")
        self._outages.add(link_id)
        self._version += 1

    def set_link_up(self, link_id: int) -> None:
        self._outages.discard(link_id)
        self._version += 1

    def prepend(self, prefix_id: int, link_id: int, times: int = 3) -> None:
        """Apply AS-path prepending for a prefix on a link (ingress TE).

        Prepending makes the link's announcement look longer to upstream
        ASes, coarsely discouraging (not forbidding) its use — the §2
        "crude mechanism" that other ASes may simply ignore.
        """
        self._check_ids(prefix_id, link_id)
        if times < 1:
            raise ValueError("prepend count must be >= 1")
        self._prepends.setdefault(prefix_id, {})[link_id] = times
        self._version += 1

    def clear_prepend(self, prefix_id: int, link_id: int) -> None:
        links = self._prepends.get(prefix_id)
        if links is not None:
            links.pop(link_id, None)
            if not links:
                del self._prepends[prefix_id]
        self._version += 1

    def prepend_key(self, prefix_id: int) -> Tuple[Tuple[int, int], ...]:
        """Hashable (link, times) TE state for a prefix (cache key)."""
        links = self._prepends.get(prefix_id)
        if not links:
            return ()
        return tuple(sorted(links.items()))

    def prepends_for(self, prefix_id: int) -> Dict[int, int]:
        return dict(self._prepends.get(prefix_id, {}))

    def clear(self) -> None:
        """Reset to the all-advertised, all-links-up state."""
        self._withdrawn.clear()
        self._outages.clear()
        self._prepends.clear()
        self._version += 1

    def _check_ids(self, prefix_id: int, link_id: int) -> None:
        if not self.wan.has_link(link_id):
            raise KeyError(f"unknown link {link_id}")
        self.wan.dest_prefix(prefix_id)  # raises KeyError if unknown

    # -- queries -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (for cache layers)."""
        return self._version

    @property
    def link_outages(self) -> FrozenSet[int]:
        return frozenset(self._outages)

    def withdrawn_links(self, prefix_id: int) -> FrozenSet[int]:
        return frozenset(self._withdrawn.get(prefix_id, _EMPTY))

    def is_available(self, prefix_id: int, link_id: int) -> bool:
        """Whether a prefix is reachable over a link right now."""
        if link_id in self._outages:
            return False
        return link_id not in self._withdrawn.get(prefix_id, _EMPTY)

    def removal_key(self, prefix_id: int) -> FrozenSet[int]:
        """Frozen set of links unusable for this prefix (outages + withdrawals).

        This is the cache key for everything downstream: two hours with the
        same removal key route identically for the prefix.
        """
        if self._key_cache_version != self._version:
            self._key_cache.clear()
            self._key_cache_version = self._version
        key = self._key_cache.get(prefix_id)
        if key is None:
            withdrawn = self._withdrawn.get(prefix_id)
            if withdrawn:
                key = frozenset(self._outages | withdrawn)
            else:
                key = frozenset(self._outages)
            self._key_cache[prefix_id] = key
        return key

    def available_links(self, prefix_id: int, links: Iterable[PeeringLink]) -> List[PeeringLink]:
        """Filter a link collection down to those usable for a prefix."""
        removed = self.removal_key(prefix_id)
        return [l for l in links if l.link_id not in removed]
