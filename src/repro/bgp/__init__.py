"""BGP substrate: messages, RIBs, policy, propagation, ingress simulation.

This package plays the role of "the Internet" in the reproduction:
Gao–Rexford route selection and export policies, route propagation over
the AS graph, and the :class:`~repro.bgp.simulator.IngressSimulator`,
which decides — as ground truth — which WAN link each flow actually
enters through, including hot-potato shifts after withdrawals and
outages.  The policies here stand in for other ASes' confidential
routing configuration and are deliberately invisible to the models in
:mod:`repro.core` (see the ground-truth wall in
``docs/architecture.md``).
"""

from .messages import Announcement, Message, Origin, Route, Withdrawal
from .policy import best_route, best_routes, compare, sort_key
from .rib import AdjRibIn, EdgeRouter, LocRib
from .state import AdvertisementState
from .propagation import (
    MAX_NEXTHOPS,
    RouteInfo,
    RoutingTable,
    SPRAY_TOLERANCE,
    UNREACHABLE,
    compute_routing_table,
    default_bias,
    update_routing_table,
)
from .simulator import IngressSimulator, ShareVector, SimulatorParams

__all__ = [
    "Announcement", "Message", "Origin", "Route", "Withdrawal",
    "best_route", "best_routes", "compare", "sort_key",
    "AdjRibIn", "EdgeRouter", "LocRib",
    "AdvertisementState",
    "MAX_NEXTHOPS", "RouteInfo", "RoutingTable", "SPRAY_TOLERANCE",
    "UNREACHABLE", "compute_routing_table", "default_bias",
    "update_routing_table",
    "IngressSimulator", "ShareVector", "SimulatorParams",
]
