"""BGP substrate: messages, RIBs, policy, propagation, ingress simulation."""

from .messages import Announcement, Message, Origin, Route, Withdrawal
from .policy import best_route, best_routes, compare, sort_key
from .rib import AdjRibIn, EdgeRouter, LocRib
from .state import AdvertisementState
from .propagation import (
    MAX_NEXTHOPS,
    RouteInfo,
    RoutingTable,
    SPRAY_TOLERANCE,
    compute_routing_table,
    default_bias,
)
from .simulator import IngressSimulator, ShareVector, SimulatorParams

__all__ = [
    "Announcement", "Message", "Origin", "Route", "Withdrawal",
    "best_route", "best_routes", "compare", "sort_key",
    "AdjRibIn", "EdgeRouter", "LocRib",
    "AdvertisementState",
    "MAX_NEXTHOPS", "RouteInfo", "RoutingTable", "SPRAY_TOLERANCE",
    "compute_routing_table", "default_bias",
    "IngressSimulator", "ShareVector", "SimulatorParams",
]
