"""AS-level route propagation for anycast prefixes.

Computes, per availability state, each AS's route to the cloud WAN under
Gao-Rexford (valley-free) policy.  Because the WAN buys transit from no
one, routes to it propagate in exactly one pattern:

* ASes that directly peer with the WAN (and still have an available link
  for the prefix) use their own links — a peer/customer-learned route with
  the highest preference ("direct" below);
* such routes are exported **only to customers**, so every other AS
  reaches the WAN through a chain of its *providers* that tops out at some
  direct neighbor.

The per-AS result is a :class:`RouteInfo`: whether the AS is direct, its
AS-hop distance, and its ranked provider next-hops.  Ranking mixes the
true distance with the AS's opaque ``policy_bias``, which stands in for
the confidential local policies the paper highlights (§2, challenge 1/3).

Two scaling decisions let this run at paper-scale graphs (ROADMAP item 2):

* **Columnar state.**  A :class:`RoutingTable` is three numpy columns
  over the graph's dense row index (``topology.asgraph.DenseTopology``):
  ``dist`` (``int32``, ``-1`` unreachable), ``direct`` (``bool_``) and
  CSR-packed ranked next-hops (``int64`` values + offsets, the same
  ragged layout ``repro.store.codec`` snapshots), so tables pickle
  across process pools and persist through ``SegmentStore`` like model
  state.  :class:`RouteInfo` objects are materialised lazily per row.
* **Dirty-set recomputation.**  :func:`update_routing_table` derives the
  table for a changed seeded-neighbor set from a previously computed
  one: BFS from the changed seeds through the provider→customer cone
  bounds the rows whose distance *could* move, a vectorised
  Bellman-Ford pass over that cone settles their new distances against
  the frozen outside boundary, and only rows whose distance (or whose
  providers' distance) actually changed are re-decided.  Everything
  else — arrays and already-materialised ``RouteInfo`` rows — is
  structurally shared.  The result is bit-identical to
  :func:`compute_routing_table` from scratch (enforced by
  ``tests/bgp/test_incremental_equivalence.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

import numpy as np

from ..store.codec import encode_ragged
from ..topology.asgraph import ASGraph, DenseTopology
from ..util.hashing import unit

#: rank slack within which multiple providers count as spray candidates
SPRAY_TOLERANCE = 0.45
#: maximum number of ranked next-hops kept per AS
MAX_NEXTHOPS = 3

#: ``dist`` column value marking an unreachable AS
UNREACHABLE = -1

#: label standing in for "no route yet" during distance settling; any
#: value above every possible AS-hop distance works (graphs are far
#: smaller than 2**31)
_FAR = np.int64(2**31 - 2)


class RouteInfo(NamedTuple):
    """One AS's route to the WAN under a given availability state.

    Attributes:
        direct: the AS has at least one available peering link of its own.
        dist: AS-hop distance to the WAN (1 if direct).
        nexthops: provider ASNs ranked by (distance + policy bias); used
            when the AS is not direct (or as fallback in what-if analyses).
    """

    direct: bool
    dist: int
    nexthops: Tuple[int, ...]


class RoutingTable:
    """Columnar per-AS routing state for one seeded-neighbor set.

    Backed by dense columns over the graph's row index: ``dist``
    (``int32``, ``UNREACHABLE`` = no route), ``direct`` (``bool_``) and
    the ranked next-hops as a CSR pair (``int64`` ASN values + ``int64``
    offsets).  The dict-style accessors (:meth:`get`, ``in``,
    :meth:`distance`) materialise frozen :class:`RouteInfo` rows lazily
    and share them with tables derived by :func:`update_routing_table`.
    """

    __slots__ = ("seeded", "_topo", "_dist", "_direct", "_nh_offsets",
                 "_nh_values", "_infos", "_n_reachable")

    def __init__(self, topo: DenseTopology, dist: np.ndarray,
                 direct: np.ndarray, nh_values: np.ndarray,
                 nh_offsets: np.ndarray, seeded: FrozenSet[int],
                 infos: Optional[Dict[int, Optional[RouteInfo]]] = None):
        self.seeded = seeded
        self._topo = topo
        self._dist = dist
        self._direct = direct
        self._nh_values = nh_values
        self._nh_offsets = nh_offsets
        self._infos: Dict[int, Optional[RouteInfo]] = (
            {} if infos is None else infos)
        self._n_reachable: Optional[int] = None

    # -- dict-style accessors (the simulator's hot path) -------------------

    def get(self, asn: int) -> Optional[RouteInfo]:
        row = self._topo.index.get(asn)
        if row is None:
            return None
        info = self._infos.get(row)
        if info is None and row not in self._infos:
            info = self._materialise(row)
            self._infos[row] = info
        return info

    def _materialise(self, row: int) -> Optional[RouteInfo]:
        d = int(self._dist[row])
        if d < 0:
            return None
        lo = int(self._nh_offsets[row])
        hi = int(self._nh_offsets[row + 1])
        nexthops = tuple(int(v) for v in self._nh_values[lo:hi])
        return RouteInfo(bool(self._direct[row]), d, nexthops)

    def __contains__(self, asn: int) -> bool:
        row = self._topo.index.get(asn)
        return row is not None and int(self._dist[row]) >= 0

    def __len__(self) -> int:
        if self._n_reachable is None:
            self._n_reachable = int(np.count_nonzero(self._dist >= 0))
        return self._n_reachable

    def reachable_asns(self) -> Tuple[int, ...]:
        """ASNs with a route, in graph row order."""
        return tuple(int(a) for a in self._topo.asns[self._dist >= 0])

    def distance(self, asn: int) -> Optional[int]:
        row = self._topo.index.get(asn)
        if row is None:
            return None
        d = int(self._dist[row])
        return d if d >= 0 else None

    # -- columnar access (equivalence tests, persistence, pools) ----------

    @property
    def topology(self) -> DenseTopology:
        return self._topo

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Snapshot columns (``SegmentStore``-ready, codec CSR layout).

        ``asn`` records the row order so :meth:`from_arrays` can verify
        alignment against the live graph; ``seeded`` round-trips the
        seeded-neighbor set the table was computed for.
        """
        return {
            "asn": self._topo.asns.copy(),
            "dist": self._dist.copy(),
            "direct": self._direct.astype(np.uint8),
            "nh_values": self._nh_values.copy(),
            "nh_offsets": self._nh_offsets.copy(),
            "seeded": np.array(sorted(self.seeded), dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, graph: ASGraph,
                    arrays: Dict[str, np.ndarray]) -> "RoutingTable":
        """Rebuild a table from :meth:`to_arrays` output.

        Raises ``ValueError`` if the arrays were produced against a
        different AS row order than ``graph``'s current dense view.
        """
        topo = graph.dense()
        if not np.array_equal(arrays["asn"], topo.asns):
            raise ValueError("routing-table arrays do not match the graph")
        return cls(
            topo,
            np.ascontiguousarray(arrays["dist"], dtype=np.int32),
            arrays["direct"].astype(np.bool_),
            np.ascontiguousarray(arrays["nh_values"], dtype=np.int64),
            np.ascontiguousarray(arrays["nh_offsets"], dtype=np.int64),
            frozenset(int(a) for a in arrays["seeded"]),
        )

    def columns_equal(self, other: "RoutingTable") -> bool:
        """Bit-identical column comparison (the equivalence-test check)."""
        return (
            np.array_equal(self._dist, other._dist)
            and np.array_equal(self._direct, other._direct)
            and np.array_equal(self._nh_values, other._nh_values)
            and np.array_equal(self._nh_offsets, other._nh_offsets)
        )


def _decide_nexthops(asn: int, dist: np.ndarray, prov_rows: np.ndarray,
                     asns: np.ndarray,
                     bias: Callable[[int, int], float]) -> Tuple[int, ...]:
    """Ranked next-hops for one AS given provider distances.

    Pure per-row function of (provider distances, bias): the full and
    incremental paths both call it, which is what makes dirty-set
    recomputation bit-identical to a rebuild.
    """
    ranked: List[Tuple[float, int]] = sorted(
        (int(dist[p]) + 1 + bias(asn, int(asns[p])), int(asns[p]))
        for p in prov_rows if dist[p] >= 0
    )
    if not ranked:
        return ()
    best_rank = ranked[0][0]
    return tuple(
        p for rank, p in ranked[:MAX_NEXTHOPS]
        if rank <= best_rank + SPRAY_TOLERANCE
    )


def _bfs_distances(topo: DenseTopology, seed_rows: np.ndarray) -> np.ndarray:
    """Shortest AS-hop distances (``int32``, ``-1`` unreachable) from the
    seed rows down the provider→customer edges, level-vectorised."""
    dist = np.full(topo.n, UNREACHABLE, dtype=np.int32)
    if seed_rows.size == 0:
        return dist
    dist[seed_rows] = 1
    frontier = seed_rows
    d = np.int32(1)
    while frontier.size:
        nxt = topo.customers_of_rows(frontier)
        nxt = nxt[dist[nxt] < 0]
        d = np.int32(d + 1)
        dist[nxt] = d
        frontier = nxt
    return dist


def compute_routing_table(
    graph: ASGraph,
    seeded: FrozenSet[int],
    bias: Callable[[int, int], float],
) -> RoutingTable:
    """Compute every AS's route to the WAN for one seeded-neighbor set.

    Args:
        graph: the AS topology.
        seeded: ASNs that currently have >= 1 available peering link with
            the WAN for the prefix under consideration.
        bias: ``bias(asn, provider) -> float`` opaque policy bias added to
            next-hop ranking (stable per scenario).

    Returns:
        A :class:`RoutingTable`.  ASes with no route at all report as
        absent through the dict-style accessors.
    """
    topo = graph.dense()
    seed_rows = np.array(
        sorted(topo.index[a] for a in seeded if a in topo.index),
        dtype=np.int32)
    dist = _bfs_distances(topo, seed_rows)

    direct = np.zeros(topo.n, dtype=np.bool_)
    direct[seed_rows] = True

    nh_rows: List[Tuple[int, ...]] = [()] * topo.n
    for row in np.flatnonzero(dist >= 0).tolist():
        nh_rows[row] = _decide_nexthops(
            int(topo.asns[row]), dist, topo.providers_of(row), topo.asns,
            bias)
    nh_values, nh_offsets = encode_ragged(nh_rows, dtype=np.int64)
    return RoutingTable(topo, dist, direct, nh_values, nh_offsets, seeded)


def _dirty_cone(topo: DenseTopology, changed_rows: np.ndarray) -> np.ndarray:
    """Rows whose distance could depend on the changed seeds: the union
    of the changed seeds' provider→customer cones (sorted, unique)."""
    mask = np.zeros(topo.n, dtype=np.bool_)
    mask[changed_rows] = True
    frontier = changed_rows
    while frontier.size:
        nxt = topo.customers_of_rows(frontier)
        nxt = nxt[~mask[nxt]]
        mask[nxt] = True
        frontier = nxt
    return np.flatnonzero(mask).astype(np.int32)


def _settle_cone(topo: DenseTopology, old_dist: np.ndarray,
                 cone: np.ndarray, seeded_mask: np.ndarray) -> np.ndarray:
    """New distances with only ``cone`` rows free to move.

    Bellman-Ford over the cone: labels start at 1 for seeds and "far"
    otherwise, and each round takes the min over provider labels + 1 —
    providers outside the cone contribute their (frozen) old distance.
    Unit edge weights bound the rounds by the routing depth, and every
    round is a single gather + segmented-min over the cone's provider
    CSR slice.
    """
    labels = np.where(old_dist >= 0, old_dist.astype(np.int64), _FAR)
    labels[cone] = _FAR
    init = np.full(cone.shape, _FAR, dtype=np.int64)
    init[seeded_mask[cone]] = 1
    labels[cone] = init

    counts = topo.prov_indptr[cone + 1] - topo.prov_indptr[cone]
    has_prov = counts > 0
    rows_p = cone[has_prov]
    counts_p = counts[has_prov]
    if rows_p.size:
        total = int(counts_p.sum())
        starts = np.repeat(topo.prov_indptr[rows_p], counts_p)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts_p) - counts_p, counts_p)
        gather = topo.prov_indices[starts + within]
        seg_starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts_p)[:-1]))
        init_p = init[has_prov]
        while True:
            via = np.minimum.reduceat(labels[gather], seg_starts) + 1
            new = np.minimum(init_p, via)
            if np.array_equal(new, labels[rows_p]):
                break
            labels[rows_p] = new
    new_dist = old_dist.copy()
    new_dist[cone] = np.where(
        labels[cone] >= _FAR, UNREACHABLE, labels[cone]).astype(np.int32)
    return new_dist


def update_routing_table(
    graph: ASGraph,
    table: RoutingTable,
    seeded: FrozenSet[int],
    bias: Callable[[int, int], float],
) -> RoutingTable:
    """Derive the table for ``seeded`` from a previously computed one.

    Identifies the dirty set — rows whose distance or ranked next-hops
    could depend on the seeded-set delta — re-decides just those rows,
    and structurally shares the rest.  Bit-identical to
    :func:`compute_routing_table` ``(graph, seeded, bias)``; falls back
    to it outright when the graph mutated since ``table`` was built.
    """
    topo = graph.dense()
    if table.topology is not topo:
        return compute_routing_table(graph, seeded, bias)
    if seeded == table.seeded:
        return table

    old_dist = table._dist
    added_rows = np.array(
        sorted(topo.index[a] for a in seeded - table.seeded
               if a in topo.index), dtype=np.int32)
    removed_rows = np.array(
        sorted(topo.index[a] for a in table.seeded - seeded
               if a in topo.index), dtype=np.int32)
    changed_seed_rows = np.concatenate((added_rows, removed_rows))
    if changed_seed_rows.size == 0:
        # the sets differ only in ASNs outside the graph: same columns
        return RoutingTable(topo, old_dist, table._direct,
                            table._nh_values, table._nh_offsets, seeded,
                            dict(table._infos))

    seeded_mask = np.zeros(topo.n, dtype=np.bool_)
    in_graph_rows = np.array(
        sorted(topo.index[a] for a in seeded if a in topo.index),
        dtype=np.int32)
    seeded_mask[in_graph_rows] = True

    # 1. dirty cone + settle distances against the frozen boundary
    cone = _dirty_cone(topo, changed_seed_rows)
    new_dist = _settle_cone(topo, old_dist, cone, seeded_mask)

    # 2. rows to re-decide: changed distance, changed direct flag, or a
    # customer of a changed-distance row (their provider ranking moved)
    changed_dist = np.flatnonzero(new_dist != old_dist).astype(np.int32)
    new_direct = table._direct.copy()
    new_direct[removed_rows] = False
    new_direct[added_rows] = True
    dirty = np.zeros(topo.n, dtype=np.bool_)
    dirty[changed_dist] = True
    dirty[changed_seed_rows] = True
    if changed_dist.size:
        dirty[topo.customers_of_rows(changed_dist)] = True
    dirty_rows = np.flatnonzero(dirty).astype(np.int32)

    # 3. splice the next-hop CSR: re-decide dirty rows, gather-copy the
    # clean ones; already-materialised RouteInfo rows outside the dirty
    # set carry over to the derived table untouched
    decided: Dict[int, Tuple[int, ...]] = {}
    for row in dirty_rows.tolist():
        if new_dist[row] >= 0:
            decided[row] = _decide_nexthops(
                int(topo.asns[row]), new_dist, topo.providers_of(row),
                topo.asns, bias)
        else:
            decided[row] = ()

    old_offsets = table._nh_offsets
    old_values = table._nh_values
    counts = np.diff(old_offsets)
    new_counts = counts.copy()
    for row in sorted(decided):
        new_counts[row] = len(decided[row])
    new_offsets = np.zeros(topo.n + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_offsets[1:])
    new_values = np.empty(int(new_offsets[-1]), dtype=np.int64)
    clean = ~dirty
    clean_rows = np.flatnonzero(clean & (counts > 0)).astype(np.int64)
    if clean_rows.size:
        c = counts[clean_rows]
        total = int(c.sum())
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(c) - c, c)
        src = np.repeat(old_offsets[clean_rows], c) + within
        dst = np.repeat(new_offsets[clean_rows], c) + within
        new_values[dst] = old_values[src]
    for row in sorted(decided):
        hops = decided[row]
        if hops:
            new_values[int(new_offsets[row]):int(new_offsets[row + 1])] = hops

    infos = {row: info for row, info in table._infos.items()
             if not dirty[row]}
    return RoutingTable(topo, new_dist, new_direct, new_values, new_offsets,
                        seeded, infos)


def default_bias(graph: ASGraph, seed: int) -> Callable[[int, int], float]:
    """Policy-bias function derived from each AS's ``policy_bias`` field.

    The bias is a stable pseudo-random value in ``[0, node.policy_bias]``
    per (AS, provider) pair — different ASes weight the 'same' choice
    differently, and TIPSY can never observe why.
    """
    nodes = {node.asn: node.policy_bias for node in graph.nodes()}

    def bias(asn: int, provider: int) -> float:
        scale = nodes.get(asn, 0.0)
        if scale <= 0.0:
            return 0.0
        return scale * unit(asn, provider, seed=seed)

    return bias
