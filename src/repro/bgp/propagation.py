"""AS-level route propagation for anycast prefixes.

Computes, per availability state, each AS's route to the cloud WAN under
Gao-Rexford (valley-free) policy.  Because the WAN buys transit from no
one, routes to it propagate in exactly one pattern:

* ASes that directly peer with the WAN (and still have an available link
  for the prefix) use their own links — a peer/customer-learned route with
  the highest preference ("direct" below);
* such routes are exported **only to customers**, so every other AS
  reaches the WAN through a chain of its *providers* that tops out at some
  direct neighbor.

The per-AS result is a :class:`RouteInfo`: whether the AS is direct, its
AS-hop distance, and its ranked provider next-hops.  Ranking mixes the
true distance with the AS's opaque ``policy_bias``, which stands in for
the confidential local policies the paper highlights (§2, challenge 1/3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..topology.asgraph import ASGraph
from ..util.hashing import unit

#: rank slack within which multiple providers count as spray candidates
SPRAY_TOLERANCE = 0.45
#: maximum number of ranked next-hops kept per AS
MAX_NEXTHOPS = 3


@dataclass(frozen=True)
class RouteInfo:
    """One AS's route to the WAN under a given availability state.

    Attributes:
        direct: the AS has at least one available peering link of its own.
        dist: AS-hop distance to the WAN (1 if direct).
        nexthops: provider ASNs ranked by (distance + policy bias); used
            when the AS is not direct (or as fallback in what-if analyses).
    """

    direct: bool
    dist: int
    nexthops: Tuple[int, ...]


class RoutingTable:
    """Per-AS :class:`RouteInfo` for one seeded-neighbor set."""

    def __init__(self, infos: Dict[int, RouteInfo], seeded: FrozenSet[int]):
        self._infos = infos
        self.seeded = seeded

    def get(self, asn: int) -> Optional[RouteInfo]:
        return self._infos.get(asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self._infos

    def __len__(self) -> int:
        return len(self._infos)

    def reachable_asns(self) -> Tuple[int, ...]:
        return tuple(self._infos)

    def distance(self, asn: int) -> Optional[int]:
        info = self._infos.get(asn)
        return info.dist if info else None


def compute_routing_table(
    graph: ASGraph,
    seeded: FrozenSet[int],
    bias: Callable[[int, int], float],
) -> RoutingTable:
    """Compute every AS's route to the WAN for one seeded-neighbor set.

    Args:
        graph: the AS topology.
        seeded: ASNs that currently have >= 1 available peering link with
            the WAN for the prefix under consideration.
        bias: ``bias(asn, provider) -> float`` opaque policy bias added to
            next-hop ranking (stable per scenario).

    Returns:
        A :class:`RoutingTable`.  ASes with no route at all are absent.
    """
    dist: Dict[int, int] = {}
    queue: deque = deque()
    for asn in seeded:
        if asn in graph:
            dist[asn] = 1
            queue.append(asn)

    # BFS down the provider->customer edges: a customer learns the route
    # from its provider one hop further out.  Because every edge adds
    # exactly 1, FIFO order yields shortest distances.
    while queue:
        asn = queue.popleft()
        d = dist[asn]
        for customer in graph.customers(asn):
            if customer not in dist:
                dist[customer] = d + 1
                queue.append(customer)

    infos: Dict[int, RouteInfo] = {}
    for asn, d in dist.items():
        providers = [p for p in graph.providers(asn) if p in dist]
        ranked: List[Tuple[float, int]] = sorted(
            ((dist[p] + 1 + bias(asn, p), p) for p in providers),
        )
        nexthops: Tuple[int, ...] = ()
        if ranked:
            best_rank = ranked[0][0]
            nexthops = tuple(
                p for rank, p in ranked[:MAX_NEXTHOPS] if rank <= best_rank + SPRAY_TOLERANCE
            )
        direct = asn in seeded
        if direct:
            infos[asn] = RouteInfo(True, 1, nexthops)
        else:
            # distance via the best provider (BFS distance)
            infos[asn] = RouteInfo(False, d, nexthops)
    return RoutingTable(infos, seeded)


def default_bias(graph: ASGraph, seed: int) -> Callable[[int, int], float]:
    """Policy-bias function derived from each AS's ``policy_bias`` field.

    The bias is a stable pseudo-random value in ``[0, node.policy_bias]``
    per (AS, provider) pair — different ASes weight the 'same' choice
    differently, and TIPSY can never observe why.
    """
    nodes = {node.asn: node.policy_bias for node in graph.nodes()}

    def bias(asn: int, provider: int) -> float:
        scale = nodes.get(asn, 0.0)
        if scale <= 0.0:
            return 0.0
        return scale * unit(asn, provider, seed=seed)

    return bias
