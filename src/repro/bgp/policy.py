"""BGP decision process.

Implements the standard best-path selection order used by the RIB and,
conceptually, by the AS-level propagation model:

1. highest LOCAL_PREF (set on import from the business relationship),
2. shortest AS path,
3. lowest ORIGIN,
4. lowest MED (compared only between routes from the same neighbor AS),
5. deterministic tie-break (lowest neighbor ASN, then next-hop).

The synthetic Internet adds hot-potato (nearest-exit) selection at the
link level; that geographic step lives in :mod:`repro.bgp.simulator`
because it needs metro coordinates.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from .messages import Route


def sort_key(route: Route) -> Tuple[Any, ...]:
    """Total-order key such that ``min`` picks the best route.

    MED is incomparable across neighbor ASes in real BGP; including it
    after the neighbor ASN in the key yields the common
    ``always-compare-med=false``-compatible deterministic behaviour.
    """
    return (
        -route.local_pref,
        len(route.as_path),
        int(route.origin),
        route.neighbor_as if route.neighbor_as is not None else -1,
        route.med,
        route.next_hop,
    )


def best_route(routes: Iterable[Route]) -> Optional[Route]:
    """The single best route, or None if no routes."""
    routes = list(routes)
    if not routes:
        return None
    return min(routes, key=sort_key)


def best_routes(routes: Iterable[Route]) -> List[Route]:
    """All routes tied on (LOCAL_PREF, path length, origin) — the multipath
    (ECMP) candidate set, sorted by the deterministic tie-break."""
    routes = sorted(routes, key=sort_key)
    if not routes:
        return []
    head = routes[0]
    key = (head.local_pref, len(head.as_path), int(head.origin))
    return [r for r in routes if (r.local_pref, len(r.as_path), int(r.origin)) == key]


def compare(a: Route, b: Route) -> int:
    """Classic comparator: negative if ``a`` is preferred over ``b``."""
    ka, kb = sort_key(a), sort_key(b)
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0
