"""``repro serve`` — run and inspect the long-running serving daemon.

* ``run`` drives a :class:`~repro.serve.daemon.ServeDaemon` over a
  synthetic telemetry stream: sharded hourly ingest, periodic
  checkpoints, periodic status lines, optional sample queries each hour
  to exercise the serving path, and a graceful SIGINT/SIGTERM shutdown
  that drains in-flight work and writes a final checkpoint.  With
  ``--resume`` the daemon restores the checkpoint and continues the
  stream at the hour after the one it last absorbed — the restart
  procedure in ``docs/operations.md``, runnable end to end.
* ``status`` inspects a checkpoint directory offline: the shard-layout
  manifest, the scenario recipe, and each shard's segment footprint.

The scenario recipe (size/seed/window) is recorded next to the daemon
manifest at checkpoint time so ``--resume`` and ``status`` can rebuild
the world without re-specifying flags.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path
from types import FrameType
from typing import TYPE_CHECKING, Dict, List, Optional

from .daemon import (MANIFEST_NAME, DaemonConfig, ServeDaemon, ShardError,
                     read_manifest)

if TYPE_CHECKING:
    from ..experiments.scenario import Scenario

ACTIONS = ("run", "status")

RECIPE_NAME = "scenario.json"


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("action", choices=ACTIONS,
                        help="run the daemon over a telemetry stream, or "
                             "inspect a checkpoint directory")
    parser.add_argument("--size", choices=("small", "medium"),
                        default="small",
                        help="scenario scale for `run` (default: small)")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (default: 0)")
    parser.add_argument("--days", type=int, default=9,
                        help="days of telemetry to stream (default: 9)")
    parser.add_argument("--window", type=int, default=7,
                        help="rolling training window in days (default: 7)")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of model-state shards (default: 4)")
    parser.add_argument("--workers", choices=("process", "inline"),
                        default="process",
                        help="shard workers as processes or in-daemon "
                             "threads (default: process)")
    parser.add_argument("--dir", metavar="DIR", default=None,
                        help="checkpoint directory (required for `status`, "
                             "enables checkpoints for `run`)")
    parser.add_argument("--checkpoint-every", type=int, default=24,
                        metavar="HOURS",
                        help="checkpoint cadence in ingested hours "
                             "(default: 24; 0 disables periodic ones)")
    parser.add_argument("--status-every", type=int, default=24,
                        metavar="HOURS",
                        help="status-line cadence in ingested hours "
                             "(default: 24; 0 = only the final one)")
    parser.add_argument("--resume", action="store_true",
                        help="restore the checkpoint in --dir and continue "
                             "the stream where it left off")
    parser.add_argument("--queries", type=int, default=0, metavar="N",
                        help="sample predictions to serve per ingested "
                             "hour (exercises the query path; default: 0)")
    parser.add_argument("--hour-delay", type=float, default=0.0,
                        metavar="SECONDS",
                        help="sleep between hours to emulate a live feed "
                             "(default: 0, full speed)")


def _build_scenario(size: str, seed: int, days: int) -> "Scenario":
    # function-scope import: the serve layer has no core/experiments
    # dependency at module scope beyond what serving itself needs
    from ..experiments.scenario import Scenario, ScenarioParams

    if size == "medium":
        params = ScenarioParams.medium(seed=seed)
    else:
        params = ScenarioParams.small(seed=seed, horizon_days=days)
    if days > params.horizon_days:
        raise SystemExit(
            f"repro serve: --days {days} exceeds the {size} scenario "
            f"horizon ({params.horizon_days} days)")
    return Scenario(params)


def _write_recipe(directory: Path, args: argparse.Namespace) -> None:
    # the recipe is a tracked durable artifact ([tool.repro.durability]):
    # commit it tmp + fsync + rename so a crashed run never leaves a
    # torn scenario.json for --resume/status to choke on (RA804)
    payload = {"size": args.size, "seed": args.seed, "days": args.days,
               "window": args.window}
    path = directory / RECIPE_NAME
    tmp = directory / (RECIPE_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_recipe(directory: Path) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(
            (directory / RECIPE_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _serve_run(args: argparse.Namespace) -> int:
    from ..core.service import ServiceConfig

    checkpoint_dir = Path(args.dir) if args.dir else None
    if args.resume and checkpoint_dir is None:
        print("repro serve: --resume requires --dir", file=sys.stderr)
        return 1

    size, seed, days, window = args.size, args.seed, args.days, args.window
    if args.resume:
        assert checkpoint_dir is not None
        recipe = _read_recipe(checkpoint_dir)
        if recipe is not None:
            size = str(recipe.get("size", size))
            recipe_seed = recipe.get("seed", seed)
            seed = recipe_seed if isinstance(recipe_seed, int) else seed
            recipe_window = recipe.get("window", window)
            window = (recipe_window if isinstance(recipe_window, int)
                      else window)
    scenario = _build_scenario(size, seed, days)

    try:
        if args.resume:
            assert checkpoint_dir is not None
            daemon = ServeDaemon.resume(checkpoint_dir, scenario.wan,
                                        workers=args.workers)
        else:
            config = DaemonConfig(
                n_shards=args.shards, workers=args.workers,
                service=ServiceConfig(training_window_days=window))
            daemon = ServeDaemon(scenario.wan, config).start()
    except ShardError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 1

    start_hour = 0
    if daemon.last_hour is not None:
        start_hour = daemon.last_hour + 1
    end_hour = days * 24
    if start_hour >= end_hour:
        print(f"repro serve: checkpoint already at hour "
              f"{daemon.last_hour}; nothing to stream "
              f"(--days {days} = {end_hour} hours)")
        daemon.shutdown(drain=True)
        return 0

    mode = "resumed" if args.resume else "started"
    print(f"serve: {mode} {daemon.config.n_shards} shards "
          f"({daemon.config.workers}), streaming hours "
          f"{start_hour}..{end_hour - 1} of the {size} scenario")

    stop_requested: List[int] = []

    def on_signal(signum: int, frame: Optional[FrameType]) -> None:
        stop_requested.append(signum)

    previous = {s: signal.signal(s, on_signal)
                for s in (signal.SIGINT, signal.SIGTERM)}
    hours_done = 0
    exit_code = 0
    try:
        for cols in scenario.stream(start_hour, end_hour):
            if stop_requested:
                name = signal.Signals(stop_requested[0]).name
                print(f"serve: {name} received — draining and "
                      "checkpointing before exit")
                break
            daemon.ingest_hour(cols.hour, scenario.agg_records_for(cols))
            hours_done += 1
            if args.queries > 0 and cols.hour >= 24:
                # serving starts at the first day-boundary retrain; the
                # warm-up hours before it have no trained models to ask
                contexts = scenario.flow_contexts[:args.queries]
                if contexts:
                    daemon.predict_batch(contexts)
            hour_count = cols.hour + 1
            if (args.status_every > 0
                    and hour_count % args.status_every == 0):
                print(daemon.status().format_text())
            if (checkpoint_dir is not None and args.checkpoint_every > 0
                    and hour_count % args.checkpoint_every == 0):
                daemon.checkpoint(checkpoint_dir)
                _write_recipe(checkpoint_dir, args)
                print(f"serve: checkpointed hour {cols.hour} "
                      f"-> {checkpoint_dir}")
            if args.hour_delay > 0:
                time.sleep(args.hour_delay)
        daemon.drain()
        if checkpoint_dir is not None:
            daemon.checkpoint(checkpoint_dir)
            _write_recipe(checkpoint_dir, args)
            print(f"serve: final checkpoint -> {checkpoint_dir}")
        print(daemon.status().format_text())
        print(f"serve: ingested {hours_done} hours, shutting down "
              "(draining)")
    except ShardError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        exit_code = 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        try:
            daemon.shutdown(drain=exit_code == 0)
        except ShardError as error:
            print(f"repro serve: shutdown: {error}", file=sys.stderr)
            exit_code = 1
    return exit_code


def _serve_status(args: argparse.Namespace) -> int:
    from ..store.segments import SegmentStore

    if not args.dir:
        print("repro serve: status requires --dir", file=sys.stderr)
        return 1
    root = Path(args.dir)
    try:
        manifest = read_manifest(root)
    except ShardError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 1
    n_shards = manifest["n_shards"]
    assert isinstance(n_shards, int)  # read_manifest validated it
    print(f"{root / MANIFEST_NAME}: layout v{manifest['layout_version']}, "
          f"{n_shards} shards, last_hour={manifest['last_hour']}")
    recipe = _read_recipe(root)
    if recipe is not None:
        print(f"scenario: size={recipe.get('size')} "
              f"seed={recipe.get('seed')} window={recipe.get('window')}")
    worst = 0
    for shard_id in range(n_shards):
        shard_dir = root / f"shard-{shard_id:02d}"
        if not shard_dir.is_dir():
            print(f"  shard {shard_id:02d}: MISSING ({shard_dir})")
            worst = 1
            continue
        store = SegmentStore(shard_dir)
        segments = store.segments()
        days = sum(1 for i in segments if i.kind == "day_counts")
        models = sum(1 for i in segments if i.kind == "model_grain")
        print(f"  shard {shard_id:02d}: {days} day segments, "
              f"{models} model segments, {store.total_bytes()} bytes")
    return worst


def run_serve(args: argparse.Namespace) -> int:
    if args.action == "run":
        return _serve_run(args)
    return _serve_status(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="run and inspect the sharded serving daemon")
    add_serve_arguments(parser)
    return run_serve(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
