"""Long-running serving daemon with sharded, hot-swappable model state.

The deployment form of :class:`~repro.core.service.TipsyService`
(``docs/operations.md``): an hourly telemetry stream is sharded by
feature-key hash across worker processes, each worker retrains its
slice incrementally behind a double-buffered
:class:`~repro.serve.shard.HotSwapShard`, and batched queries
scatter-gather through :class:`~repro.serve.daemon.ServeDaemon` with
answers bit-identical to the single-process service.  ``repro serve
run`` drives it from the CLI; ``repro bench --suite soak`` measures it
under sustained concurrent ingest.
"""

from .daemon import DaemonConfig, ServeDaemon, ShardError
from .health import DaemonStatus, ShardHealth
from .shard import HotSwapShard
from .sharding import shard_of, split_indices, split_records

__all__ = [
    "DaemonConfig", "ServeDaemon", "ShardError",
    "DaemonStatus", "ShardHealth",
    "HotSwapShard",
    "shard_of", "split_indices", "split_records",
]
