"""Deterministic feature-key sharding for the serving daemon.

Every TIPSY feature grain (A, AL, AP — and therefore the geographic
completion and the sequential ensembles built from them) keys on the
flow's source AS, so hashing ``src_asn`` places *all* of a flow's model
state on one shard: the counts a shard accumulates are exactly the
counts the single-process service would consult for the same flow, and
a sharded prediction is bit-identical to an unsharded one.

The hash is :func:`repro.util.hashing.mix64` — stable across processes,
runs and platforms (Python's builtin ``hash`` is salted per process and
must never decide shard placement).  The seed and layout version are
part of the checkpoint format: a daemon can only resume a checkpoint
written under the same layout, so neither constant may change without
bumping :data:`SHARD_LAYOUT_VERSION`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..pipeline.records import AggRecord, FlowContext
from ..util.hashing import mix64

#: fixed hash seed — part of the checkpoint format, never change casually
SHARD_HASH_SEED = 0xB10C5EED

#: bump on any change to the shard-placement function or its seed
SHARD_LAYOUT_VERSION = 1


def shard_of(src_asn: int, n_shards: int) -> int:
    """The shard index owning all model state keyed by ``src_asn``."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    return mix64(src_asn, seed=SHARD_HASH_SEED) % n_shards


def split_records(records: Sequence[AggRecord],
                  n_shards: int) -> List[List[AggRecord]]:
    """Partition one hour's records by owning shard, order-preserving.

    Every shard gets a list (possibly empty) so each worker still sees
    every hour — day crossings, and therefore retrains and window
    evictions, stay aligned with the single-process service.
    """
    shards: List[List[AggRecord]] = [[] for _ in range(n_shards)]
    for record in records:
        shards[shard_of(record.src_asn, n_shards)].append(record)
    return shards


def split_indices(contexts: Sequence[FlowContext],
                  n_shards: int) -> List[List[int]]:
    """Positions of each shard's contexts, order-preserving per shard.

    The scatter half of a batched query: the gather half reassembles
    answers into the original positions, so a sharded batch returns in
    exactly the caller's order.
    """
    indices: List[List[int]] = [[] for _ in range(n_shards)]
    for position, context in enumerate(contexts):
        indices[shard_of(context.src_asn, n_shards)].append(position)
    return indices
