"""Shard worker process: ingest thread + query loop over a pipe.

Each worker owns one :class:`~repro.serve.shard.HotSwapShard` and talks
to the daemon parent over a duplex :mod:`multiprocessing` connection.
The message protocol is small tuples, first element the op:

========== ============================== ==============================
op         payload                        reply
========== ============================== ==============================
ingest     (hour, records)                *none* — enqueued, fire-and-forget
predict    (contexts, k, unavailable)     ("ok", [[Prediction, ...], ...])
wpredict   (contexts, k, withdrawn)       ("ok", [(Prediction, ...), ...])
drain      ()                             ("ok", last_hour) once queue empty
status     ()                             ("ok", (ShardHealth, obs delta))
checkpoint (directory,)                   ("ok", None) after snapshot
stop       (drain,)                       ("ok", last_hour); worker exits
========== ============================== ==============================

Ingest is decoupled from the query loop by an internal queue and a
dedicated ingest thread: a day-boundary retrain runs on that thread
against the shard's offline replica, so the loop keeps answering
``predict`` from the live replica throughout — the worker-level half of
the never-block-on-retrain guarantee (the shard's double buffer is the
state-level half).

Errors inside an op come back as ``("error", message)`` and raise
:class:`~repro.serve.daemon.ShardError` in the parent; an ingest-thread
error is deferred to the next ``drain``/``stop`` reply (ingest itself
has no reply to carry it).

Observability: when the parent runs instrumented, each worker enables a
fresh registry (a forked child inherits the parent's copy-on-write and
must not double-report it) and every ``status`` reply ships the metrics
delta since the previous one for the parent to merge — the same
snapshot-delta discipline as :mod:`repro.perf.parallel`.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..core.service import ServiceConfig
from ..obs import runtime as obs
from ..obs.metrics import MetricsSnapshot
from ..pipeline.records import AggRecord
from ..topology.wan import CloudWAN
from .shard import HotSwapShard

if TYPE_CHECKING:
    from multiprocessing.connection import Connection


def _obs_delta(previous: Optional[MetricsSnapshot]
               ) -> Tuple[Optional[MetricsSnapshot],
                          Optional[MetricsSnapshot]]:
    """(delta since ``previous``, new cumulative snapshot)."""
    if not obs.enabled():
        return None, previous
    current = obs.snapshot()
    if previous is None:
        return current, current
    return current.diff(previous), current


def shard_worker_main(conn: "Connection", shard_id: int, wan: CloudWAN,
                      config: ServiceConfig,
                      restore_dir: Optional[str] = None,
                      obs_enabled: bool = False) -> None:
    """Run one shard worker until a ``stop`` message arrives."""
    if obs_enabled:
        obs.enable(fresh=True)
    if restore_dir is not None:
        shard = HotSwapShard.restore(restore_dir, shard_id, wan)
    else:
        shard = HotSwapShard(shard_id, wan, config)

    ingest_queue: "queue.Queue[Optional[Tuple[int, List[AggRecord]]]]" = (
        queue.Queue())
    ingest_errors: List[str] = []

    def ingest_loop() -> None:
        while True:
            item = ingest_queue.get()
            try:
                if item is None:
                    return
                hour, records = item
                try:
                    shard.ingest_hour(hour, records)
                except Exception as error:  # surfaced at the next drain
                    ingest_errors.append(
                        f"shard {shard_id} hour {hour}: {error!r}")
            finally:
                ingest_queue.task_done()

    ingest_thread = threading.Thread(
        target=ingest_loop, name=f"serve-ingest-{shard_id}", daemon=True)
    ingest_thread.start()
    last_shipped: Optional[MetricsSnapshot] = None

    def drain() -> Optional[str]:
        ingest_queue.join()
        if ingest_errors:
            return "; ".join(ingest_errors)
        return None

    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "ingest":
                ingest_queue.put((message[1], message[2]))
                continue
            try:
                if op == "predict":
                    contexts, k, unavailable = message[1:]
                    conn.send(("ok", shard.predict_batch(
                        contexts, k, unavailable)))
                elif op == "wpredict":
                    contexts, k, withdrawn = message[1:]
                    conn.send(("ok", shard.withdrawal_predictions(
                        contexts, k, withdrawn)))
                elif op == "drain":
                    failure = drain()
                    if failure is not None:
                        conn.send(("error", failure))
                    else:
                        conn.send(("ok", shard.last_hour))
                elif op == "status":
                    delta, last_shipped = _obs_delta(last_shipped)
                    health = shard.health(
                        ingest_queue_depth=ingest_queue.qsize())
                    conn.send(("ok", (health, delta)))
                elif op == "checkpoint":
                    failure = drain()
                    if failure is not None:
                        conn.send(("error", failure))
                    else:
                        shard.snapshot(message[1])
                        conn.send(("ok", None))
                elif op == "stop":
                    if message[1]:
                        failure = drain()
                    else:
                        # abortive stop: discard queued hours (the last
                        # checkpoint, not the queue, is the recovery
                        # source) so the sentinel preempts them
                        failure = None
                        while True:
                            try:
                                ingest_queue.get_nowait()
                            except queue.Empty:
                                break
                            ingest_queue.task_done()
                    ingest_queue.put(None)
                    ingest_thread.join()
                    if failure is not None:
                        conn.send(("error", failure))
                    else:
                        conn.send(("ok", shard.last_hour))
                    return
                else:
                    conn.send(("error", f"unknown op {op!r}"))
            except Exception as error:
                conn.send(("error", f"shard {shard_id} {op}: {error!r}"))
    except EOFError:
        # parent went away without a stop: exit quietly, nothing to
        # reply to (the checkpointed state on disk is the recovery path)
        return
    finally:
        conn.close()
