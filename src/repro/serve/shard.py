"""One shard of hot-swappable model state.

A shard owns the rolling-window service state for the feature keys that
hash to it (:mod:`repro.serve.sharding`).  The serving requirement is
that queries never block on — and never observe — a retrain in
progress, while the retrain itself stays *incremental* (the service
mutates its exact model suite in place, so a reader holding the same
objects mid-retrain would see a half-updated model).

:class:`HotSwapShard` resolves that with a double buffer: two replicas
of the same :class:`~repro.core.service.TipsyService`, fed the same
per-shard stream in the same order (so they are bit-identical at every
quiescent point).  Each ingested hour is applied to the *offline*
replica first — including any day-boundary retrain — then one atomic
pointer assignment swaps it live, and finally the same hour is applied
to the now-offline ex-live replica.  Readers take the live pointer and
hold that replica's lock for the duration of one query:

* a reader that grabbed the pointer before a swap finishes its query on
  the *old* state (the writer waits for the replica lock before
  mutating it);
* a reader arriving after the swap sees the *new* state;
* no interleaving exposes a half-retrained model — the old-or-new
  guarantee the lifecycle tests assert under a concurrent reader.

The price is double ingest work per shard, but the incremental retrain
is O(one day's delta) (``docs/benchmarking.md``), and shards divide the
window N ways — the daemon's total state is ~2x a single service's,
spread across worker processes.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import (AbstractSet, List, Optional, Sequence, Tuple, Union)

from ..core.base import NO_LINKS, Prediction
from ..core.service import RestoreReport, ServiceConfig, TipsyService
from ..pipeline.records import AggRecord, FlowContext
from ..topology.wan import CloudWAN
from .health import ShardHealth, staleness_hours


class HotSwapShard:
    """Double-buffered per-shard service state with atomic read swaps."""

    def __init__(self, shard_id: int, wan: CloudWAN,
                 config: Optional[ServiceConfig] = None):
        self.shard_id = shard_id
        config = config or ServiceConfig()
        self._replicas: Tuple[TipsyService, TipsyService] = (
            TipsyService(wan, config), TipsyService(wan, config))
        self._locks: Tuple[threading.Lock, threading.Lock] = (
            threading.Lock(), threading.Lock())
        # index of the reader-visible replica; plain attribute reads and
        # writes are atomic, which is all the swap needs
        self._live = 0
        self.swap_count = 0
        self.last_hour: Optional[int] = None

    # -- ingest (writer side) -------------------------------------------------

    def ingest_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        """Apply one hour to both replicas with a swap in between.

        The offline replica absorbs the hour (and any day-boundary
        retrain) first, under its own lock — readers are on the live
        replica and never wait.  The pointer swap is one atomic
        assignment; the trailing application brings the ex-live replica
        up to date so the next hour finds it ready to become live.
        """
        offline = 1 - self._live
        with self._locks[offline]:
            self._replicas[offline].ingest_hour(hour, records)
        self._live = offline
        self.swap_count += 1
        trailing = 1 - offline
        with self._locks[trailing]:
            self._replicas[trailing].ingest_hour(hour, records)
        self.last_hour = hour

    # -- queries (reader side) ------------------------------------------------

    def predict_batch(self, contexts: Sequence[FlowContext],
                      k: Optional[int] = None,
                      unavailable: AbstractSet[int] = NO_LINKS,
                      ) -> List[List[Prediction]]:
        """Batched predictions from the live replica (old-or-new only)."""
        live = self._live
        with self._locks[live]:
            return self._replicas[live].predict_batch(
                contexts, k, unavailable)

    def withdrawal_predictions(
        self,
        contexts: Sequence[FlowContext],
        k: Optional[int] = None,
        withdrawn: AbstractSet[int] = NO_LINKS,
    ) -> List[Tuple[Prediction, ...]]:
        """Per-context withdrawal-model answers from the live replica."""
        live = self._live
        with self._locks[live]:
            return self._replicas[live].withdrawal_predictions(
                contexts, k, withdrawn)

    # -- lifecycle ------------------------------------------------------------

    def snapshot(self, directory: Union[str, Path]) -> None:
        """Checkpoint the live replica's state (``docs/storage.md``)."""
        live = self._live
        with self._locks[live]:
            self._replicas[live].snapshot(directory)

    @classmethod
    def restore(cls, directory: Union[str, Path], shard_id: int,
                wan: CloudWAN) -> "HotSwapShard":
        """Resume a shard from a checkpoint directory.

        Both replicas are restored independently from the same segments;
        restore is deterministic, so they come back bit-identical — the
        same quiescent state an uninterrupted shard would hold.
        """
        first = TipsyService.restore(directory, wan)
        second = TipsyService.restore(directory, wan)
        shard = cls(shard_id, wan, first.config)
        shard._replicas = (first, second)
        if first._last_hour is not None:
            shard.last_hour = first._last_hour
        return shard

    @property
    def restore_report(self) -> Optional[RestoreReport]:
        """The live replica's restore report (None unless restored)."""
        return self._replicas[self._live].restore_report

    def health(self, ingest_queue_depth: int = 0) -> ShardHealth:
        """A point-in-time health sample of the live replica."""
        live = self._live
        with self._locks[live]:
            service = self._replicas[live]
            trained = service.trained_days
            stats = service.cache_stats()
        latest = max(trained) if trained else None
        return ShardHealth(
            shard_id=self.shard_id,
            last_hour=self.last_hour,
            trained_days=len(trained),
            latest_trained_day=latest,
            staleness_hours=staleness_hours(self.last_hour, latest),
            swap_count=self.swap_count,
            retrain_count=service.retrain_count,
            ready=bool(trained),
            ingest_queue_depth=ingest_queue_depth,
            memo_entries=stats["memo_entries"],
            memo_hits=stats["memo_hits"],
            memo_misses=stats["memo_misses"],
        )
