"""Health and status surface of the serving daemon.

Built on :mod:`repro.obs`: every :meth:`ServeDaemon.status` call gathers
one :class:`ShardHealth` per shard (trained window, swap counter,
staleness, ingest backlog, memo efficiency), folds them into a
:class:`DaemonStatus`, and publishes the numbers as ``serve.*`` gauges
when instrumentation is enabled — so the same figures feed the CLI's
status lines, the soak benchmark's meta, and the Prometheus exporter.

*Staleness* is the operator's freshness number: how many ingested hours
are newer than the newest day behind the served models.  A healthy
daemon oscillates between 1 and 24 (the paper retrains daily, so up to
a day of telemetry is always awaiting its first retrain); a climbing
staleness means retrains are not keeping up with ingest.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from ..obs import runtime as obs


@dataclass(frozen=True)
class ShardHealth:
    """One shard's liveness, freshness and serving-cache numbers."""

    shard_id: int
    last_hour: Optional[int]
    trained_days: int
    latest_trained_day: Optional[int]
    staleness_hours: int
    swap_count: int
    retrain_count: int
    ready: bool
    ingest_queue_depth: int
    memo_entries: int
    memo_hits: int
    memo_misses: int

    def to_json(self) -> Dict[str, object]:
        return dict(asdict(self))


def staleness_hours(last_hour: Optional[int],
                    latest_trained_day: Optional[int]) -> int:
    """Ingested hours newer than the newest trained day (>= 0)."""
    if last_hour is None:
        return 0
    if latest_trained_day is None:
        return last_hour + 1
    return max(0, last_hour - 24 * (latest_trained_day + 1) + 1)


@dataclass(frozen=True)
class DaemonStatus:
    """The whole daemon's health: per-shard detail plus aggregates."""

    n_shards: int
    workers: str
    last_hour: Optional[int]
    ready: bool
    total_swaps: int
    max_staleness_hours: int
    ingest_backlog: int
    shards: Tuple[ShardHealth, ...]

    @classmethod
    def from_shards(cls, shards: Tuple[ShardHealth, ...],
                    workers: str) -> "DaemonStatus":
        last_hours = [s.last_hour for s in shards if s.last_hour is not None]
        return cls(
            n_shards=len(shards),
            workers=workers,
            last_hour=max(last_hours) if last_hours else None,
            ready=bool(shards) and all(s.ready for s in shards),
            total_swaps=sum(s.swap_count for s in shards),
            max_staleness_hours=max(
                (s.staleness_hours for s in shards), default=0),
            ingest_backlog=sum(s.ingest_queue_depth for s in shards),
            shards=shards,
        )

    def to_json(self) -> Dict[str, object]:
        payload = dict(asdict(self))
        payload["shards"] = [s.to_json() for s in self.shards]
        return payload

    def format_text(self) -> str:
        """A compact status block for logs and the CLI."""
        head = (f"serve: {self.n_shards} shards ({self.workers}), "
                f"hour={self.last_hour}, "
                f"{'ready' if self.ready else 'warming'}, "
                f"swaps={self.total_swaps}, "
                f"staleness<={self.max_staleness_hours}h, "
                f"backlog={self.ingest_backlog}")
        lines = [head]
        for s in self.shards:
            lines.append(
                f"  shard {s.shard_id:02d}: days={s.trained_days} "
                f"(latest {s.latest_trained_day}), "
                f"swaps={s.swap_count}, stale={s.staleness_hours}h, "
                f"queue={s.ingest_queue_depth}, "
                f"memo={s.memo_entries} ({s.memo_hits} hits)")
        return "\n".join(lines)


def export_status_gauges(status: DaemonStatus) -> None:
    """Publish a status to the obs registry (no-op when disabled)."""
    if not obs.enabled():
        return
    obs.set_gauges({
        "shards": float(status.n_shards),
        "ready": float(status.ready),
        "swaps": float(status.total_swaps),
        "max_staleness_hours": float(status.max_staleness_hours),
        "ingest_backlog": float(status.ingest_backlog),
    }, prefix="serve.")
    for s in status.shards:
        obs.set_gauges({
            "swap_count": float(s.swap_count),
            "staleness_hours": float(s.staleness_hours),
            "trained_days": float(s.trained_days),
            "ingest_queue_depth": float(s.ingest_queue_depth),
            "memo_entries": float(s.memo_entries),
        }, prefix=f"serve.shard{s.shard_id:02d}.")
