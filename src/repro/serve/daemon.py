"""The serving daemon: sharded ingest, scatter-gather queries, lifecycle.

:class:`ServeDaemon` is the long-running form of
:class:`~repro.core.service.TipsyService` (ROADMAP item 1): an hourly
telemetry stream goes in, sharded by feature-key hash
(:mod:`repro.serve.sharding`) across workers that each hold one
hot-swappable :class:`~repro.serve.shard.HotSwapShard`; batched
``predict_batch``/``what_if`` queries scatter to the owning shards and
gather back in the caller's order.  Two worker modes share every other
code path:

* ``process`` (the deployment shape) — one OS process per shard, talking
  over a pipe (:mod:`repro.serve.worker`); per-shard retrains run in
  parallel across cores and never touch the parent's query latency;
* ``inline`` — shards live in the daemon process with one ingest thread
  each; cheap to start, used by tests and available for tiny deployments.

**Equivalence.**  A sharded prediction is bit-identical to the
single-process service fed the same stream: every model grain keys on
``src_asn``, so a shard's counts for its keys equal the unsharded
service's counts for the same keys, and ``what_if`` re-runs the exact
:func:`~repro.core.service.group_flows` /
:func:`~repro.core.service.spill_from_groups` accumulation parent-side
over shard-computed predictions (``tests/serve/test_equivalence.py``).

**Lifecycle.**  ``checkpoint`` drains in-flight ingest, snapshots every
shard into ``<dir>/shard-NN/`` (``docs/storage.md``), then commits a
``serve.json`` manifest by atomic rename — a checkpoint without a
manifest is invisible, so a crash mid-checkpoint leaves the previous
one intact.  ``resume`` restores each shard from its segments and
continues ingesting at ``last_hour + 1`` with bit-identical answers.
``shutdown(drain=True)`` stops accepting work, drains queues, and joins
the workers; see ``docs/operations.md`` for the runbook.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, AbstractSet, Dict, List, Optional,
                    Sequence, Tuple, Union)

from ..core.base import NO_LINKS, Prediction
from ..core.features import FEATURES_A, FEATURES_AL, FEATURES_AP, FeatureSet
from ..core.service import (ServiceConfig, group_flows, spill_from_groups)
from ..obs import runtime as obs
from ..pipeline.records import AggRecord, FlowContext
from ..topology.wan import CloudWAN
from .health import DaemonStatus, ShardHealth, export_status_gauges
from .shard import HotSwapShard
from .sharding import (SHARD_HASH_SEED, SHARD_LAYOUT_VERSION, split_indices,
                       split_records)
from .worker import shard_worker_main

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

#: checkpoint manifest file, committed last (atomic rename) so a
#: checkpoint is either complete or invisible
MANIFEST_NAME = "serve.json"

#: withdrawal-model name -> the feature grain its group key projects to;
#: the daemon groups what_if flows parent-side at this grain, exactly as
#: the model's own group_key would
_WITHDRAWAL_GRAINS: Dict[str, FeatureSet] = {
    "Hist_AP": FEATURES_AP,
    "Hist_AL": FEATURES_AL,
    "Hist_A": FEATURES_A,
    "Hist_AL+G": FEATURES_AL,
}

WORKER_MODES = ("process", "inline")


class ShardError(RuntimeError):
    """A shard worker reported an error (op failed or worker died)."""


@dataclass
class DaemonConfig:
    """Shard layout, worker mode, and the per-shard service policy."""

    n_shards: int = 4
    workers: str = "process"
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.workers not in WORKER_MODES:
            raise ValueError(
                f"workers must be one of {WORKER_MODES}, got {self.workers!r}")


# -- shard handles ------------------------------------------------------------


class _InlineShard:
    """A shard in this process: own ingest queue + thread, direct calls."""

    #: how long stop() waits for the ingest thread to exit before
    #: declaring the shard stuck (class attr so tests can shrink it)
    _STOP_JOIN_TIMEOUT = 30.0

    def __init__(self, shard_id: int, wan: CloudWAN, config: ServiceConfig,
                 restore_dir: Optional[str] = None):
        if restore_dir is not None:
            self.shard = HotSwapShard.restore(restore_dir, shard_id, wan)
        else:
            self.shard = HotSwapShard(shard_id, wan, config)
        self.shard_id = shard_id
        self._queue: "queue.Queue[Optional[Tuple[int, List[AggRecord]]]]" = (
            queue.Queue())
        self._errors: List[str] = []
        self._pending: Optional[Tuple[str, object]] = None
        self._thread = threading.Thread(
            target=self._ingest_loop, name=f"serve-inline-{shard_id}",
            daemon=True)
        self._thread.start()

    def _ingest_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                hour, records = item
                try:
                    self.shard.ingest_hour(hour, records)
                except Exception as error:
                    self._errors.append(
                        f"shard {self.shard_id} hour {hour}: {error!r}")
            finally:
                self._queue.task_done()

    def _drain(self) -> None:
        self._queue.join()
        if self._errors:
            raise ShardError("; ".join(self._errors))

    def ingest(self, hour: int, records: List[AggRecord]) -> None:
        self._queue.put((hour, records))

    def begin(self, op: str, *payload: object) -> None:
        try:
            if op == "predict":
                contexts, k, unavailable = payload
                result: object = self.shard.predict_batch(
                    contexts, k, unavailable)  # type: ignore[arg-type]
            elif op == "wpredict":
                contexts, k, withdrawn = payload
                result = self.shard.withdrawal_predictions(
                    contexts, k, withdrawn)  # type: ignore[arg-type]
            elif op == "drain":
                self._drain()
                result = self.shard.last_hour
            elif op == "status":
                result = (self.shard.health(
                    ingest_queue_depth=self._queue.qsize()), None)
            elif op == "checkpoint":
                self._drain()
                self.shard.snapshot(str(payload[0]))
                result = None
            else:  # pragma: no cover - daemon only sends known ops
                raise ShardError(f"unknown op {op!r}")
        except ShardError:
            raise
        except Exception as error:
            raise ShardError(
                f"shard {self.shard_id} {op}: {error!r}") from error
        self._pending = (op, result)

    def finish(self) -> object:
        assert self._pending is not None, "finish() without begin()"
        _op, result = self._pending
        self._pending = None
        return result

    def stop(self, drain: bool) -> None:
        if drain:
            self._drain()
        else:
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
                self._queue.task_done()
        self._queue.put(None)
        self._thread.join(timeout=self._STOP_JOIN_TIMEOUT)
        if self._thread.is_alive():
            raise ShardError(
                f"shard {self.shard_id}: ingest thread still alive "
                f"{self._STOP_JOIN_TIMEOUT}s after stop")


class _ProcessShard:
    """A shard in a worker process behind a duplex pipe."""

    #: stop() escalation ladder: graceful join, then SIGTERM + join,
    #: then SIGKILL + join (class attrs so tests can shrink them)
    _STOP_JOIN_TIMEOUT = 30.0
    _ESCALATE_JOIN_TIMEOUT = 5.0

    def __init__(self, shard_id: int, wan: CloudWAN, config: ServiceConfig,
                 restore_dir: Optional[str] = None,
                 obs_enabled: bool = False):
        self.shard_id = shard_id
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        self._conn: "Connection" = parent_conn
        # sends from the ingest path and the query path may come from
        # different threads; one lock keeps pipe messages whole
        self._send_lock = threading.Lock()
        self.process = multiprocessing.Process(
            target=shard_worker_main,
            args=(child_conn, shard_id, wan, config, restore_dir,
                  obs_enabled),
            name=f"serve-shard-{shard_id:02d}",
            daemon=True)
        self.process.start()
        child_conn.close()

    def _send(self, message: Tuple[object, ...]) -> None:
        with self._send_lock:
            self._conn.send(message)

    def ingest(self, hour: int, records: List[AggRecord]) -> None:
        self._send(("ingest", hour, records))

    def begin(self, op: str, *payload: object) -> None:
        self._send((op,) + payload)

    def finish(self) -> object:
        try:
            status, result = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ShardError(
                f"shard {self.shard_id} worker died: {error!r}") from error
        if status != "ok":
            raise ShardError(str(result))
        return result

    def stop(self, drain: bool) -> None:
        """Stop the worker, escalating terminate -> kill if it wedges.

        The protocol ack can succeed while the worker still refuses to
        exit (a non-daemon thread it spawned, a blocked flush, a SIGTERM
        handler installed by user code), so the reap path never trusts a
        single join: graceful join, then SIGTERM, then SIGKILL — and if
        even SIGKILL leaves the process visible, raise rather than leak
        it silently.  A stuck shard always surfaces as ShardError naming
        the shard, chained to the protocol error when there was one.
        """
        error: Optional[BaseException] = None
        try:
            self.begin("stop", drain)
            self.finish()
        except BaseException as exc:
            error = exc
        self.process.join(timeout=self._STOP_JOIN_TIMEOUT)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=self._ESCALATE_JOIN_TIMEOUT)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=self._ESCALATE_JOIN_TIMEOUT)
        stuck = self.process.is_alive()
        if stuck:  # pragma: no cover - SIGKILL cannot be ignored
            raise ShardError(
                f"shard {self.shard_id}: worker pid "
                f"{self.process.pid} survived terminate+kill"
            ) from error
        if error is not None:
            if isinstance(error, ShardError) or not isinstance(
                    error, Exception):
                raise error
            raise ShardError(
                f"shard {self.shard_id} stop: {error!r}") from error


# -- the daemon ---------------------------------------------------------------


class ServeDaemon:
    """Long-running sharded prediction service (see module docstring)."""

    def __init__(self, wan: CloudWAN, config: Optional[DaemonConfig] = None):
        self.wan = wan
        self.config = config or DaemonConfig()
        self._handles: List[object] = []
        # serializes scatter-gather conversations (queries, status,
        # checkpoints) across caller threads; ingest does not take it,
        # so feeding the stream never waits on a query and vice versa
        self._query_lock = threading.Lock()
        self._last_hour: Optional[int] = None
        self._started = False
        self._stopped = False

    # -- lifecycle ------------------------------------------------------------

    def start(self, resume_dir: Optional[Union[str, Path]] = None
              ) -> "ServeDaemon":
        """Spawn the shard workers, optionally restoring a checkpoint."""
        if self._started:
            raise RuntimeError("daemon already started")
        shard_dirs: List[Optional[str]] = [None] * self.config.n_shards
        if resume_dir is not None:
            manifest = read_manifest(resume_dir)
            if manifest["n_shards"] != self.config.n_shards:
                raise ShardError(
                    f"checkpoint has {manifest['n_shards']} shards, daemon "
                    f"configured for {self.config.n_shards}; the shard "
                    "layout is part of the checkpoint format")
            shard_dirs = [str(Path(resume_dir) / f"shard-{i:02d}")
                          for i in range(self.config.n_shards)]
            last = manifest.get("last_hour")
            self._last_hour = last if isinstance(last, int) else None
        obs_enabled = obs.enabled()
        for shard_id in range(self.config.n_shards):
            if self.config.workers == "process":
                handle: object = _ProcessShard(
                    shard_id, self.wan, self.config.service,
                    restore_dir=shard_dirs[shard_id],
                    obs_enabled=obs_enabled)
            else:
                handle = _InlineShard(
                    shard_id, self.wan, self.config.service,
                    restore_dir=shard_dirs[shard_id])
            self._handles.append(handle)
        self._started = True
        return self

    @classmethod
    def resume(cls, directory: Union[str, Path], wan: CloudWAN,
               workers: str = "process") -> "ServeDaemon":
        """Start a daemon from a checkpoint, adopting its shard layout."""
        manifest = read_manifest(directory)
        n_shards = manifest["n_shards"]
        service = manifest["service"]
        assert isinstance(n_shards, int) and isinstance(service, dict)
        config = DaemonConfig(
            n_shards=n_shards, workers=workers,
            service=ServiceConfig(**service))
        daemon = cls(wan, config)
        return daemon.start(resume_dir=directory)

    def __enter__(self) -> "ServeDaemon":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._stopped:
            self.shutdown(drain=not any(exc))

    def shutdown(self, drain: bool = True) -> None:
        """Stop the workers; ``drain`` finishes queued ingest first."""
        if self._stopped:
            return
        self._stopped = True
        failures: List[str] = []
        with self._query_lock:
            for handle in self._handles:
                try:
                    handle.stop(drain)  # type: ignore[attr-defined]
                except ShardError as error:
                    failures.append(str(error))
        if failures:
            raise ShardError("; ".join(failures))

    # -- ingest ---------------------------------------------------------------

    def ingest_hour(self, hour: int, records: Sequence[AggRecord]) -> None:
        """Feed one hour of telemetry; returns without waiting.

        Every shard receives its slice — including an empty one — so
        day crossings (and with them retrains and window evictions)
        happen at the same hours on every shard as they would in the
        single-process service.
        """
        self._check_serving()
        shards = split_records(records, self.config.n_shards)
        for handle, shard_records in zip(self._handles, shards):
            handle.ingest(hour, shard_records)  # type: ignore[attr-defined]
        self._last_hour = hour
        if obs.enabled():
            obs.count("serve.ingest.hours")
            obs.count("serve.ingest.records", float(len(records)))

    def drain(self) -> None:
        """Block until every queued hour is applied on every shard."""
        self._check_serving()
        with self._query_lock:
            self._scatter_all("drain")

    @property
    def last_hour(self) -> Optional[int]:
        """Newest hour handed to :meth:`ingest_hour` (or restored)."""
        return self._last_hour

    # -- queries --------------------------------------------------------------

    def predict_batch(self, contexts: Sequence[FlowContext],
                      k: Optional[int] = None,
                      unavailable: AbstractSet[int] = NO_LINKS,
                      ) -> List[List[Prediction]]:
        """Top-k predictions for many flows, in the caller's order.

        Scatter by owning shard, gather, reassemble — bit-identical to
        :meth:`TipsyService.predict_batch` on the same trained stream.
        """
        self._check_serving()
        prior = frozenset(unavailable)
        indices = split_indices(contexts, self.config.n_shards)
        out: List[Optional[List[Prediction]]] = [None] * len(contexts)
        with obs.timed("serve.predict_batch"), self._query_lock:
            busy = [(shard_id, shard_positions)
                    for shard_id, shard_positions in enumerate(indices)
                    if shard_positions]
            for shard_id, shard_positions in busy:
                self._handles[shard_id].begin(  # type: ignore[attr-defined]
                    "predict",
                    [contexts[i] for i in shard_positions], k, prior)
            for shard_id, shard_positions in busy:
                answers = self._handles[shard_id].finish()  # type: ignore[attr-defined]
                for position, answer in zip(shard_positions, answers):  # type: ignore[call-overload]
                    out[position] = answer
        if obs.enabled():
            obs.count("serve.predict.batches")
            obs.count("serve.predict.flows", float(len(contexts)))
        return [answer if answer is not None else [] for answer in out]

    def what_if(
        self,
        flows: Sequence[Tuple[FlowContext, float]],
        withdrawn: AbstractSet[int],
        k: Optional[int] = None,
    ) -> Dict[int, float]:
        """Predicted per-link byte spill if ``withdrawn`` links go away.

        Flows are grouped parent-side at the withdrawal model's feature
        grain with the same :func:`group_flows` the single service uses,
        each group's prediction comes from its owning shard, and the
        spill accumulation re-runs :func:`spill_from_groups` over the
        groups in their original order — so the result is bit-identical
        to the unsharded ``what_if``, not merely close.
        """
        self._check_serving()
        grain = _WITHDRAWAL_GRAINS.get(self.config.service.withdrawal_model)
        if grain is None:
            raise ShardError(
                f"sharded what_if needs a withdrawal model with a known "
                f"feature grain, got "
                f"{self.config.service.withdrawal_model!r}")
        with obs.timed("serve.what_if"):
            _keys, group_contexts, group_bytes = group_flows(
                lambda context: grain.key(context), flows)
            if not group_contexts:
                return {}
            prior = frozenset(withdrawn)
            indices = split_indices(group_contexts, self.config.n_shards)
            answers: List[Optional[Tuple[Prediction, ...]]] = (
                [None] * len(group_contexts))
            with self._query_lock:
                busy = [(shard_id, shard_positions)
                        for shard_id, shard_positions in enumerate(indices)
                        if shard_positions]
                for shard_id, shard_positions in busy:
                    self._handles[shard_id].begin(  # type: ignore[attr-defined]
                        "wpredict",
                        [group_contexts[i] for i in shard_positions],
                        k, prior)
                for shard_id, shard_positions in busy:
                    got = self._handles[shard_id].finish()  # type: ignore[attr-defined]
                    for position, answer in zip(shard_positions, got):  # type: ignore[call-overload]
                        answers[position] = answer
            groups = [(answer if answer is not None else (), bytes_)
                      for answer, bytes_ in zip(answers, group_bytes)]
            spill = spill_from_groups(groups)
        if obs.enabled():
            obs.count("serve.what_if.calls")
            obs.count("serve.what_if.flows", float(len(flows)))
        return spill

    # -- health / status ------------------------------------------------------

    def status(self) -> DaemonStatus:
        """Gather per-shard health, merge worker metrics, export gauges."""
        self._check_serving()
        healths: List[ShardHealth] = []
        with self._query_lock:
            replies = self._scatter_all("status")
        for reply in replies:
            health, delta = reply  # type: ignore[misc]
            healths.append(health)
            if delta is not None and obs.enabled():
                obs.registry().merge(delta)
        status = DaemonStatus.from_shards(
            tuple(healths), workers=self.config.workers)
        export_status_gauges(status)
        return status

    @property
    def ready(self) -> bool:
        """Every shard has a trained window behind its live replica."""
        return self.status().ready

    # -- checkpoint -----------------------------------------------------------

    def checkpoint(self, directory: Union[str, Path]) -> Path:
        """Drain, snapshot every shard, then commit the manifest.

        Returns the manifest path.  The manifest is written last and
        renamed into place atomically: a reader (or a resume) either
        sees the complete new checkpoint or none of it.
        """
        self._check_serving()
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        with obs.timed("serve.checkpoint"), self._query_lock:
            self._scatter_all("drain")
            busy = [(shard_id, str(root / f"shard-{shard_id:02d}"))
                    for shard_id in range(self.config.n_shards)]
            for shard_id, shard_dir in busy:
                self._handles[shard_id].begin(  # type: ignore[attr-defined]
                    "checkpoint", shard_dir)
            for shard_id, _shard_dir in busy:
                self._handles[shard_id].finish()  # type: ignore[attr-defined]
            manifest_path = write_manifest(
                root, n_shards=self.config.n_shards,
                service=self.config.service, last_hour=self._last_hour)
        if obs.enabled():
            obs.count("serve.checkpoints")
        return manifest_path

    # -- internals ------------------------------------------------------------

    def _check_serving(self) -> None:
        if not self._started:
            raise RuntimeError("daemon not started (call start())")
        if self._stopped:
            raise RuntimeError("daemon already shut down")

    def _scatter_all(self, op: str, *payload: object) -> List[object]:
        """Send one op to every shard, gather replies in shard order.

        Caller must hold ``_query_lock``.
        """
        for handle in self._handles:
            handle.begin(op, *payload)  # type: ignore[attr-defined]
        return [handle.finish()  # type: ignore[attr-defined]
                for handle in self._handles]


# -- checkpoint manifest ------------------------------------------------------


def write_manifest(directory: Union[str, Path], n_shards: int,
                   service: ServiceConfig,
                   last_hour: Optional[int]) -> Path:
    """Atomically commit a checkpoint manifest (write tmp, rename)."""
    root = Path(directory)
    payload = {
        "layout_version": SHARD_LAYOUT_VERSION,
        "hash_seed": SHARD_HASH_SEED,
        "n_shards": n_shards,
        "last_hour": last_hour,
        "service": asdict(service),
    }
    path = root / MANIFEST_NAME
    tmp = root / (MANIFEST_NAME + ".tmp")
    # checkpoint() calls this while holding _query_lock on purpose:
    # queries must observe the old checkpoint or the new one, never a
    # half-committed swap, so the manifest IO stays inside the critical
    # section (docs/operations.md, "checkpoint stalls queries")
    with open(tmp, "w", encoding="utf-8") as handle:  # repro: noqa[RA802]
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_manifest(directory: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a checkpoint manifest.

    Raises :class:`ShardError` when the manifest is absent, unreadable,
    or written under a different shard layout — resuming under a
    mismatched layout would silently misroute keys.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ShardError(
            f"{directory}: no serve checkpoint manifest ({error})") from None
    except ValueError as error:
        raise ShardError(
            f"{path}: unreadable manifest ({error})") from None
    if (payload.get("layout_version") != SHARD_LAYOUT_VERSION
            or payload.get("hash_seed") != SHARD_HASH_SEED):
        raise ShardError(
            f"{path}: checkpoint written under a different shard layout "
            f"(version {payload.get('layout_version')!r}); cannot resume")
    if not isinstance(payload.get("n_shards"), int):
        raise ShardError(f"{path}: manifest missing n_shards")
    if not isinstance(payload.get("service"), dict):
        raise ShardError(f"{path}: manifest missing service config")
    return payload
