"""Nested wall-clock spans: the per-run trace tree.

A span is one timed region with a name; spans opened while another span
is active nest beneath it, so a run's trace is a forest of timing trees
(one root per top-level region).  The tracer's clock is injectable: the
default reads ``time.perf_counter``, tests inject a fake that ticks
deterministically, and — because the clock lives *here*, outside the
determinism-critical packages — hot-path code can open spans without
ever touching the wall clock itself (which is what keeps the RA201 lint
rule clean).

Exception safety is part of the contract: a span closes when its
``with`` block unwinds for *any* reason, so a retrain that raises still
leaves a well-formed tree with correct parentage.

The tracer is thread-aware (each thread nests into its own stack, all
finished roots land in one shared forest) and bounded: past
``max_spans`` recorded spans, new ones are counted but not kept, so a
long-running service cannot grow its trace without limit.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NOOP_SPAN"]

#: tracer default: keep at most this many spans per run
DEFAULT_MAX_SPANS = 10_000


class Span:
    """One timed region: name, start/end ticks, nested children."""

    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "children": [child.to_json() for child in self.children],
        }

    def render(self, indent: int = 0) -> List[str]:
        lines = [f"{'  ' * indent}{self.name:<40s} "
                 f"{self.duration * 1e3:10.3f} ms"]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class _NoopSpan:
    """The shared do-nothing context manager the disabled path returns.

    One module-level instance, re-entrant by construction (it carries no
    state), so a disabled ``obs.span(...)`` costs a dict-free attribute
    read and nothing else.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _ThreadStack(threading.local):
    """Per-thread span stack (spans never nest across threads)."""

    def __init__(self) -> None:
        self.stack: List[Span] = []


class Tracer:
    """Collects spans into a per-run forest of timing trees."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_spans: int = DEFAULT_MAX_SPANS):
        self._clock = clock if clock is not None else time.perf_counter
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._local = _ThreadStack()
        self._recorded = 0
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Spans not kept because the ``max_spans`` cap was reached."""
        with self._lock:
            return self._dropped

    @contextmanager
    def span(self, name: str) -> Iterator[Optional[Span]]:
        """Open a named span; nests under the thread's innermost span."""
        with self._lock:
            if self._recorded >= self._max_spans:
                self._dropped += 1
                keep = False
            else:
                self._recorded += 1
                keep = True
        if not keep:
            yield None
            return
        node = Span(name, self._clock())
        stack = self._local.stack
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self._roots.append(node)
        stack.append(node)
        try:
            yield node
        finally:
            node.end = self._clock()
            # unwind to (and past) this node even if a child leaked open
            while stack and stack.pop() is not node:
                pass

    def roots(self) -> List[Span]:
        """The finished forest (top-level spans in start order)."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._recorded = 0
            self._dropped = 0
        self._local.stack.clear()

    def to_json(self) -> Dict[str, object]:
        return {
            "spans": [root.to_json() for root in self.roots()],
            "dropped": self.dropped,
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for root in self.roots():
            lines.extend(root.render())
        dropped = self.dropped
        if dropped:
            lines.append(f"({dropped} span(s) dropped past the "
                         f"{self._max_spans}-span cap)")
        return "\n".join(lines)
