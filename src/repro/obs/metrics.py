"""Counters, gauges, fixed-bucket histograms, and the registry.

The instruments are deliberately minimal — a name, a float, and (for
histograms) a fixed upper-bound bucket layout — because everything the
serving and pipeline layers need to report is either a monotonic count
(records aggregated, retrains performed), a point-in-time level (cache
occupancy), or a latency distribution (retrain seconds).  No labels: a
distinct name per series keeps the registry a flat dict, the export
formats trivial, and cross-process merging a plain key-wise sum.

Thread- and process-safety model:

* within a process, every mutation takes the owning registry's lock, so
  instruments may be shared across threads;
* across processes, nothing is shared — each worker owns a fresh
  registry and ships a :class:`MetricsSnapshot` (plain picklable data)
  back to the parent, which folds it in with
  :meth:`MetricsRegistry.merge`.  Counters and histograms sum; gauges
  take the incoming value (last merge wins).

Snapshots are immutable value objects; :meth:`MetricsSnapshot.diff`
subtracts an earlier snapshot so a worker that serves several shard
tasks can report exactly the activity of each one.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
]

#: default histogram layout for latencies in seconds: sub-millisecond
#: batched queries up through multi-second strict rebuilds
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing float count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level that can move in either direction."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramData:
    """One histogram's state as plain data (picklable, mergeable).

    ``counts`` has one entry per upper bound in ``buckets`` plus a final
    overflow (+Inf) entry, cumulative in the Prometheus sense only at
    render time — stored here as per-bucket counts.
    """

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float
    count: int

    def merge(self, other: "HistogramData") -> "HistogramData":
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"{self.buckets} vs {other.buckets}")
        return HistogramData(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def diff(self, before: "HistogramData") -> "HistogramData":
        if self.buckets != before.buckets:
            raise ValueError("cannot diff histograms with different buckets")
        return HistogramData(
            buckets=self.buckets,
            counts=tuple(a - b for a, b in zip(self.counts, before.counts)),
            total=self.total - before.total,
            count=self.count - before.count,
        )


class Histogram:
    """Fixed-bucket distribution of observed values.

    Buckets are upper bounds (seconds, bytes, …) sorted ascending; an
    implicit +Inf bucket catches the overflow.  The layout is fixed at
    construction so snapshots from different processes merge key-wise.
    """

    __slots__ = ("name", "_lock", "_buckets", "_counts", "_total", "_count")

    def __init__(self, name: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"histogram {name!r} buckets must be unique and ascending")
        self.name = name
        self._lock = lock
        self._buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self._buckets) + 1)
        self._total = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._total += value
            self._count += 1

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._buckets

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def data(self) -> HistogramData:
        with self._lock:
            return HistogramData(self._buckets, tuple(self._counts),
                                 self._total, self._count)

    def merge_data(self, data: HistogramData) -> None:
        """Fold another process's counts for this series into ours."""
        if data.buckets != self._buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket layout "
                f"{data.buckets} does not match {self._buckets}")
        with self._lock:
            self._counts = [a + b for a, b in zip(self._counts, data.counts)]
            self._total += data.total
            self._count += data.count


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable copy of a registry's state.

    This is the unit of cross-process reporting: workers snapshot their
    local registry, optionally :meth:`diff` against a pre-task snapshot,
    and the parent folds the result in with
    :meth:`MetricsRegistry.merge`.
    """

    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, HistogramData]

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def diff(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """The activity between ``before`` and this snapshot.

        Counters and histograms subtract; gauges keep their current
        value (a level has no meaningful delta).
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - before.counters.get(name, 0.0)
            if delta != 0.0:
                counters[name] = delta
        histograms = {}
        for name, data in self.histograms.items():
            prior = before.histograms.get(name)
            delta_h = data if prior is None else data.diff(prior)
            if delta_h.count:
                histograms[name] = delta_h
        return MetricsSnapshot(counters=counters, gauges=dict(self.gauges),
                               histograms=histograms)

    def to_json(self) -> Dict[str, object]:
        """A JSON-ready dict (sorted keys, plain types)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {
                    "buckets": list(data.buckets),
                    "counts": list(data.counts),
                    "sum": data.total,
                    "count": data.count,
                }
                for name, data in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "MetricsSnapshot":
        counters = {str(k): float(v) for k, v in
                    dict(payload.get("counters", {})).items()}  # type: ignore[arg-type]
        gauges = {str(k): float(v) for k, v in
                  dict(payload.get("gauges", {})).items()}  # type: ignore[arg-type]
        histograms: Dict[str, HistogramData] = {}
        for name, raw in dict(payload.get("histograms", {})).items():  # type: ignore[arg-type]
            entry = dict(raw)
            histograms[str(name)] = HistogramData(
                buckets=tuple(float(b) for b in entry["buckets"]),
                counts=tuple(int(c) for c in entry["counts"]),
                total=float(entry["sum"]),
                count=int(entry["count"]),
            )
        return cls(counters=counters, gauges=gauges, histograms=histograms)


class MetricsRegistry:
    """Named instruments behind one lock, snapshotable and mergeable.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name, so
    instrument sites never need registration ceremony; asking for an
    existing name with a conflicting kind (or histogram layout) raises,
    because two call sites silently sharing a mistyped series is how
    dashboards lie.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free_locked(self, name: str, kind: str) -> None:
        # callers hold self._lock (hence the _locked suffix)
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}")

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free_locked(name, "counter")
                instrument = Counter(name, self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free_locked(name, "gauge")
                instrument = Gauge(name, self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free_locked(name, "histogram")
                instrument = Histogram(name, self._lock, buckets)
                self._histograms[name] = instrument
            elif instrument.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{instrument.buckets}")
            return instrument

    def set_gauges(self, values: Mapping[str, float],
                   prefix: str = "") -> None:
        """Bulk gauge export, e.g. a ``cache_stats()`` dict."""
        for key, value in values.items():
            self.gauge(prefix + key).set(float(value))

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = {name: c._value for name, c in self._counters.items()}
            gauges = {name: g._value for name, g in self._gauges.items()}
            members = list(self._histograms.items())
        # Histogram.data() takes the lock itself; collect outside the
        # registry lock to avoid re-entry (threading.Lock is not re-entrant).
        histograms = {name: h.data() for name, h in members}
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (e.g. a worker's delta) into this registry."""
        for name, value in sorted(snapshot.counters.items()):
            self.counter(name).inc(value)
        for name, value in sorted(snapshot.gauges.items()):
            self.gauge(name).set(value)
        for name, data in sorted(snapshot.histograms.items()):
            self.histogram(name, buckets=data.buckets).merge_data(data)
