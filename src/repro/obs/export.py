"""Snapshot rendering: human text, JSON, and Prometheus text format.

Three surfaces for the same :class:`~repro.obs.metrics.MetricsSnapshot`:

* ``render_text`` — aligned human-readable listing for terminals;
* ``render_json`` — one sorted-keys JSON document (CI artifacts, the
  ``repro bench`` meta embedding);
* ``render_prometheus`` — the Prometheus exposition text format
  (``# TYPE`` lines, ``_bucket{le="..."}`` cumulative histograms), so a
  scrape endpoint or a push gateway can consume a run's metrics
  without this package growing a client dependency.

Metric names are dotted internally (``service.retrain.seconds``) and
mechanically translated for Prometheus (``repro_service_retrain_
seconds``); the translation is total and collision-free for names made
of ``[a-z0-9._]``, which the naming convention in
``docs/observability.md`` requires.
"""

from __future__ import annotations

import json
import math
import re
from typing import List

from .metrics import MetricsSnapshot

__all__ = ["prometheus_name", "render_text", "render_json",
           "render_prometheus", "FORMATS"]

#: formats the CLI surfaces accept
FORMATS = ("text", "json", "prometheus")

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Translate a dotted metric name into a Prometheus-legal one."""
    candidate = "repro_" + _INVALID_CHARS.sub("_", name.replace(".", "_"))
    return candidate


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_text(snapshot: MetricsSnapshot) -> str:
    """Aligned human-readable listing, one line per series."""
    lines: List[str] = []
    if snapshot.counters:
        lines.append("counters:")
        for name in sorted(snapshot.counters):
            lines.append(f"  {name:<44s} "
                         f"{_format_value(snapshot.counters[name]):>14s}")
    if snapshot.gauges:
        lines.append("gauges:")
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name:<44s} "
                         f"{_format_value(snapshot.gauges[name]):>14s}")
    if snapshot.histograms:
        lines.append("histograms:")
        for name in sorted(snapshot.histograms):
            data = snapshot.histograms[name]
            mean = data.total / data.count if data.count else 0.0
            lines.append(f"  {name:<44s} count={data.count} "
                         f"sum={data.total:.6f} mean={mean:.6f}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def render_json(snapshot: MetricsSnapshot, indent: int = 2) -> str:
    """One JSON document, keys sorted for stable diffs."""
    return json.dumps(snapshot.to_json(), indent=indent, sort_keys=True)


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The Prometheus exposition text format.

    Histogram buckets are rendered cumulatively with ``le`` labels plus
    the ``+Inf`` bucket, ``_sum`` and ``_count``, as scrapers expect.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_format_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_format_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        data = snapshot.histograms[name]
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, bucket_count in zip(data.buckets, data.counts):
            cumulative += bucket_count
            lines.append(
                f'{pname}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}")
        cumulative += data.counts[-1]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{pname}_sum {_format_value(data.total)}")
        lines.append(f"{pname}_count {data.count}")
    return "\n".join(lines) + "\n"
