"""``repro obs`` — run an instrumented example and export its metrics.

The subcommand answers "what does the observability layer see?" without
requiring a long-lived deployment: it enables instrumentation, drives a
small end-to-end workload (build a synthetic world, ingest a few days
of telemetry into :class:`~repro.core.service.TipsyService`, serve a
batch of predictions and a what-if query), and prints the resulting
metrics snapshot in the chosen format — ``text`` for terminals,
``json`` for tooling, ``prometheus`` for scrape-style consumers.

``--trace-out FILE`` additionally dumps the run's span tree as JSON,
which is the quickest way to see where the wall-clock time of a daily
retrain + serving loop actually goes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, TextIO

from . import runtime as obs
from .export import FORMATS, render_json, render_prometheus, render_text
from .metrics import MetricsSnapshot


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--days", type=int, default=3,
                        help="days of telemetry to ingest (default 3)")
    parser.add_argument("--format", choices=FORMATS, default="text",
                        help="snapshot format (default: text)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the snapshot to FILE instead of stdout")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="also dump the span tree as JSON to FILE")


def run_example_workload(seed: int, days: int) -> MetricsSnapshot:
    """Drive the instrumented daily retrain + serving loop once.

    Returns the metrics snapshot of everything the run recorded.
    Instrumentation must already be enabled (the CLI enables it; tests
    may enable with an injected clock first).
    """
    # deferred imports: the obs package must stay importable without
    # pulling the whole world in (export/runtime have no repro deps)
    from ..core.service import ServiceConfig, TipsyService
    from ..experiments.scenario import Scenario, ScenarioParams

    if days < 2:
        raise SystemExit("repro obs: --days must be at least 2")
    with obs.timed("obs.example_run"):
        with obs.timed("obs.build_world"):
            scenario = Scenario(ScenarioParams.small(
                seed=seed, horizon_days=days))
        service = TipsyService(scenario.wan, ServiceConfig(
            training_window_days=max(1, days - 1)))
        with obs.timed("obs.ingest"):
            for cols in scenario.stream(0, days * 24):
                service.ingest_hour(cols.hour, scenario.agg_records_for(cols))
        with obs.timed("obs.serve"):
            contexts = scenario.flow_contexts
            service.predict_batch(contexts)
            top = service.predict(contexts[0], k=1)
            withdrawn = frozenset({top[0].link_id}) if top else frozenset()
            flows = [(context, 1000.0) for context in contexts[:256]]
            service.what_if(flows, withdrawn)
        scenario.simulator.export_gauges()
        service.export_gauges()
    return obs.snapshot()


def render_snapshot(snapshot: MetricsSnapshot, fmt: str) -> str:
    if fmt == "json":
        return render_json(snapshot) + "\n"
    if fmt == "prometheus":
        return render_prometheus(snapshot)
    return render_text(snapshot) + "\n"


def run_obs(args: argparse.Namespace) -> int:
    obs.enable(fresh=True)
    snapshot = run_example_workload(seed=args.seed, days=args.days)
    rendered = render_snapshot(snapshot, args.format)
    stream: TextIO
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(rendered)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(rendered)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            json.dump(obs.tracer().to_json(), stream, indent=2)
            stream.write("\n")
        print(f"wrote trace to {args.trace_out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="run an instrumented example and export its metrics")
    add_obs_arguments(parser)
    return run_obs(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
