"""Observability layer: metrics, trace spans, and export surfaces.

Production forecasting systems treat measurement as a first-class
subsystem — TIPSY retrains daily and answers what-if queries against
thousands of peering links, and an operator needs to see retrain
latency, memo hit rates and pipeline stage timings *while it runs*, not
just in offline bench reports.  This package is that subsystem for the
reproduction, built to the same constraints as the rest of the tree:
zero dependencies beyond the runtime, deterministic-safe, and
essentially free when switched off.

The pieces:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms behind a lock-protected :class:`MetricsRegistry`, with
  picklable :class:`MetricsSnapshot` values that merge across process
  boundaries (pool workers report their shard's activity back to the
  parent);
* :mod:`repro.obs.spans` — nested wall-clock :func:`span` timings with
  an injectable clock (the RA201 lint rule bans clock reads inside the
  hot packages; the clock lives here, outside them) collected into a
  per-run trace tree;
* :mod:`repro.obs.runtime` — the process-wide ``enabled()`` switch and
  the cheap facade (``span``/``timed``/``count``/``gauge_set``) the
  instrumented hot paths call;
* :mod:`repro.obs.export` — text, JSON and Prometheus renderings of a
  snapshot, surfaced by ``repro obs`` and embedded in ``repro bench``
  report meta.

Instrumentation is **off by default**: every facade call short-circuits
on one module-level boolean, so the serving and pipeline hot paths pay
a single branch when nobody is watching (the overhead guarantee is
asserted by ``tests/obs/test_overhead.py``).  Nothing here perturbs
determinism — metrics only *read* the computation, and timing flows
through the injectable clock.  Conventions, formats and how to add a
new instrument are documented in ``docs/observability.md``.
"""

from .export import (FORMATS, prometheus_name, render_json,
                     render_prometheus, render_text)
from .metrics import (DEFAULT_TIME_BUCKETS, Counter, Gauge, Histogram,
                      HistogramData, MetricsRegistry, MetricsSnapshot)
from .runtime import (count, disable, enable, enabled, gauge_set, observe,
                      registry, reset, set_gauges, snapshot, span, timed,
                      tracer)
from .spans import NOOP_SPAN, Span, Tracer

__all__ = [
    "FORMATS", "prometheus_name",
    "render_json", "render_prometheus", "render_text",
    "DEFAULT_TIME_BUCKETS", "Counter", "Gauge", "Histogram",
    "HistogramData", "MetricsRegistry", "MetricsSnapshot",
    "count", "disable", "enable", "enabled", "gauge_set", "observe",
    "registry", "reset", "set_gauges", "snapshot", "span", "timed",
    "tracer",
    "NOOP_SPAN", "Span", "Tracer",
]
