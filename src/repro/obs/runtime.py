"""The process-wide observability switch and instrument facade.

Instrumentation is compiled into the hot paths permanently but costs
nearly nothing until someone turns it on: every facade function starts
with a check of one module-level boolean, and the disabled branches
return immediately (``span`` hands back a shared no-op context
manager, ``count``/``observe``/``gauge_set`` return without touching
the registry).  ``repro obs``, ``repro bench`` and tests call
:func:`enable`; library code never does.

One registry and one tracer per process.  Worker processes in a pool
each enable their own fresh state (see
``repro.perf.parallel._init_worker``) and ship snapshot deltas back to
the parent, which merges them — so a parallel run's counters read the
same as the serial run's.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, ContextManager, Iterator, Mapping, Optional, Sequence

from .metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry, MetricsSnapshot
from .spans import NOOP_SPAN, Tracer

__all__ = [
    "enabled", "enable", "disable", "reset",
    "registry", "tracer", "snapshot",
    "span", "timed", "count", "observe", "gauge_set", "set_gauges",
]

_ENABLED = False
_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


def enabled() -> bool:
    """Whether instrumentation is live in this process."""
    return _ENABLED


def enable(clock: Optional[Callable[[], float]] = None,
           fresh: bool = False) -> MetricsRegistry:
    """Turn instrumentation on; returns the live registry.

    ``clock`` injects a deterministic tick source into the tracer (for
    tests); ``fresh=True`` discards any previously accumulated state
    first (a forked pool worker inherits the parent's registry
    copy-on-write and must not double-report it).
    """
    global _ENABLED, _REGISTRY, _TRACER
    # RA501 (all three writes below): these globals are per-process by
    # design.  The rule fires because enable() is reachable from the
    # pool initializer `repro.perf.parallel._init_worker`, but a forked
    # worker calling enable(fresh=True) *wants* its own registry/tracer
    # — worker-side counters are shipped back as snapshot deltas and
    # merged by the parent (perf/parallel.py, serve/worker.py), so no
    # write is ever lost to copy-on-write.  Each marker suppresses a
    # live finding; drop one and `repro lint --project` fires again.
    if fresh or clock is not None:
        _REGISTRY = MetricsRegistry()  # repro: noqa[RA501]
        _TRACER = Tracer(clock=clock)  # repro: noqa[RA501]
    _ENABLED = True  # repro: noqa[RA501]
    return _REGISTRY


def disable() -> None:
    """Turn instrumentation off (accumulated state is kept)."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Disable and discard all accumulated metrics and spans."""
    global _ENABLED, _REGISTRY, _TRACER
    _ENABLED = False
    _REGISTRY = MetricsRegistry()
    _TRACER = Tracer()


def registry() -> MetricsRegistry:
    """The process-wide registry (live regardless of the switch)."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str) -> ContextManager[object]:
    """A named trace span — the shared no-op when disabled."""
    if not _ENABLED:
        return NOOP_SPAN
    return _TRACER.span(name)


@contextmanager
def _timed(name: str) -> Iterator[None]:
    clock = _TRACER._clock
    start = clock()
    try:
        with _TRACER.span(name):
            yield
    finally:
        _REGISTRY.histogram(name + ".seconds").observe(clock() - start)


def timed(name: str) -> ContextManager[object]:
    """A span that also feeds the ``<name>.seconds`` histogram."""
    if not _ENABLED:
        return NOOP_SPAN
    return _timed(name)


def count(name: str, amount: float = 1.0) -> None:
    """Increment a counter (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.counter(name).inc(amount)


def observe(name: str, value: float,
            buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
    """Observe a histogram value (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.histogram(name, buckets=buckets).observe(value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.gauge(name).set(value)


def set_gauges(values: Mapping[str, float], prefix: str = "") -> None:
    """Bulk-export a stats dict as gauges (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.set_gauges(values, prefix=prefix)


def snapshot() -> MetricsSnapshot:
    """Convenience: the current registry's snapshot."""
    return _REGISTRY.snapshot()
