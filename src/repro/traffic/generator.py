"""Persistent flow population and hourly volume generation.

Enterprise cloud ingress is dominated by long-lived, high-volume flows
(paper §2: IPSec/VPN tunnels, storage, AI pipelines).  The generator
builds a persistent population of flow aggregates — (source /24,
destination prefix) pairs with heavy-tailed base rates — and produces
per-hour byte volumes with diurnal/weekly modulation and lognormal noise.

Flow churn (flows that first appear mid-scenario) is what creates the
"tuple not seen in training" cases that motivate the paper's ensemble
models (§3.3.1).

Byte mass per source-AS distance is calibrated against targets derived
from paper Figure 2 (≈60% of bytes from directly-peering ASes, ≈98% from
ASes at most 3 hops away).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..topology.asgraph import ASGraph, ASRole
from ..topology.wan import CloudWAN
from ..util.hashing import mix64
from .diurnal import diurnal_factors_vec, tz_offset_hours, weekday
from .prefixes import PrefixUniverse
from .workloads import profile_for

#: byte-mass targets per AS distance from the WAN (paper Figure 2)
DEFAULT_DISTANCE_TARGETS: Dict[int, float] = {1: 0.58, 2: 0.25, 3: 0.152, 4: 0.018}

#: relative per-AS pick weight within a distance group
DEFAULT_ROLE_WEIGHTS: Dict[ASRole, float] = {
    ASRole.CDN: 22.0,
    ASRole.TIER1: 4.0,
    ASRole.TRANSIT: 5.0,
    ASRole.ACCESS: 4.0,
    ASRole.STUB: 1.0,
}


@dataclass(frozen=True)
class FlowSpec:
    """A persistent flow aggregate at TIPSY's finest granularity.

    One FlowSpec corresponds to an (source /24, destination prefix) pair;
    its destination region/type come from the destination prefix.
    """

    flow_id: int
    src_prefix_id: int
    src_asn: int
    src_metro: str
    dest_prefix_id: int
    dest_region: str
    dest_service: str
    base_rate_mbps: float
    profile_name: str
    start_day: int
    end_day: int
    tz_offset: int


@dataclass
class TrafficParams:
    """Knobs for the flow population."""

    n_flows: int = 12_000
    # fraction of flows that first appear after the scenario start
    late_start_fraction: float = 0.12
    # fraction of flows that stop before the scenario end
    early_end_fraction: float = 0.05
    horizon_days: int = 28
    distance_targets: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_DISTANCE_TARGETS))
    role_weights: Dict[ASRole, float] = field(
        default_factory=lambda: dict(DEFAULT_ROLE_WEIGHTS))
    # zipf-ish skew across destination prefixes
    dest_zipf_s: float = 1.05
    # hourly multiplicative noise (lognormal sigma)
    noise_sigma: float = 0.25
    # cap on a single flow aggregate's share of total demand: keeps the
    # heavy tail realistic without one flow dominating a whole partition
    rate_cap_fraction: float = 0.004
    # flow rates are scaled so aggregate demand averages this fraction of
    # the WAN's total peering capacity; hot links then run at meaningful
    # utilizations and the CMS / risk analyses have something to do
    mean_utilization_target: float = 0.08
    # a fraction of flows is intermittent (batch jobs, periodic syncs):
    # active only on a random subset of days.  Short training windows
    # miss many of them entirely — the effect behind paper Figure 9's
    # accuracy growth with training-window length.
    intermittent_fraction: float = 0.30
    intermittent_active_lo: float = 0.15
    intermittent_active_hi: float = 0.60


class TrafficGenerator:
    """Builds a flow population and serves per-hour byte volumes."""

    def __init__(
        self,
        graph: ASGraph,
        wan: CloudWAN,
        universe: PrefixUniverse,
        distance_of: Callable[[int], Optional[int]],
        params: Optional[TrafficParams] = None,
        seed: int = 0,
    ):
        self.graph = graph
        self.wan = wan
        self.universe = universe
        self.params = params or TrafficParams()
        self.seed = seed
        self._rng = random.Random(seed ^ 0x7AF1C)
        flows = self._build_flows(distance_of)
        self.flows: Tuple[FlowSpec, ...] = tuple(
            self._scale_to_utilization(flows))
        self._build_arrays()

    # -- population ----------------------------------------------------------

    def _build_flows(self, distance_of: Callable[[int], Optional[int]]
                     ) -> List[FlowSpec]:
        params = self.params
        rng = self._rng

        # group source ASes by distance to the WAN
        by_distance: Dict[int, List[int]] = {}
        for asn in self.universe.asns():
            d = distance_of(asn)
            if d is None:
                continue
            by_distance.setdefault(min(d, 4), []).append(asn)
        targets = {
            d: t for d, t in params.distance_targets.items() if by_distance.get(d)
        }
        total_target = sum(targets.values())
        if not targets:
            raise ValueError("no routable source ASes to generate traffic from")

        # destination popularity: zipf over destination prefixes
        n_dest = len(self.wan.dest_prefixes)
        dest_weights = [1.0 / (i + 1) ** params.dest_zipf_s for i in range(n_dest)]
        dest_order = list(range(n_dest))
        rng.shuffle(dest_order)  # decouple popularity from prefix id order

        flows: List[FlowSpec] = []
        flow_id = 0
        for d, target in sorted(targets.items()):
            n_flows_d = max(1, round(params.n_flows * target / total_target))
            asns = by_distance[d]
            weights = [
                params.role_weights.get(self.graph.node(a).role, 1.0) *
                max(1, len(self.universe.of_as(a)))
                for a in asns
            ]
            chosen_asns = rng.choices(asns, weights=weights, k=n_flows_d)
            for asn in chosen_asns:
                prefixes = self.universe.of_as(asn)
                src = prefixes[rng.randrange(len(prefixes))]
                dest_idx = dest_order[
                    rng.choices(range(n_dest), weights=dest_weights, k=1)[0]]
                dest = self.wan.dest_prefix(dest_idx)
                profile = profile_for(dest.service)
                rate = float(np.exp(rng.gauss(
                    math.log(profile.rate_scale_mbps), profile.rate_sigma)))
                start_day, end_day = self._lifetime(rng)
                metro = self.graph.metros.get(src.metro)
                flows.append(FlowSpec(
                    flow_id=flow_id,
                    src_prefix_id=src.prefix_id,
                    src_asn=asn,
                    src_metro=src.metro,
                    dest_prefix_id=dest.prefix_id,
                    dest_region=dest.region,
                    dest_service=dest.service,
                    base_rate_mbps=rate,
                    profile_name=profile.name,
                    start_day=start_day,
                    end_day=end_day,
                    tz_offset=tz_offset_hours(metro.lon),
                ))
                flow_id += 1
        return flows

    def _scale_to_utilization(self, flows: List[FlowSpec]) -> List[FlowSpec]:
        """Scale base rates so demand hits the mean-utilization target.

        Individual flows are then capped at ``rate_cap_fraction`` of the
        total; the cap trims the extreme lognormal tail so a single flow
        aggregate cannot dominate a whole evaluation partition.
        """
        target = self.params.mean_utilization_target
        if target <= 0.0 or not flows:
            return flows
        total_capacity_mbps = sum(
            l.capacity_gbps for l in self.wan.links) * 1000.0
        total_rate_mbps = sum(f.base_rate_mbps for f in flows)
        if total_rate_mbps <= 0.0:
            return flows
        target_total = target * total_capacity_mbps
        factor = target_total / total_rate_mbps
        cap = self.params.rate_cap_fraction * target_total
        return [
            FlowSpec(
                flow_id=f.flow_id, src_prefix_id=f.src_prefix_id,
                src_asn=f.src_asn, src_metro=f.src_metro,
                dest_prefix_id=f.dest_prefix_id, dest_region=f.dest_region,
                dest_service=f.dest_service,
                base_rate_mbps=min(f.base_rate_mbps * factor, cap),
                profile_name=f.profile_name, start_day=f.start_day,
                end_day=f.end_day, tz_offset=f.tz_offset,
            )
            for f in flows
        ]

    def _lifetime(self, rng: random.Random) -> Tuple[int, int]:
        params = self.params
        horizon = params.horizon_days
        start_day = 0
        end_day = horizon
        if rng.random() < params.late_start_fraction:
            start_day = rng.randint(1, max(1, horizon - 1))
        if rng.random() < params.early_end_fraction:
            end_day = rng.randint(start_day + 1, horizon) if start_day + 1 <= horizon else horizon
        return start_day, end_day

    def _build_arrays(self) -> None:
        flows = self.flows
        n = len(flows)
        self._base_bytes_hour = np.array(
            [f.base_rate_mbps * 1e6 / 8.0 * 3600.0 for f in flows],
            dtype=np.float64)
        profiles = [profile_for(f.dest_service) for f in flows]
        self._peak = np.array([p.peak_hour for p in profiles], dtype=np.float64)
        self._amp = np.array([p.amplitude for p in profiles], dtype=np.float64)
        self._wkf = np.array([p.weekend_factor for p in profiles],
                             dtype=np.float64)
        self._tz = np.array([f.tz_offset for f in flows], dtype=np.int64)
        self._start_day = np.array([f.start_day for f in flows], dtype=np.int64)
        self._end_day = np.array([f.end_day for f in flows], dtype=np.int64)
        # intermittent activity: a (day, flow) mask drawn once
        params = self.params
        rng = np.random.default_rng(mix64(0xAC7, seed=self.seed))
        activity = np.ones(n, dtype=np.float64)
        intermittent = rng.random(n) < params.intermittent_fraction
        activity[intermittent] = rng.uniform(
            params.intermittent_active_lo, params.intermittent_active_hi,
            size=int(intermittent.sum()))
        self.activity = activity
        days = params.horizon_days + 1
        self._active_day = rng.random((days, n)) < activity[None, :]

    # -- volumes -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.flows)

    def volumes_for_hour(self, hour: int) -> np.ndarray:
        """Bytes sent by each flow during an absolute hour index.

        Deterministic for a given (generator seed, hour).  Inactive flows
        (outside their lifetime) produce zero.
        """
        day = hour // 24
        active = (self._start_day <= day) & (day <= self._end_day)
        if day < self._active_day.shape[0]:
            active = active & self._active_day[day]
        local = (hour % 24 + self._tz) % 24
        is_weekend = weekday(hour) >= 5
        factors = diurnal_factors_vec(
            local.astype(float), self._peak, self._amp, is_weekend, self._wkf)
        rng = np.random.default_rng(mix64(hour, seed=self.seed))
        noise = rng.lognormal(mean=0.0, sigma=self.params.noise_sigma,
                              size=len(self.flows))
        return self._base_bytes_hour * factors * noise * active

    def flows_active_on(self, day: int) -> List[FlowSpec]:
        """Flows whose lifetime covers a given day."""
        return [f for f in self.flows if f.start_day <= day <= f.end_day]
