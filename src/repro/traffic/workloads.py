"""Workload profiles for cloud service types.

The paper motivates ingress congestion with enterprise workloads — video
conferencing, document hosting, video AI+ML pipelines, IPSec/VPN tunnels
extending on-prem networks into the cloud (§1, §2).  Each cloud service
type maps to a coarse profile that shapes its flows' diurnal behaviour and
size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Traffic shape for a family of services.

    Attributes:
        name: profile family name.
        peak_hour: local hour of peak demand.
        amplitude: diurnal swing (0 = flat, 0.9 = near-silent trough).
        weekend_factor: multiplier applied on Saturday/Sunday.
        rate_sigma: lognormal sigma of per-flow base rates (heavy tail).
        rate_scale_mbps: lognormal median of per-flow base rates.
    """

    name: str
    peak_hour: float
    amplitude: float
    weekend_factor: float
    rate_sigma: float
    rate_scale_mbps: float


ENTERPRISE = WorkloadProfile("enterprise", peak_hour=14.0, amplitude=0.7,
                             weekend_factor=0.35, rate_sigma=1.6, rate_scale_mbps=3.0)
CONSUMER = WorkloadProfile("consumer", peak_hour=20.0, amplitude=0.5,
                           weekend_factor=1.2, rate_sigma=1.3, rate_scale_mbps=1.0)
BATCH = WorkloadProfile("batch", peak_hour=2.0, amplitude=0.6,
                        weekend_factor=1.0, rate_sigma=2.0, rate_scale_mbps=8.0)
FLAT = WorkloadProfile("flat", peak_hour=12.0, amplitude=0.1,
                       weekend_factor=1.0, rate_sigma=1.0, rate_scale_mbps=0.5)

PROFILES: Tuple[WorkloadProfile, ...] = (ENTERPRISE, CONSUMER, BATCH, FLAT)

#: service type -> profile (covers :data:`repro.topology.wan.DEFAULT_SERVICES`)
SERVICE_PROFILES: Dict[str, WorkloadProfile] = {
    "storage": ENTERPRISE,
    "web": CONSUMER,
    "conferencing": ENTERPRISE,
    "email": ENTERPRISE,
    "ai-training": BATCH,
    "video-analytics": BATCH,
    "vpn-gateway": ENTERPRISE,
    "cdn-origin": CONSUMER,
    "database": ENTERPRISE,
    "gaming": CONSUMER,
    "iot-hub": FLAT,
    "backup": BATCH,
    "search": CONSUMER,
    "auth": FLAT,
    "queueing": FLAT,
    "monitoring": FLAT,
    "code-hosting": ENTERPRISE,
    "virtual-desktop": ENTERPRISE,
    "media-upload": CONSUMER,
    "dns": FLAT,
    "cache": CONSUMER,
    "batch": BATCH,
    "speech": ENTERPRISE,
    "maps": CONSUMER,
}


def profile_for(service: str) -> WorkloadProfile:
    """Profile for a service type; unknown services behave as enterprise."""
    return SERVICE_PROFILES.get(service, ENTERPRISE)
