"""Diurnal and weekly traffic modulation.

The paper picks a 7-day testing window because it "covers commonly
observed diurnal and weekly traffic patterns" (Appendix B.2).  This module
provides those patterns: a cosine daily cycle anchored at a profile's local
peak hour, plus a weekend factor.  Local time is approximated from the
metro's longitude (15° per hour), which is plenty for traffic shaping.
"""

from __future__ import annotations

import math

import numpy as np

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7


def tz_offset_hours(lon: float) -> int:
    """Crude timezone offset from longitude (15 degrees per hour)."""
    return int(round(lon / 15.0))


def local_hour(hour_utc: int, tz_offset: int) -> int:
    """Local hour-of-day for an absolute UTC hour index."""
    return (hour_utc + tz_offset) % HOURS_PER_DAY


def weekday(hour_utc: int) -> int:
    """Day-of-week (0=Monday) for an absolute hour index from a Monday."""
    return (hour_utc // HOURS_PER_DAY) % DAYS_PER_WEEK


def diurnal_factor(
    local_hr: float,
    peak_hour: float,
    amplitude: float,
    is_weekend: bool,
    weekend_factor: float,
    floor: float = 0.05,
) -> float:
    """Traffic multiplier for one local hour.

    ``1 + amplitude`` at the peak hour, ``1 - amplitude`` at the trough,
    scaled by ``weekend_factor`` on Saturdays/Sundays, floored at
    ``floor`` so flows never fully vanish (they are long-lived).
    """
    phase = 2.0 * math.pi * (local_hr - peak_hour) / HOURS_PER_DAY
    factor = 1.0 + amplitude * math.cos(phase)
    if is_weekend:
        factor *= weekend_factor
    return max(factor, floor)


def diurnal_factors_vec(
    local_hrs: np.ndarray,
    peak_hours: np.ndarray,
    amplitudes: np.ndarray,
    is_weekend: bool,
    weekend_factors: np.ndarray,
    floor: float = 0.05,
) -> np.ndarray:
    """Vectorised :func:`diurnal_factor` over aligned flow arrays."""
    phase = 2.0 * np.pi * (local_hrs - peak_hours) / HOURS_PER_DAY
    factors = 1.0 + amplitudes * np.cos(phase)
    if is_weekend:
        factors = factors * weekend_factors
    return np.maximum(factors, floor)
