"""Source /24 prefix universe.

TIPSY's highest-resolution source feature is the /24 prefix of the source
IP (paper §3.2: "the widely accepted limit on routable prefix length").
This module assigns a universe of /24 prefixes to the ASes of the synthetic
Internet, each pinned to one metro of its AS's footprint — matching the
paper's observation that there is exactly one source location per /24 in
the Azure dataset (which is why feature set APL ≡ AP).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..topology.asgraph import ASGraph, ASRole


@dataclass(frozen=True)
class SourcePrefix:
    """A /24 source prefix: identity, origin AS and geo-location."""

    prefix_id: int
    asn: int
    metro: str

    @property
    def cidr(self) -> str:
        """Render the prefix id as a synthetic dotted /24."""
        pid = self.prefix_id & 0xFFFFFF
        return f"{(pid >> 16) & 0xFF}.{(pid >> 8) & 0xFF}.{pid & 0xFF}.0/24"


#: default (min, max) /24 prefixes originated per AS, by role
DEFAULT_PREFIX_COUNTS: Dict[ASRole, Tuple[int, int]] = {
    ASRole.TIER1: (80, 220),
    ASRole.TRANSIT: (50, 150),
    ASRole.ACCESS: (40, 120),
    ASRole.CDN: (120, 360),
    ASRole.STUB: (2, 12),
}


class PrefixUniverse:
    """All source /24 prefixes of the synthetic Internet, indexed.

    Within each AS, prefixes concentrate geographically: metros are
    weighted by a per-AS Zipf over a shuffled footprint, so an AS's
    address space clusters in a few "home" metros with a tail elsewhere —
    as real allocation does.  This is what keeps coarse-grained (A-level)
    flow aggregates geographically coherent.
    """

    def __init__(
        self,
        graph: ASGraph,
        counts: Optional[Dict[ASRole, Tuple[int, int]]] = None,
        seed: int = 0,
        metro_zipf_s: float = 1.1,
    ):
        counts = counts or DEFAULT_PREFIX_COUNTS
        rng = random.Random(seed ^ 0x9E3F)
        self.graph = graph
        self._prefixes: List[SourcePrefix] = []
        self._by_as: Dict[int, List[SourcePrefix]] = {}
        prefix_id = 0
        for node in sorted(graph.nodes(), key=lambda n: n.asn):
            lo, hi = counts[node.role]
            n = rng.randint(lo, hi)
            metros = list(node.footprint)
            rng.shuffle(metros)
            weights = [1.0 / (i + 1) ** metro_zipf_s for i in range(len(metros))]
            chosen = rng.choices(metros, weights=weights, k=n)
            per_as: List[SourcePrefix] = []
            for metro in chosen:
                prefix = SourcePrefix(prefix_id, node.asn, metro)
                per_as.append(prefix)
                self._prefixes.append(prefix)
                prefix_id += 1
            self._by_as[node.asn] = per_as

    def __len__(self) -> int:
        return len(self._prefixes)

    def __iter__(self) -> Iterator[SourcePrefix]:
        return iter(self._prefixes)

    def prefix(self, prefix_id: int) -> SourcePrefix:
        return self._prefixes[prefix_id]

    def of_as(self, asn: int) -> Sequence[SourcePrefix]:
        return tuple(self._by_as.get(asn, ()))

    def asns(self) -> Tuple[int, ...]:
        return tuple(self._by_as)

    def location_of(self, prefix_id: int) -> str:
        """Ground-truth metro of a prefix (the Geo-IP DB may distort it)."""
        return self._prefixes[prefix_id].metro
