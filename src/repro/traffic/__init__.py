"""Traffic substrate: prefixes, workloads, diurnal patterns, generation.

Generates the enterprise traffic the WAN serves: announced prefixes and
their source /24s, per-service workloads, and hourly byte volumes with
diurnal/weekly shape.  A determinism-critical package (RA201 in
``docs/static-analysis.md``): every hourly volume is a pure function of
``(scenario seed, hour)``, which is what makes the parallel pipeline
bit-identical to the serial one and benchmark workloads repeatable.
"""

from .diurnal import (
    DAYS_PER_WEEK,
    HOURS_PER_DAY,
    diurnal_factor,
    diurnal_factors_vec,
    local_hour,
    tz_offset_hours,
    weekday,
)
from .prefixes import DEFAULT_PREFIX_COUNTS, PrefixUniverse, SourcePrefix
from .workloads import (
    BATCH,
    CONSUMER,
    ENTERPRISE,
    FLAT,
    PROFILES,
    SERVICE_PROFILES,
    WorkloadProfile,
    profile_for,
)
from .generator import (
    DEFAULT_DISTANCE_TARGETS,
    DEFAULT_ROLE_WEIGHTS,
    FlowSpec,
    TrafficGenerator,
    TrafficParams,
)

__all__ = [
    "DAYS_PER_WEEK", "HOURS_PER_DAY", "diurnal_factor", "diurnal_factors_vec",
    "local_hour", "tz_offset_hours", "weekday",
    "DEFAULT_PREFIX_COUNTS", "PrefixUniverse", "SourcePrefix",
    "BATCH", "CONSUMER", "ENTERPRISE", "FLAT", "PROFILES", "SERVICE_PROFILES",
    "WorkloadProfile", "profile_for",
    "DEFAULT_DISTANCE_TARGETS", "DEFAULT_ROLE_WEIGHTS", "FlowSpec",
    "TrafficGenerator", "TrafficParams",
]
