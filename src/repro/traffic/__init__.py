"""Traffic substrate: prefixes, workloads, diurnal patterns, generation."""

from .diurnal import (
    DAYS_PER_WEEK,
    HOURS_PER_DAY,
    diurnal_factor,
    diurnal_factors_vec,
    local_hour,
    tz_offset_hours,
    weekday,
)
from .prefixes import DEFAULT_PREFIX_COUNTS, PrefixUniverse, SourcePrefix
from .workloads import (
    BATCH,
    CONSUMER,
    ENTERPRISE,
    FLAT,
    PROFILES,
    SERVICE_PROFILES,
    WorkloadProfile,
    profile_for,
)
from .generator import (
    DEFAULT_DISTANCE_TARGETS,
    DEFAULT_ROLE_WEIGHTS,
    FlowSpec,
    TrafficGenerator,
    TrafficParams,
)

__all__ = [
    "DAYS_PER_WEEK", "HOURS_PER_DAY", "diurnal_factor", "diurnal_factors_vec",
    "local_hour", "tz_offset_hours", "weekday",
    "DEFAULT_PREFIX_COUNTS", "PrefixUniverse", "SourcePrefix",
    "BATCH", "CONSUMER", "ENTERPRISE", "FLAT", "PROFILES", "SERVICE_PROFILES",
    "WorkloadProfile", "profile_for",
    "DEFAULT_DISTANCE_TARGETS", "DEFAULT_ROLE_WEIGHTS", "FlowSpec",
    "TrafficGenerator", "TrafficParams",
]
