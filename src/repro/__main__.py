"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``evaluate`` — build a synthetic world and run the paper's §5
  evaluation (Tables 4-7) at a chosen size.
* ``incident`` — replay the §2 cascading-congestion incident, blind and
  TIPSY-guided.
* ``risk`` — run Appendix C's Algorithm 1 and print the links-at-risk
  table.
* ``bench`` — measure pipeline throughput, record a ``BENCH_<date>.json``
  report and compare against the committed baseline.
* ``lint`` — run the determinism & parallel-safety static checks
  (``docs/static-analysis.md``).
* ``obs`` — run an instrumented example workload and export its metrics
  snapshot (text / JSON / Prometheus) and span trace
  (``docs/observability.md``).
* ``snapshot`` — save, load (with byte-identical verification) and
  inspect persistent service state snapshots (``docs/storage.md``).
* ``serve`` — run the long-running sharded serving daemon over a
  telemetry stream, or inspect one of its checkpoints
  (``docs/operations.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    from .experiments import Scenario
    from .pipeline.records import FlowContext


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", choices=("small", "medium", "full"),
                        default="small", help="scenario scale")
    parser.add_argument("--seed", type=int, default=0)


def _build_scenario(args: argparse.Namespace) -> "Scenario":
    from .experiments import Scenario, ScenarioParams

    if args.size == "small":
        params = ScenarioParams.small(seed=args.seed, horizon_days=28)
    elif args.size == "medium":
        params = ScenarioParams.medium(seed=args.seed)
    else:
        params = ScenarioParams(seed=args.seed)
    return Scenario(params)


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .experiments import EvaluationRunner, WindowSpec, paper, tables

    t0 = time.time()
    scenario = _build_scenario(args)
    print(f"world: {scenario.wan.summary()}, {len(scenario.traffic)} flows, "
          f"{len(scenario.outage_schedule)} outages "
          f"(built in {time.time() - t0:.1f}s)")
    runner = EvaluationRunner(scenario)
    window = WindowSpec(train_start_day=0, train_days=args.train_days,
                        test_days=args.test_days)
    t0 = time.time()
    result = runner.run(window, include_naive_bayes=args.naive_bayes)
    print(f"evaluated in {time.time() - t0:.1f}s; "
          f"{result.stats['train_tuples']:.0f} training tuples, "
          f"unseen-outage byte fraction "
          f"{result.stats['unseen_fraction']:.0%}\n")
    order = tables.NB_MODEL_ORDER if args.naive_bayes else tables.PAPER_MODEL_ORDER
    references = {
        "Table 4 — overall": paper.PAPER_TABLE4,
        "Table 5 — all outages": paper.PAPER_TABLE5,
        "Table 6 — seen outages": paper.PAPER_TABLE6,
        "Table 7 — unseen outages": paper.PAPER_TABLE7,
    }
    for title, block in (
            ("Table 4 — overall", result.overall),
            ("Table 5 — all outages", result.outages_all),
            ("Table 6 — seen outages", result.outages_seen),
            ("Table 7 — unseen outages", result.outages_unseen)):
        rows = tables.accuracy_rows(block, order)
        print(tables.format_block(title, rows, tables.ACCURACY_HEADER))
        if args.compare:
            print()
            print(paper.format_comparison(block.rows, references[title],
                                          title))
        print()
    return 0


def cmd_incident(args: argparse.Namespace) -> int:
    from .experiments import build_incident_world, replay_incident

    world = build_incident_world(seed=args.seed)
    names = {world.i1: "I1", world.i2: "I2", world.i3: "I3", world.i4: "I4"}
    for with_tipsy in (False, True):
        report = replay_incident(world, with_tipsy=with_tipsy)
        mode = "TIPSY-guided" if with_tipsy else "blind"
        print(f"== {mode} ==")
        for action in report.actions:
            label = names.get(action.link_id,
                              world.wan.link(action.link_id).name)
            print(f"  t+{action.sample_index - world.surge_start_hour:>2d}h "
                  f"{action.kind:<21s} {label}")
        print(f"  rounds={report.withdrawal_rounds} "
              f"congested-link-hours={report.congested_link_hours}\n")
    return 0


def cmd_risk(args: argparse.Namespace) -> int:
    from .cms import RiskAnalyzer
    from .experiments import EvaluationRunner, tables

    scenario = _build_scenario(args)
    runner = EvaluationRunner(scenario)
    train_hours = args.train_days * 24
    counts = runner.counts_from(runner.collect_window(0, train_hours))
    models = {m.name: m for m in runner.build_models(counts)}
    analyzer = RiskAnalyzer(scenario.wan, models["Hist_AL"], threshold=0.70)

    def hours() -> "Iterator[Tuple[int, List[Tuple[int, FlowContext, float]]]]":
        for cols in scenario.stream(train_hours,
                                    train_hours + args.test_days * 24):
            yield cols.hour, scenario.risk_entries_for(cols)

    findings = analyzer.analyze(hours(), min_extra_hours=2)
    rows = tables.risk_rows(findings, scenario.wan, limit=args.limit)
    print(tables.format_block(
        f"Links at risk ({len(findings)} findings)", rows,
        tables.RISK_HEADER))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments import ReportOptions, WindowSpec, build_report

    scenario = _build_scenario(args)
    options = ReportOptions(
        window=WindowSpec(train_start_day=0, train_days=args.train_days,
                          test_days=args.test_days),
        include_naive_bayes=args.naive_bayes,
    )
    text = build_report(scenario, options)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import run_bench

    return run_bench(
        profile="smoke" if args.smoke else "full",
        seed=args.seed,
        out_dir=args.out_dir,
        tolerance=args.tolerance,
        workers=args.workers,
        compare=not args.no_compare,
        save=not args.no_save,
        rounds=args.rounds,
        suite=args.suite,
        trace_out=args.trace_out,
    )


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


def cmd_obs(args: argparse.Namespace) -> int:
    from .obs.cli import run_obs

    return run_obs(args)


def cmd_snapshot(args: argparse.Namespace) -> int:
    from .store.cli import run_snapshot

    return run_snapshot(args)


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve.cli import run_serve

    return run_serve(args)


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (also introspected by the docs checker)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TIPSY reproduction — predict where traffic will "
                    "ingress a WAN (SIGCOMM 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="run the §5 evaluation")
    _add_world_args(p_eval)
    p_eval.add_argument("--train-days", type=int, default=21)
    p_eval.add_argument("--test-days", type=int, default=7)
    p_eval.add_argument("--naive-bayes", action="store_true",
                        help="include the Appendix A Naive Bayes models")
    p_eval.add_argument("--compare", action="store_true",
                        help="print the paper's numbers alongside")
    p_eval.set_defaults(func=cmd_evaluate)

    p_inc = sub.add_parser("incident", help="replay the §2 incident")
    p_inc.add_argument("--seed", type=int, default=0)
    p_inc.set_defaults(func=cmd_incident)

    p_risk = sub.add_parser("risk", help="links-at-risk analysis (App. C)")
    _add_world_args(p_risk)
    p_risk.add_argument("--train-days", type=int, default=10)
    p_risk.add_argument("--test-days", type=int, default=3)
    p_risk.add_argument("--limit", type=int, default=12)
    p_risk.set_defaults(func=cmd_risk)

    p_report = sub.add_parser(
        "report", help="write a full markdown evaluation report")
    _add_world_args(p_report)
    p_report.add_argument("--train-days", type=int, default=21)
    p_report.add_argument("--test-days", type=int, default=7)
    p_report.add_argument("--naive-bayes", action="store_true")
    p_report.add_argument("-o", "--output", default="report.md")
    p_report.set_defaults(func=cmd_report)

    p_bench = sub.add_parser(
        "bench", help="measure pipeline throughput vs the baseline")
    p_bench.add_argument("--smoke", action="store_true",
                         help="seconds-fast CI profile (small scenario)")
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--suite",
                         choices=("all", "pipeline", "serving", "lint",
                                  "store", "bgp", "soak"),
                         default="all",
                         help="which measurements to run (default: all)")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: cpu count)")
    p_bench.add_argument("--rounds", type=int, default=3,
                         help="timing rounds per metric (best-of)")
    p_bench.add_argument("--out-dir", default="benchmarks/baselines",
                         help="directory for BENCH_<date>.json reports")
    p_bench.add_argument("--tolerance", type=float, default=0.30,
                         help="fractional throughput drop that fails "
                              "the comparison (default 0.30)")
    p_bench.add_argument("--no-compare", action="store_true",
                         help="skip the baseline comparison")
    p_bench.add_argument("--no-save", action="store_true",
                         help="do not write a report file")
    p_bench.set_defaults(func=cmd_bench)

    p_bench.add_argument("--trace-out", default=None, metavar="FILE",
                         help="dump the bench run's span tree as JSON")

    p_lint = sub.add_parser(
        "lint", help="determinism & parallel-safety static checks")
    from .analysis.cli import add_lint_arguments
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_obs = sub.add_parser(
        "obs", help="run an instrumented example and export its metrics")
    from .obs.cli import add_obs_arguments
    add_obs_arguments(p_obs)
    p_obs.set_defaults(func=cmd_obs)

    p_snap = sub.add_parser(
        "snapshot", help="save, load and inspect service state snapshots")
    from .store.cli import add_snapshot_arguments
    add_snapshot_arguments(p_snap)
    p_snap.set_defaults(func=cmd_snapshot)

    p_serve = sub.add_parser(
        "serve", help="run the sharded serving daemon / inspect checkpoints")
    from .serve.cli import add_serve_arguments
    add_serve_arguments(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
