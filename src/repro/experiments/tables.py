"""Row formatting for every table in the paper's evaluation.

Each ``table*`` function takes evaluation outputs and returns printable
rows in the paper's layout (model, Top 1 %, Top 2 %, Top 3 %).  The
benchmarks print these rows next to the paper's numbers so the
reproduction can be eyeballed line by line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cms.risk import RiskFinding
from ..topology.wan import CloudWAN
from .runner import AccuracyBlock, EvaluationResult

#: model display order used by the paper's accuracy tables
PAPER_MODEL_ORDER: Tuple[str, ...] = (
    "Oracle_A", "Hist_A",
    "Oracle_AP", "Hist_AP",
    "Oracle_AL", "Hist_AL",
    "Hist_AL+G",
    "Hist_AP/AL/A", "Hist_AL/AP/A",
)

#: Appendix A ordering (includes the Naive Bayes models)
NB_MODEL_ORDER: Tuple[str, ...] = (
    "Oracle_A", "Hist_A", "NB_A",
    "Oracle_AP", "Hist_AP",
    "Oracle_AL", "Hist_AL", "NB_AL", "Hist_AL/NB_AL",
    "Hist_AP/AL/A", "Hist_AL/AP/A",
)


@dataclass(frozen=True)
class AccuracyRow:
    """One row of a paper accuracy table."""

    model: str
    top1: float
    top2: float
    top3: float

    def formatted(self) -> str:
        return (f"{self.model:<16s} {self.top1 * 100:7.2f} "
                f"{self.top2 * 100:7.2f} {self.top3 * 100:7.2f}")


def accuracy_rows(block: AccuracyBlock,
                  order: Sequence[str] = PAPER_MODEL_ORDER,
                  ) -> List[AccuracyRow]:
    """Rows of an accuracy block in the paper's model order."""
    rows = []
    for name in order:
        per_k = block.rows.get(name)
        if per_k is None:
            continue
        rows.append(AccuracyRow(name, per_k.get(1, 0.0), per_k.get(2, 0.0),
                                per_k.get(3, 0.0)))
    return rows


def table4_overall(result: EvaluationResult) -> List[AccuracyRow]:
    """Table 4: overall prediction accuracy."""
    return accuracy_rows(result.overall)


def table5_outages_all(result: EvaluationResult) -> List[AccuracyRow]:
    """Table 5: accuracy for traffic affected by any link outage."""
    return accuracy_rows(result.outages_all)


def table6_outages_seen(result: EvaluationResult) -> List[AccuracyRow]:
    """Table 6: accuracy for outages also experienced in training."""
    return accuracy_rows(result.outages_seen)


def table7_outages_unseen(result: EvaluationResult) -> List[AccuracyRow]:
    """Table 7: accuracy for outages not experienced in training."""
    return accuracy_rows(result.outages_unseen)


def table9_nb_overall(result: EvaluationResult) -> List[AccuracyRow]:
    """Table 9 (Appendix A): overall accuracy including Naive Bayes."""
    return accuracy_rows(result.overall, NB_MODEL_ORDER)


def table10_nb_outages(result: EvaluationResult) -> List[AccuracyRow]:
    """Table 10 (Appendix A): outage accuracy including Naive Bayes."""
    return accuracy_rows(result.outages_all, NB_MODEL_ORDER)


# -- Tables 12 / 15: links at risk ------------------------------------------------


@dataclass(frozen=True)
class RiskRow:
    """One row of the links-at-risk tables (12 and 15)."""

    router: str
    peer: str
    bandwidth: str
    typical_high_hours: int
    predicted_high_hours: int
    affecting_router: str
    affecting_peer: str
    affecting_bandwidth: str

    def formatted(self) -> str:
        return (f"{self.router:<10s} {self.peer:<8s} {self.bandwidth:>6s} "
                f"{self.typical_high_hours:>7d} {self.predicted_high_hours:>9d}   "
                f"{self.affecting_router:<10s} {self.affecting_peer:<8s} "
                f"{self.affecting_bandwidth:>6s}")


def _bw(capacity_gbps: float) -> str:
    return f"{capacity_gbps:g}G"


def risk_rows(findings: Sequence[RiskFinding], wan: CloudWAN,
              limit: Optional[int] = None) -> List[RiskRow]:
    """Tables 12/15 rows from risk-analysis findings."""
    rows: List[RiskRow] = []
    for finding in findings[:limit]:
        link = wan.link(finding.link_id)
        affecting = wan.link(finding.affecting_link_id)
        rows.append(RiskRow(
            router=link.router,
            peer=f"AS{finding.peer_asn}",
            bandwidth=_bw(finding.capacity_gbps),
            typical_high_hours=finding.typical_high_hours,
            predicted_high_hours=finding.predicted_extra_high_hours,
            affecting_router=affecting.router,
            affecting_peer=f"AS{finding.affecting_peer_asn}",
            affecting_bandwidth=_bw(finding.affecting_capacity_gbps),
        ))
    return rows


# -- Table 3 / Table 11: model costs --------------------------------------------------


@dataclass(frozen=True)
class CostRow:
    """Measured model cost (Table 3 / Table 11 empirical counterpart)."""

    model: str
    train_seconds: float
    predict_micros: float
    size_entries: int

    def formatted(self) -> str:
        return (f"{self.model:<16s} {self.train_seconds:9.3f}s "
                f"{self.predict_micros:9.1f}us {self.size_entries:>10d}")


def format_block(title: str, rows: Sequence[object], header: str) -> str:
    """A printable table block with title and header."""
    lines = [f"== {title} ==", header]
    lines += [row.formatted() for row in rows]
    return "\n".join(lines)

ACCURACY_HEADER = f"{'Model':<16s} {'Top 1 %':>7s} {'Top 2 %':>7s} {'Top 3 %':>7s}"
RISK_HEADER = (f"{'Router':<10s} {'Peer':<8s} {'BW':>6s} {'Typical':>7s} "
               f"{'Predicted':>9s}   {'Affecting':<10s} {'Peer':<8s} {'BW':>6s}")
COST_HEADER = f"{'Model':<16s} {'Training':>10s} {'Predict':>11s} {'Size':>10s}"
