"""Replay of the §2 cascading ingress congestion incident.

The paper opens with a real incident (04 January 2022): a 400G peering
link I1 with peer AS B in location L1 hit 90% ingress utilization; a BGP
withdrawal moved the traffic onto the parallel link I2 (same peer, same
metro), overloading it; the next withdrawal pushed the load onto the two
100G links I3/I4 in location L2, overloading those too, before a final
round of withdrawals dispersed the traffic.  A TIPSY model trained on
the preceding weeks correctly identified I2, then I3/I4, as the links at
risk — so an operator armed with it could have withdrawn from all four
simultaneously.

This module builds that world by hand — a peer AS B with exactly that
link layout, an enterprise customer AS A behind it, a surge of VPN
traffic toward one anycast destination prefix — and replays the incident
through the real CMS twice: blind (pre-TIPSY behaviour, producing the
cascade) and TIPSY-guided (coordinated withdrawal, no cascade).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bgp.simulator import IngressSimulator, SimulatorParams
from ..bgp.state import AdvertisementState
from ..cms.mitigation import (
    CMSConfig,
    CongestionMitigationSystem,
    MitigationAction,
    TrafficEntry,
)
from ..core.features import FEATURES_AL
from ..core.geo_augment import GeoAugmentedModel
from ..core.historical import HistoricalModel
from ..core.training import CountsAccumulator
from ..pipeline.records import FlowContext
from ..telemetry.ipfix import IpfixExporter
from ..topology.asgraph import ASGraph, ASNode, ASRole
from ..topology.geography import MetroCatalog
from ..topology.relationships import Relationship
from ..topology.wan import CloudWAN, DestPrefix, PeeringLink, Region

#: metro codes for the incident's two locations
L1, L2 = "iad", "atl"

CLOUD_ASN = 8075
AS_B = 65001      # the transit peer with I1..I4
AS_C = 65002      # an alternative transit
AS_T1 = 65000     # tier-1 above everyone
AS_A = 65100      # the enterprise source AS


@dataclass
class IncidentWorld:
    """The hand-built topology and traffic of the §2 incident."""

    graph: ASGraph
    wan: CloudWAN
    simulator: IngressSimulator
    flows: List[Tuple[FlowContext, int, str, int, int]]
    """(context, src_prefix, src_metro, dest_prefix, src_asn) per flow."""
    exporter: IpfixExporter
    # link ids of the named incident links
    i1: int
    i2: int
    i3: int
    i4: int

    # traffic model: a diurnal baseline plus an incident surge
    base_gbps: float = 210.0
    surge_gbps: float = 345.0
    surge_start_hour: int = 21 * 24 + 21   # "04 January, around 21:00"
    surge_hours: int = 10

    def demand_gbps(self, hour: int) -> float:
        local = hour % 24
        diurnal = 1.0 + 0.35 * np.cos(2 * np.pi * (local - 14) / 24.0)
        demand = self.base_gbps * diurnal
        if self.surge_start_hour <= hour < self.surge_start_hour + self.surge_hours:
            demand += self.surge_gbps
        return float(demand)

    def entries_for_hour(self, hour: int,
                         state: AdvertisementState) -> List[TrafficEntry]:
        """Per-flow traffic entries (post-routing) for one hour."""
        total_bytes = self.demand_gbps(hour) * 1e9 / 8.0 * 3600.0
        per_flow = total_bytes / len(self.flows)
        day = hour // 24
        entries: List[TrafficEntry] = []
        for context, src_prefix, src_metro, dest_prefix, src_asn in self.flows:
            shares = self.simulator.resolve_shares(
                src_asn, src_metro, src_prefix, dest_prefix, state, day)
            for link_id, frac in shares:
                entries.append(TrafficEntry(
                    link_id=link_id, dest_prefix_id=dest_prefix,
                    context=context, bytes=per_flow * frac))
        return entries


def build_incident_world(seed: int = 0, n_flows: int = 140) -> IncidentWorld:
    """Construct the §2 world: AS B with I1/I2 (400G, L1) and I3/I4
    (100G, L2), plus global spare capacity, and an enterprise AS A whose
    VPN traffic enters near L1."""
    metros = MetroCatalog()
    graph = ASGraph(metros)
    world_metros = (L1, L2, "chi", "dfw", "lax", "lon", "fra", "sin", "tyo")
    graph.add_as(ASNode(AS_T1, ASRole.TIER1, tuple(metros.names)))
    graph.add_as(ASNode(AS_B, ASRole.TRANSIT, world_metros))
    graph.add_as(ASNode(AS_C, ASRole.TRANSIT, world_metros))
    graph.add_as(ASNode(AS_A, ASRole.STUB, ("nyc",)))
    graph.add_link(AS_B, AS_T1, Relationship.PROVIDER)
    graph.add_link(AS_C, AS_T1, Relationship.PROVIDER)
    graph.add_link(AS_A, AS_B, Relationship.PROVIDER)

    links = [
        PeeringLink(0, AS_B, L1, f"{L1}-er1", 400.0),   # I1
        PeeringLink(1, AS_B, L1, f"{L1}-er2", 400.0),   # I2
        PeeringLink(2, AS_B, L2, f"{L2}-er1", 100.0),   # I3
        PeeringLink(3, AS_B, L2, f"{L2}-er1", 100.0),   # I4
    ]
    link_id = 4
    # the absorb tier: parallel 400G links one metro ring further out
    for metro in ("chi", "chi", "dfw", "dfw", "lax", "lon", "fra", "sin",
                  "tyo"):
        links.append(PeeringLink(link_id, AS_B, metro,
                                 f"{metro}-er{1 + link_id % 2}", 400.0))
        link_id += 1
    for metro in (L1, "chi", "lon", "sin"):
        links.append(PeeringLink(link_id, AS_C, metro,
                                 f"{metro}-er1", 400.0))
        link_id += 1
    for metro in (L1, "lon", "tyo"):
        links.append(PeeringLink(link_id, AS_T1, metro,
                                 f"{metro}-er2", 400.0))
        link_id += 1

    regions = [Region(f"{L1}-region", L1), Region("lon-region", "lon")]
    dests = [
        DestPrefix(0, "100.64.0.0/10", f"{L1}-region", "vpn-gateway"),
        DestPrefix(1, "100.128.0.0/16", f"{L1}-region", "storage"),
        DestPrefix(2, "100.129.0.0/16", "lon-region", "web"),
    ]
    wan = CloudWAN(CLOUD_ASN, links, regions, dests, metros)

    # A short pool radius keeps the cascade geographically tight, as in
    # the incident: the L1 parallel pair first (I1/I2 are the only
    # pre-incident exits), then L2 (I3/I4), then the absorb tier.
    simulator = IngressSimulator(graph, wan, SimulatorParams(
        candidate_pool_size=4,
        reroute_radius_km=600.0,
        locality=0.45,
        minor_drift_daily=0.0,
        major_drift_daily=0.0,
    ), seed=seed)

    flows = []
    for i in range(n_flows):
        src_prefix = 10_000 + i
        context = FlowContext(src_asn=AS_A, src_prefix=src_prefix,
                              src_loc=0, dest_region=0, dest_service=0)
        flows.append((context, src_prefix, "nyc", 0, AS_A))
    exporter = IpfixExporter(seed=seed)
    return IncidentWorld(graph=graph, wan=wan, simulator=simulator,
                         flows=flows, exporter=exporter,
                         i1=0, i2=1, i3=2, i4=3)


@dataclass
class IncidentReport:
    """Outcome of one incident replay."""

    with_tipsy: bool
    actions: List[MitigationAction]
    congested_link_hours: int
    max_utilization: Dict[int, float]
    utilization_timeline: Dict[int, List[Tuple[int, float]]]

    @property
    def withdrawal_rounds(self) -> int:
        """Distinct hours in which withdrawals were issued."""
        return len({a.sample_index for a in self.actions
                    if a.kind.startswith("withdraw")})


def train_incident_model(world: IncidentWorld,
                         train_hours: int) -> GeoAugmentedModel:
    """Train Hist_AL+G on the pre-incident window (paper: 3 weeks)."""
    state = AdvertisementState(world.wan)
    counts = CountsAccumulator()
    for hour in range(train_hours):
        entries = world.entries_for_hour(hour, state)
        true_bytes = np.array([e.bytes for e in entries])
        sampled = world.exporter.sample_bytes(true_bytes, hour)
        for entry, est in zip(entries, sampled):
            if est > 0.0:
                counts.add(entry.context, entry.link_id, float(est))
    hist_al = HistoricalModel(FEATURES_AL)
    counts.fit([hist_al])
    return GeoAugmentedModel(hist_al, world.wan, name="Hist_AL+G")


def replay_incident(world: IncidentWorld, with_tipsy: bool,
                    train_hours: Optional[int] = None,
                    horizon_hours: Optional[int] = None) -> IncidentReport:
    """Run the incident through CMS, blind or TIPSY-guided."""
    train_hours = train_hours or world.surge_start_hour
    horizon_hours = horizon_hours or (
        world.surge_start_hour + world.surge_hours + 6)
    predictor = train_incident_model(world, train_hours) if with_tipsy else None
    cms = CongestionMitigationSystem(
        world.wan,
        CMSConfig(coordinated=with_tipsy),
        predictor=predictor,
    )
    state = AdvertisementState(world.wan)

    congested_link_hours = 0
    max_util: Dict[int, float] = {}
    timeline: Dict[int, List[Tuple[int, float]]] = {
        world.i1: [], world.i2: [], world.i3: [], world.i4: []}
    for hour in range(world.surge_start_hour - 2, horizon_hours):
        entries = world.entries_for_hour(hour, state)
        link_bytes: Dict[int, float] = {}
        for entry in entries:
            link_bytes[entry.link_id] = (
                link_bytes.get(entry.link_id, 0.0) + entry.bytes)
        for link_id, bytes_ in link_bytes.items():
            util = cms.monitor.utilization(link_id, bytes_)
            max_util[link_id] = max(max_util.get(link_id, 0.0), util)
            if util > cms.config.threshold:
                congested_link_hours += 1
            if link_id in timeline:
                timeline[link_id].append((hour, util))
        cms.handle_sample(hour, state, entries)
    return IncidentReport(
        with_tipsy=with_tipsy,
        actions=list(cms.actions),
        congested_link_hours=congested_link_hours,
        max_utilization=max_util,
        utilization_timeline=timeline,
    )
