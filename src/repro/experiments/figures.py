"""Data series for every figure in the paper's evaluation.

Each function returns plain data (lists of points / dicts of series) that
a benchmark prints or a notebook plots; nothing here draws.  The figure
numbering follows the paper:

* Figure 2 — CDF of ingress bytes by source-AS distance
* Figure 3 — CDF of bytes vs number of receiving links, by AS distance
* Figure 5 — oracle accuracy as a function of k
* Figure 6 — earliest outage per link over a long horizon
* Figure 7 — days since each link's last outage
* Figure 9 — accuracy vs training-window length (Appendix B.1)
* Figure 10 — daily accuracy decay after training (Appendix B.2)
* Figure 11 — accuracy distribution across many windows (Appendix B.3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.accuracy import ActualsMap
from ..core.features import FEATURES_A, FEATURES_AL, FEATURES_AP, FeatureSet
from ..core.oracle import OracleModel
from ..core.training import CountsAccumulator
from ..pipeline.outages import (
    Outage,
    OutageParams,
    first_outage_days,
    last_outage_days_before,
    schedule_outages,
)
from .runner import EvaluationRunner, WindowSpec
from .scenario import Scenario


def cdf_points(values: Sequence[float],
               weights: Optional[Sequence[float]] = None,
               ) -> List[Tuple[float, float]]:
    """Weighted CDF as (value, cumulative fraction) points."""
    if weights is None:
        weights = [1.0] * len(values)
    pairs = sorted(zip(values, weights))
    total = sum(w for _v, w in pairs)
    if total <= 0.0:
        return []
    out: List[Tuple[float, float]] = []
    acc = 0.0
    for value, weight in pairs:
        acc += weight
        out.append((value, acc / total))
    return out


# -- Figure 2 -----------------------------------------------------------------

def fig2_bytes_by_distance(scenario: Scenario, start_hour: int,
                           end_hour: int) -> Dict[int, float]:
    """Fraction of ingress bytes per source-AS distance (paper Figure 2).

    Distance is the shortest valley-free AS distance, exactly as the
    paper infers it from BMP data.
    """
    by_distance: Dict[int, float] = {}
    for cols in scenario.stream(start_hour, end_hour):
        flows = scenario.traffic.flows
        for row, bytes_ in zip(cols.flow_rows, cols.sampled_bytes):
            if bytes_ <= 0.0:
                continue
            d = scenario.bmp.as_distance(flows[row].src_asn)
            if d is None:
                continue
            by_distance[d] = by_distance.get(d, 0.0) + float(bytes_)
    total = sum(by_distance.values())
    return {d: b / total for d, b in sorted(by_distance.items())}


# -- Figure 3 -----------------------------------------------------------------

def fig3_link_spread(scenario: Scenario, start_hour: int, end_hour: int,
                     ) -> Dict[int, List[Tuple[int, float]]]:
    """Per AS-distance CDFs of bytes vs number of receiving links.

    For every source AS, counts how many distinct peering links its
    traffic arrived on, then builds a byte-weighted CDF per distance
    group (paper Figure 3).
    """
    links_per_as: Dict[int, Set[int]] = {}
    bytes_per_as: Dict[int, float] = {}
    flows = scenario.traffic.flows
    for cols in scenario.stream(start_hour, end_hour):
        for row, link_id, bytes_ in zip(cols.flow_rows, cols.link_ids,
                                        cols.sampled_bytes):
            if bytes_ <= 0.0:
                continue
            asn = flows[row].src_asn
            links_per_as.setdefault(asn, set()).add(int(link_id))
            bytes_per_as[asn] = bytes_per_as.get(asn, 0.0) + float(bytes_)

    groups: Dict[int, List[Tuple[int, float]]] = {}
    for asn, links in links_per_as.items():
        d = scenario.bmp.as_distance(asn)
        if d is None:
            continue
        groups.setdefault(min(d, 4), []).append(
            (len(links), bytes_per_as[asn]))
    return {
        d: [(int(v), c) for v, c in cdf_points(
            [float(n) for n, _b in entries], [b for _n, b in entries])]
        for d, entries in sorted(groups.items())
    }


# -- Figure 5 -----------------------------------------------------------------

def fig5_oracle_accuracy_vs_k(
    actuals: ActualsMap,
    ks: Sequence[int] = (1, 2, 3, 4, 5, 7, 10, 15, 25, 50),
    feature_sets: Sequence[FeatureSet] = (FEATURES_A, FEATURES_AP,
                                          FEATURES_AL),
) -> Dict[str, List[Tuple[int, float]]]:
    """Oracle accuracy as a function of k (paper Figure 5).

    The unrestricted oracle reaches 100%; the curves show how much of
    the traffic is theoretically predictable at each link budget.
    """
    counts = CountsAccumulator()
    for context, by_link in actuals.items():
        for link, bytes_ in by_link.items():
            counts.add(context, link, bytes_)
    oracles = [OracleModel(fs) for fs in feature_sets]
    counts.fit(oracles)

    curves: Dict[str, List[Tuple[int, float]]] = {}
    total = sum(sum(v.values()) for v in actuals.values())
    for oracle in oracles:
        points: List[Tuple[int, float]] = []
        for k in ks:
            matched = 0.0
            for context, by_link in actuals.items():
                predictions = oracle.predict(context, k)
                matched += sum(by_link.get(p.link_id, 0.0)
                               for p in predictions)
            points.append((k, matched / total if total else 0.0))
        curves[oracle.name] = points
    return curves


# -- Figures 6 and 7 ----------------------------------------------------------

def fig6_first_outage_curve(
    link_ids: Sequence[int],
    horizon_days: int = 365,
    params: Optional[OutageParams] = None,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Cumulative fraction of links whose first outage happened by day d.

    The paper observes ~80% of links fail at least once in a year, with
    near-linear growth (Figure 6); the default hazard reproduces that
    when run at the paper's year-long horizon with the long-term hazard.
    """
    params = params or OutageParams(daily_hazard=0.0044, flaky_fraction=0.01)
    outages = schedule_outages(link_ids, horizon_days * 24, params, seed=seed)
    firsts = first_outage_days(outages)
    n_links = len(link_ids)
    points = []
    for day in range(horizon_days + 1):
        frac = sum(1 for d in firsts.values() if d <= day) / n_links
        points.append((day, frac))
    return points


def fig7_last_outage_curve(
    link_ids: Sequence[int],
    horizon_days: int = 365,
    params: Optional[OutageParams] = None,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Cumulative fraction of links whose last outage was <= d days ago,
    looking back from the end of the horizon (paper Figure 7)."""
    params = params or OutageParams(daily_hazard=0.0044, flaky_fraction=0.01)
    outages = schedule_outages(link_ids, horizon_days * 24, params, seed=seed)
    lasts = last_outage_days_before(outages, horizon_days)
    n_links = len(link_ids)
    points = []
    for age in range(horizon_days + 1):
        frac = sum(1 for a in lasts.values() if a <= age) / n_links
        points.append((age, frac))
    return points


# -- Figure 9: training-window length ------------------------------------------

@dataclass
class WindowSweepPoint:
    """One (training length, accuracy stats) point for Figure 9."""

    train_days: int
    mean: float
    min: float
    max: float


def fig9_training_window_sweep(
    scenario: Scenario,
    train_lengths: Sequence[int] = (3, 7, 14, 21),
    test_starts: Sequence[int] = (21, 22, 23, 24),
    test_days: int = 3,
    model_name: str = "Hist_AL/AP/A",
    k: int = 3,
) -> List[WindowSweepPoint]:
    """Accuracy vs training-window length, averaged over several
    non-overlapping test periods (paper Figure 9 / Appendix B.1)."""
    runner = EvaluationRunner(scenario)
    points: List[WindowSweepPoint] = []
    for length in train_lengths:
        accs: List[float] = []
        for start in test_starts:
            window = WindowSpec(train_start_day=start - length,
                                train_days=length, test_days=test_days)
            if window.train_start_day < 0:
                continue
            result = runner.run(window)
            accs.append(result.overall.get(model_name, k))
        if accs:
            points.append(WindowSweepPoint(
                length, sum(accs) / len(accs), min(accs), max(accs)))
    return points


# -- Figure 10: model staleness ---------------------------------------------------

def fig10_staleness_curve(
    scenario: Scenario,
    train_days: int = 14,
    horizon_days: Optional[int] = None,
    model_name: str = "Hist_AL/AP/A",
    ks: Sequence[int] = (1, 2, 3),
) -> Dict[int, Dict[int, float]]:
    """Accuracy on each single day after training ends (paper Figure 10).

    Returns {day offset: {k: accuracy}}.  Trains once; evaluates each
    later day separately, so the decay of a stale model is visible.
    """
    runner = EvaluationRunner(scenario)
    horizon_days = horizon_days or scenario.params.horizon_days
    per_day = runner.run_staleness(
        train_start_day=0, train_days=train_days,
        max_offset_days=horizon_days - train_days, ks=ks)
    return {
        offset: dict(rows[model_name]) for offset, rows in per_day.items()
    }


@dataclass(frozen=True)
class TukeySummary:
    """Box-plot statistics with Tukey whiskers (paper Figure 11's
    caption: "Whiskers follow Tukey's definition")."""

    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]


def tukey_summary(values: Sequence[float]) -> TukeySummary:
    """Quartiles plus Tukey whiskers (last points within 1.5 IQR)."""
    if not values:
        raise ValueError("tukey_summary needs at least one value")
    data = np.asarray(sorted(values), dtype=float)
    q1, median, q3 = (float(np.percentile(data, p)) for p in (25, 50, 75))
    iqr = q3 - q1
    lo_fence, hi_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inside = data[(data >= lo_fence) & (data <= hi_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    outliers = tuple(float(v) for v in data
                     if v < lo_fence or v > hi_fence)
    return TukeySummary(q1, median, q3, whisker_low, whisker_high,
                        outliers)


# -- Figure 11: sensitivity across windows -------------------------------------------

def fig11_outage_sensitivity(
    scenario: Scenario,
    n_windows: int = 6,
    train_days: int = 10,
    model_name: str = "Hist_AL/AP/A",
    k: int = 3,
) -> Dict[str, List[float]]:
    """Accuracy distributions by outage type across many 1-day test
    windows (paper Figure 11).  Returns lists of per-window accuracies
    keyed by partition name."""
    runner = EvaluationRunner(scenario)
    out: Dict[str, List[float]] = {
        "overall": [], "outages_all": [], "outages_seen": [],
        "outages_unseen": [],
    }
    horizon = scenario.params.horizon_days
    for i in range(n_windows):
        start = i % max(1, horizon - train_days - 1)
        window = WindowSpec(train_start_day=start, train_days=train_days,
                            test_days=1)
        if window.test_hours[1] > scenario.horizon_hours:
            continue
        result = runner.run(window)
        for name, block in (("overall", result.overall),
                            ("outages_all", result.outages_all),
                            ("outages_seen", result.outages_seen),
                            ("outages_unseen", result.outages_unseen)):
            if block.rows.get(model_name) and block.total_bytes > 0:
                out[name].append(block.rows[model_name][k])
    return out
