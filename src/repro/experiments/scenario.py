"""End-to-end scenario: build the synthetic world, stream telemetry.

A :class:`Scenario` wires together every substrate — topology, WAN, BGP
simulator, traffic, outage schedule, telemetry, pipeline encoders — and
streams hour-by-hour telemetry columns.  It is the single entry point the
examples, the evaluation runner and the benchmarks all share.

The streaming fast path is columnar: per hour it produces aligned numpy
arrays (flow row, link id, true bytes, sampled bytes).  This is the
scaled-down stand-in for the paper's Spark aggregation pipeline (§4.2-4.3);
the record-level pipeline classes in :mod:`repro.pipeline` expose the same
data as :class:`AggRecord` streams when fidelity matters more than speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List,
                    NamedTuple, Optional, Tuple)

import numpy as np

from ..bgp.simulator import IngressSimulator, SimulatorParams
from ..bgp.state import AdvertisementState
from ..pipeline.encoding import EncoderSet
from ..pipeline.outages import Outage, OutageParams, schedule_outages
from ..pipeline.records import AggRecord, FlowContext, UNKNOWN_LOCATION
from ..telemetry.bmp import BmpFeed
from ..telemetry.geoip import GeoIPDatabase
from ..telemetry.ipfix import IpfixExporter, IpfixRecord
from ..telemetry.metadata import MetadataStore
from ..topology.asgraph import TopologyParams, generate_as_graph
from ..topology.geography import MetroCatalog
from ..topology.wan import WANParams, generate_wan
from ..traffic.generator import TrafficGenerator, TrafficParams
from ..traffic.prefixes import PrefixUniverse

if TYPE_CHECKING:
    from ..cms.mitigation import TrafficEntry


class HourColumns(NamedTuple):
    """One hour of telemetry in columnar form (aligned arrays)."""

    hour: int
    flow_rows: np.ndarray     # index into scenario.traffic.flows
    link_ids: np.ndarray
    true_bytes: np.ndarray    # ground truth (never shown to TIPSY)
    sampled_bytes: np.ndarray  # IPFIX-sampled, scaled-up estimate


@dataclass
class ScenarioParams:
    """Complete configuration of a synthetic world."""

    seed: int = 0
    horizon_days: int = 28
    topology: TopologyParams = field(default_factory=TopologyParams)
    wan: WANParams = field(default_factory=WANParams)
    traffic: TrafficParams = field(default_factory=TrafficParams)
    outages: OutageParams = field(default_factory=OutageParams)
    simulator: SimulatorParams = field(default_factory=SimulatorParams)
    sampling_rate: int = 4096
    geoip_error_rate: float = 0.03

    @classmethod
    def small(cls, seed: int = 0, horizon_days: int = 10) -> "ScenarioParams":
        """A minutes-scale configuration for tests and quickstarts."""
        return cls(
            seed=seed,
            horizon_days=horizon_days,
            topology=TopologyParams(
                n_tier1=3, n_transit=10, n_access=24, n_cdn=3, n_stub=70),
            wan=WANParams(n_regions=6, n_dest_prefixes=24),
            traffic=TrafficParams(n_flows=900, horizon_days=horizon_days),
            outages=OutageParams(flaky_fraction=0.02),
        )

    @classmethod
    def medium(cls, seed: int = 0, horizon_days: int = 28) -> "ScenarioParams":
        """A mid-size configuration for sweep-style experiments that run
        the full methodology many times (Appendix B figures)."""
        return cls(
            seed=seed,
            horizon_days=horizon_days,
            topology=TopologyParams(
                n_tier1=4, n_transit=20, n_access=60, n_cdn=6, n_stub=200),
            wan=WANParams(n_regions=10, n_dest_prefixes=48),
            traffic=TrafficParams(n_flows=4000, horizon_days=horizon_days),
            outages=OutageParams(flaky_fraction=0.012),
        )


class Scenario:
    """The assembled synthetic world, ready to stream telemetry."""

    def __init__(self, params: Optional[ScenarioParams] = None):
        self.params = params or ScenarioParams()
        p = self.params
        # keep the traffic horizon in lock-step with the scenario horizon
        if p.traffic.horizon_days != p.horizon_days:
            p.traffic = replace(p.traffic, horizon_days=p.horizon_days)

        self.metros = MetroCatalog()
        self.graph = generate_as_graph(self.metros, p.topology, seed=p.seed)
        self.wan = generate_wan(self.graph, p.wan, seed=p.seed)
        self.universe = PrefixUniverse(self.graph, seed=p.seed)
        self.geoip = GeoIPDatabase(self.universe, self.metros,
                                   error_rate=p.geoip_error_rate, seed=p.seed)
        self.metadata = MetadataStore(self.wan, self.geoip)
        self.simulator = IngressSimulator(self.graph, self.wan,
                                          p.simulator, seed=p.seed)
        self.bmp = BmpFeed(self.graph, self.wan, seed=p.seed)
        self.traffic = TrafficGenerator(
            self.graph, self.wan, self.universe,
            distance_of=self.simulator.as_distance,
            params=p.traffic, seed=p.seed)
        self.exporter = IpfixExporter(sampling_rate=p.sampling_rate,
                                      seed=p.seed)
        self.outage_schedule: Tuple[Outage, ...] = tuple(schedule_outages(
            self.wan.link_ids, self.horizon_hours, p.outages, seed=p.seed))
        self.encoders = EncoderSet()
        self.flow_contexts: Tuple[FlowContext, ...] = tuple(
            self._build_contexts())
        # outage transitions per hour
        self._starts: Dict[int, List[int]] = {}
        self._ends: Dict[int, List[int]] = {}
        for outage in self.outage_schedule:
            self._starts.setdefault(outage.start_hour, []).append(outage.link_id)
            self._ends.setdefault(outage.end_hour, []).append(outage.link_id)
        # expansion cache for the fast path
        self._exp_key: Optional[Tuple[int, int, int]] = None
        self._exp: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        # per-flow identifier columns for the columnar IPFIX path
        self._flow_columns: Optional[Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]] = None

    # -- derived properties ----------------------------------------------------

    @property
    def horizon_hours(self) -> int:
        return self.params.horizon_days * 24

    def _build_contexts(self) -> Iterator[FlowContext]:
        enc = self.encoders
        for flow in self.traffic.flows:
            metro = self.geoip.lookup(flow.src_prefix_id)
            loc = UNKNOWN_LOCATION if metro is None else enc.location.encode(metro)
            yield FlowContext(
                src_asn=flow.src_asn,
                src_prefix=flow.src_prefix_id,
                src_loc=loc,
                dest_region=enc.region.encode(flow.dest_region),
                dest_service=enc.service.encode(flow.dest_service),
            )

    def link_capacities(self) -> Dict[int, float]:
        return {l.link_id: l.capacity_gbps for l in self.wan.links}

    # -- state management --------------------------------------------------------

    def state_at(self, hour: int) -> AdvertisementState:
        """A fresh state with exactly the outages active at ``hour``."""
        state = AdvertisementState(self.wan)
        for outage in self.outage_schedule:
            if outage.active_at(hour):
                state.set_link_down(outage.link_id)
        return state

    def apply_outage_transitions(self, state: AdvertisementState,
                                 hour: int) -> None:
        """Apply scheduled link up/down transitions occurring at ``hour``."""
        for link_id in self._ends.get(hour, ()):
            state.set_link_up(link_id)
        for link_id in self._starts.get(hour, ()):
            state.set_link_down(link_id)

    def scheduled_down_at(self, hour: int) -> FrozenSet[int]:
        """Ground-truth set of links down at an hour (for analyses)."""
        return frozenset(o.link_id for o in self.outage_schedule
                         if o.active_at(hour))

    # -- streaming -----------------------------------------------------------------

    def _expansion(self, day: int, state: AdvertisementState
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        key = (state.uid, state.version, day)
        if self._exp_key == key:
            return self._exp
        rows: List[int] = []
        links: List[int] = []
        fracs: List[float] = []
        resolve = self.simulator.resolve_shares
        for i, flow in enumerate(self.traffic.flows):
            shares = resolve(flow.src_asn, flow.src_metro, flow.src_prefix_id,
                             flow.dest_prefix_id, state, day)
            for link_id, frac in shares:
                rows.append(i)
                links.append(link_id)
                fracs.append(frac)
        self._exp = (np.array(rows, dtype=np.int64),
                     np.array(links, dtype=np.int64),
                     np.array(fracs))
        self._exp_key = key
        return self._exp

    def stream(
        self,
        start_hour: int,
        end_hour: int,
        state: Optional[AdvertisementState] = None,
        apply_outages: bool = True,
    ) -> Iterator[HourColumns]:
        """Stream hourly telemetry columns over [start_hour, end_hour).

        If ``state`` is provided, the caller owns it (e.g. a CMS injecting
        withdrawals between iterations); scheduled outages are still
        applied unless ``apply_outages`` is False.
        """
        if not 0 <= start_hour <= end_hour <= self.horizon_hours:
            raise ValueError("stream window outside the scenario horizon")
        if state is None:
            state = self.state_at(start_hour) if apply_outages else (
                AdvertisementState(self.wan))
        elif apply_outages:
            # bring the caller's state up to the window start
            for outage in self.outage_schedule:
                if outage.active_at(start_hour):
                    if outage.link_id not in state.link_outages:
                        state.set_link_down(outage.link_id)
        for hour in range(start_hour, end_hour):
            if apply_outages and hour != start_hour:
                self.apply_outage_transitions(state, hour)
            day = hour // 24
            rows, links, fracs = self._expansion(day, state)
            vols = self.traffic.volumes_for_hour(hour)
            true_bytes = vols[rows] * fracs
            sampled = self.exporter.sample_bytes(true_bytes, hour)
            yield HourColumns(hour, rows, links, true_bytes, sampled)

    # -- record-level view (pipeline-faithful path) -----------------------------------

    def ipfix_records_for(self, cols: HourColumns,
                          use_sampled: bool = True) -> List[IpfixRecord]:
        """Convert an hour of columns into IPFIX records."""
        flows = self.traffic.flows
        values = cols.sampled_bytes if use_sampled else cols.true_bytes
        records = []
        for row, link_id, bytes_ in zip(cols.flow_rows, cols.link_ids, values):
            if bytes_ <= 0.0:
                continue
            flow = flows[row]
            records.append(IpfixRecord(cols.hour, int(link_id),
                                       flow.src_prefix_id, flow.src_asn,
                                       flow.dest_prefix_id, float(bytes_)))
        return records

    def ipfix_columns_for(self, cols: HourColumns,
                          use_sampled: bool = True
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
        """One hour of columns as aligned IPFIX identifier arrays.

        Returns ``(link_ids, src_prefix_ids, src_asns, dest_prefix_ids,
        bytes)`` filtered to positive byte counts — the same records, in
        the same order, as :meth:`ipfix_records_for`, without building
        per-record objects.  Feed straight into
        :meth:`repro.pipeline.HourlyAggregator.aggregate_hour_arrays`.
        """
        if self._flow_columns is None:
            flows = self.traffic.flows
            self._flow_columns = (
                np.array([f.src_prefix_id for f in flows], dtype=np.int64),
                np.array([f.src_asn for f in flows], dtype=np.int64),
                np.array([f.dest_prefix_id for f in flows], dtype=np.int64),
            )
        src_prefixes, src_asns, dest_prefixes = self._flow_columns
        values = cols.sampled_bytes if use_sampled else cols.true_bytes
        keep = values > 0.0
        rows = cols.flow_rows[keep]
        return (cols.link_ids[keep].astype(np.int64, copy=False),
                src_prefixes[rows], src_asns[rows], dest_prefixes[rows],
                values[keep].astype(np.float64, copy=False))

    def traffic_entries_for(self, cols: HourColumns,
                            use_sampled: bool = True
                            ) -> "List[TrafficEntry]":
        """One hour of columns as CMS :class:`TrafficEntry` objects."""
        from ..cms.mitigation import TrafficEntry

        flows = self.traffic.flows
        contexts = self.flow_contexts
        values = cols.sampled_bytes if use_sampled else cols.true_bytes
        entries = []
        for row, link_id, bytes_ in zip(cols.flow_rows, cols.link_ids, values):
            if bytes_ <= 0.0:
                continue
            entries.append(TrafficEntry(
                link_id=int(link_id),
                dest_prefix_id=flows[row].dest_prefix_id,
                context=contexts[row],
                bytes=float(bytes_)))
        return entries

    def risk_entries_for(self, cols: HourColumns,
                         use_sampled: bool = True) -> List[Tuple[int, FlowContext, float]]:
        """One hour of columns as (link, context, bytes) for RiskAnalyzer."""
        contexts = self.flow_contexts
        values = cols.sampled_bytes if use_sampled else cols.true_bytes
        return [
            (int(link_id), contexts[row], float(bytes_))
            for row, link_id, bytes_ in zip(cols.flow_rows, cols.link_ids,
                                            values)
            if bytes_ > 0.0
        ]

    def agg_records_for(self, cols: HourColumns,
                        use_sampled: bool = True) -> List[AggRecord]:
        """One hour of columns as aggregated, feature-indexed records."""
        contexts = self.flow_contexts
        values = cols.sampled_bytes if use_sampled else cols.true_bytes
        sums: Dict[Tuple[FlowContext, int], float] = {}
        for row, link_id, bytes_ in zip(cols.flow_rows, cols.link_ids, values):
            if bytes_ <= 0.0:
                continue
            key = (contexts[row], int(link_id))
            sums[key] = sums.get(key, 0.0) + float(bytes_)
        return [
            AggRecord(cols.hour, link_id, ctx.src_asn, ctx.src_prefix,
                      ctx.src_loc, ctx.dest_region, ctx.dest_service, bytes_)
            for (ctx, link_id), bytes_ in sums.items()
        ]
