"""The paper's published numbers, as data.

Reference values transcribed from the paper's evaluation tables so that
benchmarks, the CLI and EXPERIMENTS.md can print measured results next
to what the paper reports.  All values are byte-weighted accuracies in
[0, 1]; the key is (model name, k).

Tables 4-7 are the November-December 2021 Azure WAN results; Tables 9
and 10 are the October 2020 Naive Bayes comparison (Appendix A).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

AccuracyRef = Dict[str, Dict[int, float]]


def _table(rows: Mapping[str, Tuple[float, float, float]]) -> AccuracyRef:
    return {
        model: {1: t1 / 100.0, 2: t2 / 100.0, 3: t3 / 100.0}
        for model, (t1, t2, t3) in rows.items()
    }


#: Table 4 — overall prediction accuracy
PAPER_TABLE4: AccuracyRef = _table({
    "Oracle_A": (61.74, 84.03, 90.55),
    "Hist_A": (59.36, 82.07, 89.02),
    "Oracle_AP": (80.66, 98.13, 99.46),
    "Hist_AP": (75.62, 95.28, 97.09),
    "Oracle_AL": (72.31, 93.81, 97.34),
    "Hist_AL": (69.62, 91.85, 95.73),
    "Hist_AL+G": (69.62, 91.93, 95.86),
    "Hist_AP/AL/A": (76.02, 95.95, 97.88),
    "Hist_AL/AP/A": (69.64, 91.87, 95.76),
})

#: Table 5 — all link outages
PAPER_TABLE5: AccuracyRef = _table({
    "Oracle_A": (78.67, 86.16, 92.35),
    "Hist_A": (55.69, 62.92, 67.45),
    "Oracle_AP": (94.25, 98.41, 99.56),
    "Hist_AP": (58.93, 62.88, 64.08),
    "Oracle_AL": (86.04, 93.40, 97.33),
    "Hist_AL": (60.74, 67.54, 70.65),
    "Hist_AL+G": (62.71, 71.12, 76.42),
    "Hist_AP/AL/A": (64.64, 70.18, 73.44),
    "Hist_AL/AP/A": (60.84, 67.73, 71.58),
})

#: Table 6 — seen outages
PAPER_TABLE6: AccuracyRef = _table({
    "Oracle_A": (82.04, 89.34, 92.69),
    "Hist_A": (77.25, 82.82, 85.42),
    "Oracle_AP": (95.59, 99.01, 99.89),
    "Hist_AP": (88.02, 91.08, 92.52),
    "Oracle_AL": (90.15, 96.35, 98.52),
    "Hist_AL": (84.49, 89.61, 91.97),
    "Hist_AL+G": (84.62, 89.77, 92.43),
    "Hist_AP/AL/A": (89.25, 92.82, 94.57),
    "Hist_AL/AP/A": (84.52, 89.66, 92.04),
})

#: Table 7 — unseen outages
PAPER_TABLE7: AccuracyRef = _table({
    "Oracle_A": (76.14, 83.78, 92.09),
    "Hist_A": (39.52, 47.99, 53.97),
    "Oracle_AP": (93.25, 97.97, 99.31),
    "Hist_AP": (37.10, 41.73, 42.75),
    "Oracle_AL": (82.95, 91.19, 96.44),
    "Hist_AL": (42.92, 50.99, 54.66),
    "Hist_AL+G": (46.33, 57.31, 64.56),
    "Hist_AP/AL/A": (46.17, 53.20, 57.60),
    "Hist_AL/AP/A": (43.07, 51.27, 56.23),
})

#: Table 9 — overall accuracy with Naive Bayes (October 2020 data)
PAPER_TABLE9: AccuracyRef = _table({
    "Oracle_A": (66.29, 86.10, 91.84),
    "Hist_A": (63.21, 83.47, 89.98),
    "NB_A": (60.11, 80.55, 87.48),
    "Oracle_AP": (77.05, 94.82, 97.60),
    "Hist_AP": (73.54, 92.88, 96.01),
    "Oracle_AL": (75.69, 94.96, 98.02),
    "Hist_AL": (70.21, 90.74, 94.39),
    "NB_AL": (67.25, 88.56, 93.29),
    "Hist_AL/NB_AL": (70.85, 91.65, 95.47),
    "Hist_AP/AL/A": (73.70, 93.24, 96.41),
    "Hist_AL/AP/A": (71.04, 91.82, 95.63),
})

#: Table 10 — outage accuracy with Naive Bayes (October 2020 data)
PAPER_TABLE10: AccuracyRef = _table({
    "Oracle_A": (57.10, 80.84, 86.87),
    "Hist_A": (34.17, 51.18, 66.53),
    "NB_A": (29.68, 45.67, 51.87),
    "Oracle_AP": (68.70, 90.54, 93.57),
    "Hist_AP": (30.01, 51.00, 71.00),
    "Oracle_AL": (68.19, 90.64, 94.71),
    "Hist_AL": (41.46, 59.81, 73.82),
    "NB_AL": (38.50, 56.08, 65.07),
    "Hist_AL/NB_AL": (38.97, 59.08, 74.74),
    "Hist_AP/AL/A": (37.48, 59.14, 79.54),
    "Hist_AL/AP/A": (41.63, 60.75, 75.76),
})

#: scalar facts the paper states outside its tables
PAPER_FACTS = {
    # Figure 2: fraction of bytes from directly-peering source ASes
    "fig2_one_hop_bytes": 0.60,
    # Figure 2: fraction of bytes from ASes at most 3 hops away
    "fig2_within_three_hops": 0.982,
    # Figure 6: fraction of links with >= 1 outage per year
    "fig6_links_with_yearly_outage": 0.80,
    # Figure 7: fraction of links with an outage in the last ~50 days
    "fig7_links_recent_outage": 0.33,
    # §5.3.2: unseen outages' share of outage-affected bytes
    "unseen_outage_byte_fraction": 0.57,
    # headline claim: top-3 accuracy after BGP withdrawals
    "headline_withdrawal_top3": 0.76,
}


def comparison_rows(
    measured: Mapping[str, Mapping[int, float]],
    reference: AccuracyRef,
    ks: Tuple[int, ...] = (1, 2, 3),
) -> List[Tuple[str, int, float, float, float]]:
    """(model, k, measured, paper, delta) rows for side-by-side output."""
    rows = []
    for model, ref_ks in reference.items():
        got = measured.get(model)
        if got is None:
            continue
        for k in ks:
            rows.append((model, k, got[k], ref_ks[k], got[k] - ref_ks[k]))
    return rows


def format_comparison(measured: Mapping[str, Mapping[int, float]],
                      reference: AccuracyRef, title: str,
                      ks: Tuple[int, ...] = (3,)) -> str:
    """A printable measured-vs-paper block (top-3 by default)."""
    lines = [f"== {title} (measured vs paper, top-{'/'.join(map(str, ks))}) ==",
             f"{'Model':<16s}" + "".join(
                 f"  k={k}: meas  paper  delta" for k in ks)]
    for model in reference:
        got = measured.get(model)
        if got is None:
            continue
        cells = "".join(
            f"  {got[k] * 100:8.2f} {reference[model][k] * 100:6.2f} "
            f"{(got[k] - reference[model][k]) * 100:+6.2f}"
            for k in ks)
        lines.append(f"{model:<16s}{cells}")
    return "\n".join(lines)
