"""Replay of the §6 East Asia incident (06 September 2021).

"A peering link in East Asia hit high utilization.  CMS withdrew two
/24 prefixes.  ...  TIPSY identified three links that the traffic would
shift to, with two different transit providers, two in the same
metropolitan region and one in a different country in East Asia ...
After CMS issued prefix withdrawals, traffic shifted as predicted to
those links.  2 hours after the withdrawals, traffic levels had dropped
sufficiently that the prefixes were re-announced by CMS."

The world: a hot peering link in Hong Kong with transit provider P,
alternates with P and a second transit Q in the same metro, and a
P link in Taipei (different country).  Two destination /24s carry the
surge; the replay checks each sentence of the paper's account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from ..bgp.simulator import IngressSimulator, SimulatorParams
from ..bgp.state import AdvertisementState
from ..cms.mitigation import (
    CMSConfig,
    CongestionMitigationSystem,
    MitigationAction,
    TrafficEntry,
)
from ..core.features import FEATURES_AL
from ..core.geo_augment import GeoAugmentedModel
from ..core.historical import HistoricalModel
from ..core.training import CountsAccumulator
from ..pipeline.records import FlowContext
from ..telemetry.ipfix import IpfixExporter
from ..topology.asgraph import ASGraph, ASNode, ASRole
from ..topology.geography import MetroCatalog
from ..topology.relationships import Relationship
from ..topology.wan import CloudWAN, DestPrefix, PeeringLink, Region

CLOUD_ASN = 8075
AS_P = 65020       # first transit provider (owns the hot link)
AS_Q = 65021       # second transit provider, same metro
AS_SRC = 65120     # enterprise source, single-homed behind P
AS_DUAL = 65121    # enterprise source, dual-homed behind P and Q


@dataclass
class EastAsiaWorld:
    """The §6 topology: HKG hot link + three predicted alternates."""

    graph: ASGraph
    wan: CloudWAN
    simulator: IngressSimulator
    flows: List[Tuple[FlowContext, int, str, int, int]]
    exporter: IpfixExporter
    hot: int          # the congested link (AS P, hkg)
    alt_same_peer: int    # AS P, hkg — same metro
    alt_other_peer: int   # AS Q, hkg — same metro, other transit
    alt_other_country: int  # AS P, tpe — different country

    base_gbps: float = 66.0
    surge_gbps: float = 120.0
    surge_start_hour: int = 14 * 24 + 13
    surge_hours: int = 2   # the paper's surge calms after ~2 hours

    def demand_gbps(self, hour: int) -> float:
        local = hour % 24
        diurnal = 1.0 + 0.30 * np.cos(2 * np.pi * (local - 13) / 24.0)
        demand = self.base_gbps * diurnal
        if self.surge_start_hour <= hour < self.surge_start_hour + self.surge_hours:
            demand += self.surge_gbps
        return float(demand)

    def entries_for_hour(self, hour: int,
                         state: AdvertisementState) -> List[TrafficEntry]:
        total_bytes = self.demand_gbps(hour) * 1e9 / 8.0 * 3600.0
        per_flow = total_bytes / len(self.flows)
        entries: List[TrafficEntry] = []
        for context, src_prefix, src_metro, dest_prefix, src_asn in self.flows:
            shares = self.simulator.resolve_shares(
                src_asn, src_metro, src_prefix, dest_prefix, state,
                hour // 24)
            for link_id, frac in shares:
                entries.append(TrafficEntry(
                    link_id=link_id, dest_prefix_id=dest_prefix,
                    context=context, bytes=per_flow * frac))
        return entries


def build_east_asia_world(seed: int = 0,
                          n_flows: int = 120) -> EastAsiaWorld:
    """The §6 world: hot HKG link, alternates in HKG and Taipei."""
    metros = MetroCatalog()
    graph = ASGraph(metros)
    footprint_p = ("hkg", "tpe", "sin", "tyo")
    footprint_q = ("hkg", "sin")
    graph.add_as(ASNode(AS_P, ASRole.TRANSIT, footprint_p))
    graph.add_as(ASNode(AS_Q, ASRole.TRANSIT, footprint_q))
    graph.add_as(ASNode(AS_SRC, ASRole.STUB, ("hkg",)))
    graph.add_as(ASNode(AS_DUAL, ASRole.STUB, ("hkg",)))
    graph.add_link(AS_SRC, AS_P, Relationship.PROVIDER)
    graph.add_link(AS_DUAL, AS_P, Relationship.PROVIDER)
    graph.add_link(AS_DUAL, AS_Q, Relationship.PROVIDER)

    links = [
        PeeringLink(0, AS_P, "hkg", "hkg-er1", 100.0),  # the hot link
        PeeringLink(1, AS_P, "hkg", "hkg-er2", 100.0),  # alt, same peer
        PeeringLink(2, AS_Q, "hkg", "hkg-er1", 100.0),  # alt, other peer
        PeeringLink(3, AS_P, "tpe", "tpe-er1", 100.0),  # alt, other country
        PeeringLink(4, AS_P, "sin", "sin-er1", 100.0),
        PeeringLink(5, AS_Q, "sin", "sin-er1", 100.0),
        PeeringLink(6, AS_P, "tyo", "tyo-er1", 100.0),
    ]
    regions = [Region("hkg-region", "hkg")]
    dests = [
        DestPrefix(0, "100.80.1.0/24", "hkg-region", "conferencing"),
        DestPrefix(1, "100.80.2.0/24", "hkg-region", "storage"),
        DestPrefix(2, "100.80.3.0/24", "hkg-region", "web"),
        DestPrefix(3, "100.80.4.0/24", "hkg-region", "vpn-gateway"),
    ]
    wan = CloudWAN(CLOUD_ASN, links, regions, dests, metros)

    # the enterprise source is dual-homed with real egress load
    # balancing (origin_split): most bytes ride provider P into the hot
    # link, a steady fraction rides provider Q — so TIPSY's history
    # covers alternates at two different transit providers, as in §6
    simulator = IngressSimulator(graph, wan, SimulatorParams(
        candidate_pool_size=4,
        reroute_radius_km=1000.0,
        locality=0.45,
        origin_split=0.30,
        minor_drift_daily=0.0,
        major_drift_daily=0.0,
    ), seed=seed)

    flows = []
    for i in range(n_flows):
        src_prefix = 20_000 + i
        dest = i % 4
        # 70% of flows sit behind P alone, 30% are dual-homed — the
        # mixed-provider population whose alternates span two transits
        asn = AS_SRC if i % 10 < 7 else AS_DUAL
        flows.append((FlowContext(asn, src_prefix, 0, 0, dest % 2),
                      src_prefix, "hkg", dest, asn))
    return EastAsiaWorld(
        graph=graph, wan=wan, simulator=simulator, flows=flows,
        exporter=IpfixExporter(seed=seed),
        hot=0, alt_same_peer=1, alt_other_peer=2, alt_other_country=3)


@dataclass
class EastAsiaReport:
    """Outcome of the §6 replay, matched to the paper's account."""

    withdrawn_prefixes: Tuple[int, ...]
    withdrawal_hour: Optional[int]
    reannounce_hour: Optional[int]
    predicted_links: Tuple[int, ...]
    actual_shift_links: Tuple[int, ...]
    max_alt_utilization: float
    actions: List[MitigationAction]

    @property
    def hours_until_reannounce(self) -> Optional[int]:
        if self.withdrawal_hour is None or self.reannounce_hour is None:
            return None
        return self.reannounce_hour - self.withdrawal_hour


def replay_east_asia(world: EastAsiaWorld,
                     train_hours: Optional[int] = None) -> EastAsiaReport:
    """Run the §6 incident through the TIPSY-guided CMS."""
    train_hours = train_hours or world.surge_start_hour
    # train Hist_AL+G on the pre-incident window
    state = AdvertisementState(world.wan)
    counts = CountsAccumulator()
    for hour in range(train_hours):
        entries = world.entries_for_hour(hour, state)
        sampled = world.exporter.sample_bytes(
            np.array([e.bytes for e in entries]), hour)
        for entry, est in zip(entries, sampled):
            if est > 0.0:
                counts.add(entry.context, entry.link_id, float(est))
    hist_al = HistoricalModel(FEATURES_AL)
    counts.fit([hist_al])
    predictor = GeoAugmentedModel(hist_al, world.wan, name="Hist_AL+G")

    # TIPSY's pre-incident answer: across the affected flow population,
    # where would the hot link's traffic go?  (the paper queries TIPSY
    # for all the flows that arrived on the hot link)
    predicted_set = set()
    for context, _p, _m, _d, _a in world.flows[:40]:
        for p in predictor.predict(context, 3,
                                   unavailable=frozenset({world.hot})):
            predicted_set.add(p.link_id)
    predicted = tuple(sorted(predicted_set))

    # operators shift well below the trigger (§2's mitigation dropped a
    # 90%-hot link to ~18%); a 55% target needs both top /24s moved
    cms = CongestionMitigationSystem(world.wan, CMSConfig(target=0.55),
                                     predictor=predictor)
    run_state = AdvertisementState(world.wan)
    withdrawal_hour = reannounce_hour = None
    withdrawn: Set[int] = set()
    shift_links: Set[int] = set()
    max_alt_util = 0.0
    horizon = world.surge_start_hour + world.surge_hours + 6
    for hour in range(world.surge_start_hour - 2, horizon):
        entries = world.entries_for_hour(hour, run_state)
        actions = cms.handle_sample(hour, run_state, entries)
        for action in actions:
            if action.kind.startswith("withdraw"):
                withdrawal_hour = withdrawal_hour or hour
                withdrawn.add(action.dest_prefix_id)
            elif action.kind == "reannounce" and reannounce_hour is None:
                reannounce_hour = hour
        if withdrawal_hour is not None and hour > withdrawal_hour - 1:
            for entry in entries:
                if (entry.dest_prefix_id in withdrawn
                        and entry.link_id != world.hot):
                    shift_links.add(entry.link_id)
            for link_id in shift_links:
                link_bytes = sum(e.bytes for e in entries
                                 if e.link_id == link_id)
                max_alt_util = max(max_alt_util, cms.monitor.utilization(
                    link_id, link_bytes))
    return EastAsiaReport(
        withdrawn_prefixes=tuple(sorted(withdrawn)),
        withdrawal_hour=withdrawal_hour,
        reannounce_hour=reannounce_hour,
        predicted_links=predicted,
        actual_shift_links=tuple(sorted(shift_links)),
        max_alt_utilization=max_alt_util,
        actions=list(cms.actions),
    )
