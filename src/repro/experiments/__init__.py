"""Scenarios and the paper's evaluation harness.

Ties the world together: :class:`~repro.experiments.scenario.Scenario`
builds a complete synthetic universe (topology + BGP + traffic +
outage schedule) from one seed, streams its hourly telemetry, and the
:class:`~repro.experiments.runner.EvaluationRunner` reproduces the
paper's §5 evaluation — Tables 4–7, the figures, and the §2 cascading
incident replay — on top of exactly the pipeline and models that the
online service uses.
"""

from .scenario import HourColumns, Scenario, ScenarioParams
from .runner import (
    AccuracyBlock,
    EvaluationResult,
    EvaluationRunner,
    WindowSpec,
)
from .incident import (
    IncidentReport,
    IncidentWorld,
    build_incident_world,
    replay_incident,
    train_incident_model,
)
from .incident_east_asia import (
    EastAsiaReport,
    EastAsiaWorld,
    build_east_asia_world,
    replay_east_asia,
)
from . import figures, paper, tables
from .report import ReportOptions, build_report

__all__ = [
    "HourColumns", "Scenario", "ScenarioParams",
    "AccuracyBlock", "EvaluationResult", "EvaluationRunner", "WindowSpec",
    "IncidentReport", "IncidentWorld", "build_incident_world",
    "replay_incident", "train_incident_model",
    "EastAsiaReport", "EastAsiaWorld", "build_east_asia_world",
    "replay_east_asia",
    "figures", "paper", "tables",
    "ReportOptions", "build_report",
]
