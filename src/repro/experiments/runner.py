"""Train/test evaluation runner (paper §5.1).

Reproduces the paper's methodology end to end:

* train on a window of sampled telemetry (3 weeks in the paper),
* test on the following window (1 week),
* infer outages from IPFIX ("no bytes in an hour" rule) on both windows,
* partition test traffic into normal vs outage-affected — a flow is
  outage-affected in the hours when its byte-dominant training link is
  down (§5.3.1) — and split outage-affected traffic into *seen* (the link
  also failed during training) and *unseen* (§5.3.2),
* score every model with the byte-weighted top-k metric, handing it the
  availability prior for the hours being scored,
* build the matching k-restricted oracles per feature set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Mapping,
                    Optional, Sequence, Tuple)

import numpy as np

from ..core.accuracy import ActualsMap, matched_bytes
from ..core.base import IngressModel
from ..core.ensemble import SequentialEnsemble
from ..core.features import FEATURES_A, FEATURES_AL, FEATURES_AP
from ..core.geo_augment import GeoAugmentedModel
from ..core.historical import HistoricalModel
from ..core.naive_bayes import NaiveBayesModel
from ..core.oracle import OracleModel
from ..core.training import CountsAccumulator
from ..pipeline.outages import OutageInference
from ..pipeline.records import FlowContext
from .scenario import HourColumns, Scenario

if TYPE_CHECKING:
    from ..perf.parallel import ParallelPipelineRunner

NO_LINKS: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class WindowSpec:
    """A train/test window in whole days from the scenario origin."""

    train_start_day: int = 0
    train_days: int = 21
    test_days: int = 7

    @property
    def train_hours(self) -> Tuple[int, int]:
        start = self.train_start_day * 24
        return start, start + self.train_days * 24

    @property
    def test_hours(self) -> Tuple[int, int]:
        start = (self.train_start_day + self.train_days) * 24
        return start, start + self.test_days * 24


class _StreamAccumulator:
    """Accumulates streamed columns into (flow row, link) byte dicts,
    flushing per expansion epoch so the availability context is known."""

    def __init__(self, n_links: int, n_hours: int, hour_offset: int):
        self.n_links = n_links
        self.hour_offset = hour_offset
        self.link_matrix = np.zeros((n_links, n_hours), dtype=np.float64)
        # per (down-set) accumulated (row, link) -> bytes
        self.by_downset: Dict[FrozenSet[int], Dict[Tuple[int, int], float]] = {}
        self.total: Dict[Tuple[int, int], float] = {}
        self._epoch_rows: Optional[np.ndarray] = None
        self._epoch_links: Optional[np.ndarray] = None
        self._epoch_sum: Optional[np.ndarray] = None
        self._epoch_down: FrozenSet[int] = NO_LINKS

    def add_hour(self, cols: HourColumns, down: FrozenSet[int]) -> None:
        if (self._epoch_rows is not cols.flow_rows
                or down != self._epoch_down):
            self.flush()
            self._epoch_rows = cols.flow_rows
            self._epoch_links = cols.link_ids
            self._epoch_sum = np.zeros(len(cols.flow_rows))
            self._epoch_down = down
        self._epoch_sum += cols.sampled_bytes
        hour_idx = cols.hour - self.hour_offset
        self.link_matrix[:, hour_idx] = np.bincount(
            cols.link_ids, weights=cols.sampled_bytes, minlength=self.n_links)

    def flush(self) -> None:
        if self._epoch_sum is None:
            return
        rows = self._epoch_rows
        links = self._epoch_links
        sums = self._epoch_sum
        bucket = self.by_downset.setdefault(self._epoch_down, {})
        total = self.total
        nz = np.nonzero(sums > 0.0)[0]
        for i in nz:
            key = (int(rows[i]), int(links[i]))
            value = float(sums[i])
            bucket[key] = bucket.get(key, 0.0) + value
            total[key] = total.get(key, 0.0) + value
        self._epoch_sum = None


@dataclass
class AccuracyBlock:
    """model name -> {k: accuracy}; one paper-table block."""

    rows: Dict[str, Dict[int, float]] = field(default_factory=dict)
    total_bytes: float = 0.0

    def get(self, model: str, k: int) -> float:
        return self.rows[model][k]

    def best_model(self, k: int, exclude_oracles: bool = True) -> str:
        candidates = {
            name: ks[k] for name, ks in self.rows.items()
            if not (exclude_oracles and name.startswith("Oracle"))
        }
        return max(candidates, key=candidates.get)


@dataclass
class EvaluationResult:
    """Everything the paper's tables and figures read."""

    window: WindowSpec
    overall: AccuracyBlock
    outages_all: AccuracyBlock
    outages_seen: AccuracyBlock
    outages_unseen: AccuracyBlock
    # actuals for figure-level analyses (e.g. oracle-vs-k, Figure 5)
    overall_actuals: Dict[FlowContext, Dict[int, float]]
    stats: Dict[str, float] = field(default_factory=dict)


class EvaluationRunner:
    """Runs the full §5 methodology over one scenario."""

    def __init__(self, scenario: Scenario,
                 pipeline: "Optional[ParallelPipelineRunner]" = None):
        self.scenario = scenario
        #: optional :class:`repro.perf.ParallelPipelineRunner`; when set,
        #: window collection fans out over its process pool
        self.pipeline = pipeline
        if pipeline is not None and pipeline.params is not scenario.params:
            if pipeline.params != scenario.params:
                raise ValueError(
                    "pipeline and runner scenarios must match")
        self._n_links = len(self.scenario.wan.links)
        # scenarios are deterministic and read-only, so window collections
        # can be reused across runs (Appendix B sweeps share windows)
        self._window_cache: Dict[Tuple[int, int], _StreamAccumulator] = {}

    # -- model suite -----------------------------------------------------------

    def build_models(self, train_counts: CountsAccumulator,
                     include_naive_bayes: bool = False,
                     keep_top: Optional[int] = None) -> List[IngressModel]:
        """Train the paper's model suite (Table 2, plus Appendix A on demand)."""
        hist_a = HistoricalModel(FEATURES_A, keep_top=keep_top)
        hist_ap = HistoricalModel(FEATURES_AP, keep_top=keep_top)
        hist_al = HistoricalModel(FEATURES_AL, keep_top=keep_top)
        trainables = [hist_a, hist_ap, hist_al]
        nb_a = nb_al = None
        if include_naive_bayes:
            nb_a = NaiveBayesModel(FEATURES_A)
            nb_al = NaiveBayesModel(FEATURES_AL)
            trainables += [nb_a, nb_al]
        train_counts.fit(trainables)

        models: List[IngressModel] = [
            hist_a, hist_ap, hist_al,
            GeoAugmentedModel(hist_al, self.scenario.wan, name="Hist_AL+G"),
            SequentialEnsemble([hist_ap, hist_al, hist_a],
                               name="Hist_AP/AL/A"),
            SequentialEnsemble([hist_al, hist_ap, hist_a],
                               name="Hist_AL/AP/A"),
        ]
        if include_naive_bayes:
            models += [
                nb_a, nb_al,
                SequentialEnsemble([hist_al, nb_al], name="Hist_AL/NB_AL"),
            ]
        return models

    # -- streaming passes --------------------------------------------------------

    def collect_window(self, start_hour: int,
                       end_hour: int) -> _StreamAccumulator:
        """Stream a window into per-downset (row, link) byte accumulations.

        Cached per (start, end): the scenario is deterministic, so
        repeated windows (Appendix B sweeps) are free after the first
        pass.  Callers must treat the result as read-only.
        """
        cached = self._window_cache.get((start_hour, end_hour))
        if cached is not None:
            return cached
        if self.pipeline is not None:
            acc = self.pipeline.collect_window(start_hour, end_hour)
        else:
            acc = _StreamAccumulator(self._n_links, end_hour - start_hour,
                                     start_hour)
            scenario = self.scenario
            for cols in scenario.stream(start_hour, end_hour):
                down = scenario.scheduled_down_at(cols.hour)
                acc.add_hour(cols, down)
            acc.flush()
        self._window_cache[(start_hour, end_hour)] = acc
        return acc

    def counts_from(self, acc: _StreamAccumulator) -> CountsAccumulator:
        """Finest-grain training counts from a window accumulation."""
        contexts = self.scenario.flow_contexts
        counts = CountsAccumulator()
        table = counts.counts
        for (row, link), bytes_ in acc.total.items():
            key = (contexts[row], link)
            table[key] = table.get(key, 0.0) + bytes_
        return counts

    # -- actuals shaping -----------------------------------------------------------

    def _actuals_from_pairs(
        self, pairs: Mapping[Tuple[int, int], float],
        row_filter: Optional[np.ndarray] = None,
    ) -> Dict[FlowContext, Dict[int, float]]:
        contexts = self.scenario.flow_contexts
        out: Dict[FlowContext, Dict[int, float]] = {}
        for (row, link), bytes_ in pairs.items():
            if row_filter is not None and not row_filter[row]:
                continue
            by_link = out.setdefault(contexts[row], {})
            by_link[link] = by_link.get(link, 0.0) + bytes_
        return out

    # -- scoring --------------------------------------------------------------------

    @staticmethod
    def _score(actuals: ActualsMap, model: IngressModel, k: int,
               unavailable: FrozenSet[int]) -> Tuple[float, float]:
        """(matched bytes, total bytes) for one model on one actuals slice."""
        matched = 0.0
        total = 0.0
        for context, by_link in actuals.items():
            flow_bytes = sum(by_link.values())
            if flow_bytes <= 0.0:
                continue
            total += flow_bytes
            predictions = model.predict(context, k, unavailable)
            if predictions:
                matched += matched_bytes(by_link, predictions)
        return matched, total

    def _block(
        self,
        slices: Sequence[Tuple[ActualsMap, FrozenSet[int]]],
        models: Sequence[IngressModel],
        ks: Sequence[int],
    ) -> AccuracyBlock:
        """Accuracy across several (actuals, availability-prior) slices."""
        block = AccuracyBlock()
        block.total_bytes = sum(
            sum(by_link.values())
            for actuals, _unavailable in slices
            for by_link in actuals.values()
        )
        for model in models:
            per_k: Dict[int, float] = {}
            for k in ks:
                matched = 0.0
                total = 0.0
                for actuals, unavailable in slices:
                    m, t = self._score(actuals, model, k, unavailable)
                    matched += m
                    total += t
                per_k[k] = matched / total if total > 0.0 else 0.0
            block.rows[model.name] = per_k
        return block

    # -- the full methodology ----------------------------------------------------------

    def run(
        self,
        window: Optional[WindowSpec] = None,
        include_naive_bayes: bool = False,
        ks: Sequence[int] = (1, 2, 3),
        outage_min_hours: int = 1,
        outage_max_hours: int = 24,
    ) -> EvaluationResult:
        """Train, test, partition, and score — one full evaluation."""
        window = window or WindowSpec()
        scenario = self.scenario
        contexts = scenario.flow_contexts
        train_lo, train_hi = window.train_hours
        test_lo, test_hi = window.test_hours
        if test_hi > scenario.horizon_hours:
            raise ValueError("window extends past the scenario horizon")

        # 1. training pass
        train_acc = self.collect_window(train_lo, train_hi)
        train_counts = self.counts_from(train_acc)
        models = self.build_models(train_counts, include_naive_bayes)

        # 2. availability history: links with a qualifying inferred outage
        #    during training are "seen"
        train_inference = OutageInference(
            scenario.wan.link_ids, train_acc.link_matrix)
        seen_links = train_inference.links_with_outage(
            0, train_hi - train_lo, outage_min_hours, outage_max_hours)

        # 3. per-flow byte-dominant training link (partitioning key)
        top1 = train_counts.top1_links()
        top1_by_row = np.full(len(contexts), -1, dtype=np.int64)
        for i, context in enumerate(contexts):
            top1_by_row[i] = top1.get(context, -1)

        # 4. test pass
        test_acc = self.collect_window(test_lo, test_hi)

        # 5. slices
        overall_actuals = self._actuals_from_pairs(test_acc.total)
        overall_block_slices = [(overall_actuals, NO_LINKS)]

        all_slices: List[Tuple[ActualsMap, FrozenSet[int]]] = []
        seen_slices: List[Tuple[ActualsMap, FrozenSet[int]]] = []
        unseen_slices: List[Tuple[ActualsMap, FrozenSet[int]]] = []
        seen_bytes = unseen_bytes = 0.0
        for down, pairs in test_acc.by_downset.items():
            if not down:
                continue
            down_array = np.array(sorted(down))
            affected = np.isin(top1_by_row, down_array)
            if not affected.any():
                continue
            actuals = self._actuals_from_pairs(pairs, row_filter=affected)
            if not actuals:
                continue
            all_slices.append((actuals, down))
            seen_mask = affected & np.isin(
                top1_by_row, np.array(sorted(seen_links), dtype=np.int64)
                if seen_links else np.array([-2]))
            unseen_mask = affected & ~seen_mask
            seen_actuals = self._actuals_from_pairs(pairs, row_filter=seen_mask)
            unseen_actuals = self._actuals_from_pairs(pairs,
                                                      row_filter=unseen_mask)
            if seen_actuals:
                seen_slices.append((seen_actuals, down))
                seen_bytes += sum(sum(v.values()) for v in seen_actuals.values())
            if unseen_actuals:
                unseen_slices.append((unseen_actuals, down))
                unseen_bytes += sum(
                    sum(v.values()) for v in unseen_actuals.values())

        # 6. oracles per partition (perfect test knowledge, k-restricted)
        def oracles_for(
                slices: Sequence[Tuple[ActualsMap, FrozenSet[int]]],
        ) -> List[IngressModel]:
            oracle_counts = CountsAccumulator()
            for actuals, _down in slices:
                for context, by_link in actuals.items():
                    for link, bytes_ in by_link.items():
                        oracle_counts.add(context, link, bytes_)
            oracle_models = [OracleModel(FEATURES_A), OracleModel(FEATURES_AP),
                             OracleModel(FEATURES_AL)]
            oracle_counts.fit(oracle_models)
            return oracle_models

        result = EvaluationResult(
            window=window,
            overall=self._block(
                overall_block_slices,
                oracles_for(overall_block_slices) + models, ks),
            outages_all=self._block(
                all_slices, oracles_for(all_slices) + models, ks),
            outages_seen=self._block(
                seen_slices, oracles_for(seen_slices) + models, ks),
            outages_unseen=self._block(
                unseen_slices, oracles_for(unseen_slices) + models, ks),
            overall_actuals=overall_actuals,
        )
        result.stats = self._stats(overall_actuals, seen_bytes, unseen_bytes,
                                   seen_links, train_counts)
        return result

    @staticmethod
    def _stats(overall_actuals: ActualsMap, seen_bytes: float,
               unseen_bytes: float, seen_links: FrozenSet[int],
               train_counts: CountsAccumulator) -> Dict[str, float]:
        total_outage_bytes = seen_bytes + unseen_bytes
        return {
            "total_bytes": sum(sum(v.values())
                               for v in overall_actuals.values()),
            "outage_bytes": total_outage_bytes,
            "seen_bytes": seen_bytes,
            "unseen_bytes": unseen_bytes,
            "unseen_fraction": (unseen_bytes / total_outage_bytes
                                if total_outage_bytes else 0.0),
            "seen_links": float(len(seen_links)),
            "train_tuples": float(len(train_counts)),
        }

    # -- staleness sweep (Figure 10) ------------------------------------------------

    def run_staleness(
        self,
        train_start_day: int,
        train_days: int,
        max_offset_days: int,
        ks: Sequence[int] = (1, 2, 3),
        include_naive_bayes: bool = False,
    ) -> Dict[int, Dict[str, Dict[int, float]]]:
        """Train once; score each later day separately (paper Figure 10).

        Returns ``{day offset: {model name: {k: accuracy}}}``.  Day
        offset 0 is the first day after training ends.
        """
        scenario = self.scenario
        train_lo = train_start_day * 24
        train_hi = train_lo + train_days * 24
        train_acc = self.collect_window(train_lo, train_hi)
        train_counts = self.counts_from(train_acc)
        models = self.build_models(train_counts, include_naive_bayes)

        out: Dict[int, Dict[str, Dict[int, float]]] = {}
        for offset in range(max_offset_days):
            day_lo = train_hi + offset * 24
            day_hi = day_lo + 24
            if day_hi > scenario.horizon_hours:
                break
            day_acc = self.collect_window(day_lo, day_hi)
            actuals = self._actuals_from_pairs(day_acc.total)
            slices = [(actuals, NO_LINKS)]
            oracle_counts = CountsAccumulator()
            for context, by_link in actuals.items():
                for link, bytes_ in by_link.items():
                    oracle_counts.add(context, link, bytes_)
            oracles: List[IngressModel] = [
                OracleModel(FEATURES_A), OracleModel(FEATURES_AP),
                OracleModel(FEATURES_AL)]
            oracle_counts.fit(oracles)
            block = self._block(slices, list(oracles) + list(models), ks)
            out[offset] = block.rows
        return out
