"""Markdown report generation: one command, the whole evaluation.

``build_report`` runs the paper's methodology on a scenario and renders
a self-contained markdown report — world summary, Tables 4-7 with the
paper's numbers alongside, the oracle-vs-k curve, and the byte/outage
statistics.  The CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import figures, paper
from .runner import AccuracyBlock, EvaluationRunner, WindowSpec
from .scenario import Scenario


def _accuracy_section(title: str, block: AccuracyBlock,
                      reference: Optional[paper.AccuracyRef]) -> List[str]:
    lines = [f"## {title}", ""]
    header = "| Model | Top 1 % | Top 2 % | Top 3 % |"
    if reference:
        header += " paper Top 3 % | Δ top-3 |"
    lines.append(header)
    lines.append("|" + "---|" * (header.count("|") - 1))
    for model, per_k in block.rows.items():
        row = (f"| {model} | {per_k[1] * 100:.2f} | {per_k[2] * 100:.2f} "
               f"| {per_k[3] * 100:.2f} |")
        if reference:
            ref = reference.get(model)
            if ref:
                delta = (per_k[3] - ref[3]) * 100
                row += f" {ref[3] * 100:.2f} | {delta:+.2f} |"
            else:
                row += " — | — |"
        lines.append(row)
    lines.append("")
    return lines


@dataclass
class ReportOptions:
    """What to include and how deep to go."""

    window: WindowSpec = WindowSpec(train_start_day=0, train_days=21,
                                    test_days=7)
    include_naive_bayes: bool = False
    include_figures: bool = True
    oracle_ks: Tuple[int, ...] = (1, 2, 3, 5, 10)


def build_report(scenario: Scenario,
                 options: Optional[ReportOptions] = None) -> str:
    """Run the evaluation and render the markdown report."""
    options = options or ReportOptions()
    runner = EvaluationRunner(scenario)
    result = runner.run(options.window,
                        include_naive_bayes=options.include_naive_bayes)

    lines: List[str] = [
        "# TIPSY reproduction report",
        "",
        "## World",
        "",
        f"- {len(scenario.graph)} ASes, "
        f"{scenario.wan.summary()['links']} peering links across "
        f"{scenario.wan.summary()['peers']} peers in "
        f"{scenario.wan.summary()['metros']} metros",
        f"- {len(scenario.traffic)} flow aggregates over "
        f"{scenario.params.horizon_days} days; "
        f"{len(scenario.outage_schedule)} scheduled outages",
        f"- window: train days "
        f"{options.window.train_start_day}-"
        f"{options.window.train_start_day + options.window.train_days - 1}, "
        f"test {options.window.test_days} days",
        "",
        "## Headline statistics",
        "",
        f"- training tuples: {result.stats['train_tuples']:.0f}",
        f"- outage-affected test bytes: "
        f"{result.stats['outage_bytes'] / max(result.stats['total_bytes'], 1):.3%}",
        f"- unseen-outage share of outage bytes: "
        f"{result.stats['unseen_fraction']:.0%} (paper: "
        f"{paper.PAPER_FACTS['unseen_outage_byte_fraction']:.0%})",
        "",
    ]

    lines += _accuracy_section(
        "Table 4 — overall accuracy", result.overall,
        paper.PAPER_TABLE9 if options.include_naive_bayes
        else paper.PAPER_TABLE4)
    lines += _accuracy_section(
        "Table 5 — all outages", result.outages_all, paper.PAPER_TABLE5)
    lines += _accuracy_section(
        "Table 6 — seen outages", result.outages_seen, paper.PAPER_TABLE6)
    lines += _accuracy_section(
        "Table 7 — unseen outages", result.outages_unseen,
        paper.PAPER_TABLE7)

    if options.include_figures:
        curves = figures.fig5_oracle_accuracy_vs_k(
            result.overall_actuals, ks=options.oracle_ks)
        lines += ["## Figure 5 — oracle accuracy vs k", "",
                  "| k | " + " | ".join(curves) + " |",
                  "|" + "---|" * (len(curves) + 1)]
        for i, k in enumerate(options.oracle_ks):
            cells = " | ".join(
                f"{points[i][1] * 100:.2f}" for points in curves.values())
            lines.append(f"| {k} | {cells} |")
        lines.append("")

        test_lo, test_hi = options.window.test_hours
        dist = figures.fig2_bytes_by_distance(
            scenario, test_lo, min(test_lo + 24, test_hi))
        lines += ["## Figure 2 — bytes by source-AS distance", "",
                  "| AS distance | bytes % |", "|---|---|"]
        lines += [f"| {d} | {frac * 100:.1f} |"
                  for d, frac in sorted(dist.items())]
        one_hop = dist.get(1, 0.0)
        lines += ["",
                  f"1-hop share {one_hop:.0%} "
                  f"(paper ~{paper.PAPER_FACTS['fig2_one_hop_bytes']:.0%}).",
                  ""]

    lines += [
        "---",
        "Shapes are expected to match the paper; absolute numbers come "
        "from a synthetic Internet (see DESIGN.md).",
        "",
    ]
    return "\n".join(lines)
