"""Shared helpers for the benchmark suite.

The benchmark files under ``benchmarks/`` used to import these from
their ``conftest.py`` directly (``from conftest import print_block``),
which only resolves when pytest is started from the repository root.
Hosting them in the package makes the suite runnable from any working
directory — CI, tox-style runners, or an editor's test integration.
"""

from __future__ import annotations

from .runner import WindowSpec

#: the paper's headline window: 3 weeks of training, 1 week of testing
PAPER_WINDOW = WindowSpec(train_start_day=0, train_days=21, test_days=7)


def print_block(text: str) -> None:
    """Benchmarks print their reproduced tables through this."""
    print("\n" + text)
