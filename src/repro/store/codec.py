"""Columnar codec: tuple-keyed byte counts <-> aligned numpy arrays.

Everything TIPSY persists is, at heart, one of two shapes:

* a *keyed table* — ``{(int, ...): float}`` with a fixed key width
  (flow-context counts, feature-grain model counts), stored as one
  ``int64`` column per key field plus one ``float64`` value column;
* a *ragged column* — a list of variable-length rows (the exact
  Shewchuk partials behind each model sum, a routing table's ranked
  next-hops), stored as a flat value array (dtype pinned per column:
  ``float64`` partials, ``int64`` next-hops) plus an ``int64`` offsets
  array (CSR-style: ``values[offsets[i]:offsets[i + 1]]`` is row ``i``).

Both encodings are lossless for the types the pipeline produces:
key fields are ordinal-encoded ints (``int64``-representable by
construction) and byte counts are ``float64`` already, so a round trip
restores *the same floats in the same order* — the property the
snapshot/restore bit-identical guarantee rests on, and the property the
hypothesis suite in ``tests/store/test_codec.py`` hammers.

Dict iteration order is part of the contract: rows are emitted in the
source dict's insertion order and decoded back in row order, so a
restored dict iterates exactly like the one that was saved.  Downstream
folds (``CountsAccumulator.project``, ranking totals) iterate those
dicts, which makes order preservation necessary for bit-identical
restores, not a nicety.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "encode_keyed_table",
    "decode_keyed_table",
    "encode_ragged",
    "decode_ragged",
    "key_column_names",
]

#: prefix of generated key-column names: k0, k1, ...
_KEY_PREFIX = "k"


def key_column_names(width: int) -> Tuple[str, ...]:
    """The column names a ``width``-field key encodes to."""
    return tuple(f"{_KEY_PREFIX}{i}" for i in range(width))


def encode_keyed_table(table: Mapping[Tuple[int, ...], float],
                       width: int) -> Dict[str, np.ndarray]:
    """Encode ``{key tuple: value}`` as aligned columns.

    Returns ``{"k0": int64, ..., "k<width-1>": int64, "value": float64}``
    with one row per mapping entry, in the mapping's iteration order.
    Every key must have exactly ``width`` int fields.
    """
    if width <= 0:
        raise ValueError(f"key width must be positive, got {width}")
    n = len(table)
    keys = np.empty((n, width), dtype=np.int64)
    values = np.empty(n, dtype=np.float64)
    for row, (key, value) in enumerate(table.items()):
        if len(key) != width:
            raise ValueError(
                f"key {key!r} has {len(key)} fields, expected {width}")
        keys[row] = key
        values[row] = value
    columns: Dict[str, np.ndarray] = {
        name: np.ascontiguousarray(keys[:, i], dtype=np.int64)
        for i, name in enumerate(key_column_names(width))
    }
    columns["value"] = values
    return columns


def decode_keyed_table(columns: Mapping[str, np.ndarray], width: int,
                       ) -> Iterator[Tuple[Tuple[int, ...], float]]:
    """Yield ``(key tuple, value)`` rows from :func:`encode_keyed_table`
    output, in row (= original insertion) order."""
    names = key_column_names(width)
    fields = [columns[name].tolist() for name in names]
    values = columns["value"].tolist()
    for row in zip(*fields, values):
        yield tuple(row[:-1]), row[-1]


def encode_ragged(rows: Sequence[Sequence[float]],
                  dtype: type = np.float64,
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Encode variable-length rows as ``(values, offsets)``.

    ``offsets`` has ``len(rows) + 1`` entries; row ``i`` is
    ``values[offsets[i]:offsets[i + 1]]``.  ``dtype`` pins the value
    column (``float64`` for byte counts, ``int64`` for routing
    next-hops); it must represent every row element losslessly.
    """
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        offsets[i + 1] = offsets[i] + len(row)
    values = np.empty(int(offsets[-1]), dtype=dtype)
    for i, row in enumerate(rows):
        values[int(offsets[i]):int(offsets[i + 1])] = row
    return values, offsets


def decode_ragged(values: np.ndarray,
                  offsets: np.ndarray) -> List[List[float]]:
    """Invert :func:`encode_ragged` (plain Python float lists back)."""
    flat = values.tolist()
    bounds = offsets.tolist()
    return [flat[lo:hi] for lo, hi in zip(bounds, bounds[1:])]
