"""``repro.store`` — persistent columnar storage for model state.

The storage boundary behind :class:`repro.core.training.CountsAccumulator`
and :class:`repro.core.historical.HistoricalModel` (ROADMAP item 5):
day/hour-keyed state is serialised into memory-mappable, uncompressed
``.npz`` columnar segments under a checksummed JSON manifest, written
atomically (temp file + rename) and read under a strict
corrupt-state-degrades-to-rebuild contract — a truncated segment, a bad
checksum or a format-version skew reads as *absent*, never as an error,
so a restarting service falls back to recomputing from the pipeline
instead of refusing to start.

This package is deliberately model-agnostic: it knows about named
``int64``/``float64`` columns and ragged float rows, nothing about flow
tuples or rankings.  The model-aware encode/decode lives in
:mod:`repro.core.persistence`, and the service-level snapshot/restore
orchestration in :mod:`repro.core.service` — see ``docs/storage.md``
for the file layout and the full contract.
"""

from .codec import (
    decode_keyed_table,
    decode_ragged,
    encode_keyed_table,
    encode_ragged,
    key_column_names,
)
from .segments import (
    MANIFEST_NAME,
    STORE_FORMAT,
    SegmentInfo,
    SegmentStore,
    open_memmap_column,
)

__all__ = [
    "MANIFEST_NAME",
    "STORE_FORMAT",
    "SegmentInfo",
    "SegmentStore",
    "open_memmap_column",
    "encode_keyed_table",
    "decode_keyed_table",
    "encode_ragged",
    "decode_ragged",
    "key_column_names",
]
