"""Persistent columnar segments: atomic npz files behind a manifest.

A :class:`SegmentStore` is a directory of uncompressed ``.npz`` segment
files plus one ``MANIFEST.json`` describing them (name, kind, row
count, byte size, sha256, format version).  It follows the persistence
contract the rest of the repo already lives by (the lint cache's
corrupt-entry-is-a-miss convention):

* **writes are atomic** — a segment is serialised to a temp file in the
  same directory, fsynced, and renamed into place; the manifest is
  rewritten the same way, after the segment it describes.  A crash
  leaves either the old state or the new state, never a torn file that
  the manifest vouches for;
* **reads degrade, never error** — a missing file, a truncated or
  bit-flipped segment (checksum mismatch), an unreadable npz, or a
  format-version skew between manifest and segment all make
  :meth:`SegmentStore.read` return ``None`` and record the reason in
  :attr:`SegmentStore.degraded`.  Callers treat ``None`` as "this state
  never existed" and rebuild from the pipeline.

Segments are written by :func:`numpy.savez` *uncompressed*, so each
column is a raw ``.npy`` member at a fixed offset inside the zip —
:func:`open_memmap_column` maps a single column straight off disk
without reading the segment into memory, which is what lets training
windows exceed RAM (``docs/storage.md``).

Store activity is observable: ``store.write.segments`` /
``store.write.bytes`` / ``store.read.segments`` / ``store.read.bytes``
counters and a ``store.read.degraded`` counter feed the ``repro.obs``
registry when instrumentation is on.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..obs import runtime as obs

__all__ = [
    "MANIFEST_NAME",
    "STORE_FORMAT",
    "SegmentInfo",
    "SegmentStore",
    "open_memmap_column",
]

MANIFEST_NAME = "MANIFEST.json"

#: on-disk format version, stamped in the manifest and in every
#: segment entry; a mismatch on either side degrades the read
STORE_FORMAT = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_CHUNK = 1 << 20


@dataclass(frozen=True)
class SegmentInfo:
    """One manifest entry: everything needed to trust a segment file."""

    name: str
    filename: str
    kind: str
    rows: int
    nbytes: int
    sha256: str
    format: int = STORE_FORMAT
    meta: Mapping[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "file": self.filename,
            "kind": self.kind,
            "rows": self.rows,
            "bytes": self.nbytes,
            "sha256": self.sha256,
            "format": self.format,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SegmentInfo":
        meta = data.get("meta", {})
        return cls(
            name=str(data["name"]),
            filename=str(data["file"]),
            kind=str(data["kind"]),
            rows=int(data["rows"]),  # type: ignore[call-overload]
            nbytes=int(data["bytes"]),  # type: ignore[call-overload]
            sha256=str(data["sha256"]),
            format=int(data.get("format", -1)),  # type: ignore[call-overload]
            meta={str(k): str(v) for k, v in meta.items()}
            if isinstance(meta, dict) else {},
        )


def _sha256_file(path: Path) -> Tuple[str, int]:
    """(hex digest, byte size) of a file, streamed in chunks."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def _atomic_replace(tmp: Path, final: Path) -> None:
    """fsync ``tmp`` and rename it over ``final`` (atomic on POSIX)."""
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, final)


class SegmentStore:
    """A directory of checksummed columnar segments plus a manifest.

    Opening a store never raises on bad state: an absent or unreadable
    manifest simply yields an empty store (with the reason recorded in
    :attr:`degraded`), matching the corrupt-state-degrades-to-rebuild
    contract.
    """

    def __init__(self, root: Union[str, Path], create: bool = False):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        self.meta: Dict[str, str] = {}
        #: integrity failures observed so far: (segment or "<manifest>",
        #: reason) pairs, in detection order
        self.degraded: List[Tuple[str, str]] = []
        self._segments: Dict[str, SegmentInfo] = {}
        #: segment names whose checksum already verified this session
        self._verified: Dict[str, bool] = {}
        self._load_manifest()

    # -- manifest -----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _degrade(self, name: str, reason: str) -> None:
        self.degraded.append((name, reason))
        if obs.enabled():
            obs.count("store.read.degraded")

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._degrade("<manifest>", "manifest unreadable")
            return
        if not isinstance(payload, dict):
            self._degrade("<manifest>", "manifest malformed")
            return
        if payload.get("format") != STORE_FORMAT:
            self._degrade(
                "<manifest>",
                f"manifest format {payload.get('format')!r} != "
                f"{STORE_FORMAT}")
            return
        meta = payload.get("meta", {})
        if isinstance(meta, dict):
            self.meta = {str(k): str(v) for k, v in meta.items()}
        for entry in payload.get("segments", []):
            try:
                info = SegmentInfo.from_json(entry)
            except (KeyError, TypeError, ValueError):
                self._degrade("<manifest>", "segment entry malformed")
                continue
            self._segments[info.name] = info

    def _save_manifest(self) -> None:
        payload = {
            "format": STORE_FORMAT,
            "meta": dict(self.meta),
            "segments": [info.to_json()
                         for info in self._segments.values()],
        }
        tmp = self.manifest_path.with_name(
            MANIFEST_NAME + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                       encoding="utf-8")
        _atomic_replace(tmp, self.manifest_path)

    def set_meta(self, values: Mapping[str, str]) -> None:
        """Merge store-level metadata and persist the manifest."""
        self.meta.update({str(k): str(v) for k, v in values.items()})
        self._save_manifest()

    # -- writes -------------------------------------------------------------

    def write(self, name: str, arrays: Mapping[str, np.ndarray],
              kind: str, rows: int,
              meta: Optional[Mapping[str, str]] = None) -> SegmentInfo:
        """Atomically persist one segment and its manifest entry.

        Overwrites any existing segment of the same name.  The manifest
        is rewritten *after* the segment file lands, so a crash between
        the two leaves the old manifest pointing at the old (or an
        orphaned new) file — never at a torn one.
        """
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid segment name {name!r}")
        filename = f"{name}.npz"
        final = self.root / filename
        tmp = self.root / f"{filename}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **dict(arrays))
            sha256, nbytes = _sha256_file(tmp)
            _atomic_replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        info = SegmentInfo(
            name=name, filename=filename, kind=kind, rows=rows,
            nbytes=nbytes, sha256=sha256, format=STORE_FORMAT,
            meta={str(k): str(v) for k, v in (meta or {}).items()})
        self._segments[name] = info
        self._verified[name] = True
        self._save_manifest()
        if obs.enabled():
            obs.count("store.write.segments")
            obs.count("store.write.bytes", float(nbytes))
        return info

    # -- reads --------------------------------------------------------------

    def segments(self) -> Tuple[SegmentInfo, ...]:
        """Manifest entries, in manifest (= write) order."""
        return tuple(self._segments.values())

    def info(self, name: str) -> Optional[SegmentInfo]:
        return self._segments.get(name)

    def _verify(self, info: SegmentInfo) -> bool:
        """Checksum + version gate; degrades (returns False) on failure."""
        if info.format != STORE_FORMAT:
            self._degrade(info.name,
                          f"segment format {info.format} != {STORE_FORMAT}")
            return False
        cached = self._verified.get(info.name)
        if cached is not None:
            return cached
        path = self.root / info.filename
        ok = False
        if not path.exists():
            self._degrade(info.name, "segment file missing")
        else:
            sha256, nbytes = _sha256_file(path)
            if nbytes != info.nbytes or sha256 != info.sha256:
                self._degrade(info.name, "checksum mismatch")
            else:
                ok = True
        self._verified[info.name] = ok
        return ok

    def read(self, name: str) -> Optional[Dict[str, np.ndarray]]:
        """Load a segment's columns, or ``None`` if it cannot be trusted.

        ``None`` covers every failure mode — never written, file
        missing, checksum mismatch, version skew, undecodable npz —
        because the caller's recovery is the same for all of them:
        rebuild the state from the pipeline.
        """
        info = self._segments.get(name)
        if info is None:
            return None
        if not self._verify(info):
            return None
        path = self.root / info.filename
        try:
            with np.load(path, allow_pickle=False) as npz:
                arrays = {key: npz[key] for key in npz.files}
        except (OSError, ValueError, zipfile.BadZipFile, KeyError):
            self._degrade(name, "segment undecodable")
            self._verified[name] = False
            return None
        if obs.enabled():
            obs.count("store.read.segments")
            obs.count("store.read.bytes", float(info.nbytes))
        return arrays

    def mmap_column(self, name: str, column: str) -> Optional[np.ndarray]:
        """Memory-map one column of a segment (``None`` if degraded).

        The first access verifies the whole segment's checksum (one
        sequential read); after that, columns map straight off disk and
        the OS pages them in on demand.
        """
        info = self._segments.get(name)
        if info is None or not self._verify(info):
            return None
        try:
            out = open_memmap_column(self.root / info.filename, column)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            self._degrade(name, f"column {column!r} unmappable")
            return None
        if obs.enabled():
            obs.count("store.read.segments")
            obs.count("store.read.bytes", float(out.nbytes))
        return out

    def total_bytes(self) -> int:
        """Sum of all manifest-recorded segment sizes."""
        return sum(info.nbytes for info in self._segments.values())

    def inspect(self) -> List[Tuple[SegmentInfo, str]]:
        """(info, status) per segment: ``"ok"`` or the degradation."""
        out: List[Tuple[SegmentInfo, str]] = []
        for info in self._segments.values():
            before = len(self.degraded)
            status = "ok" if self._verify(info) else self.degraded[-1][1] \
                if len(self.degraded) > before else "previously degraded"
            out.append((info, status))
        return out


# -- zero-copy column access ------------------------------------------------


def _local_header_data_offset(path: Path, member: str) -> int:
    """Absolute file offset of a STORED zip member's first data byte."""
    with zipfile.ZipFile(path) as archive:
        zinfo = archive.getinfo(member)
        if zinfo.compress_type != zipfile.ZIP_STORED:
            raise ValueError(
                f"{member!r} is compressed; memory-mapping requires "
                "uncompressed (STORED) members")
        header_offset = zinfo.header_offset
    with open(path, "rb") as handle:
        handle.seek(header_offset)
        header = handle.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            raise ValueError(f"bad local file header for {member!r}")
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        return header_offset + 30 + name_len + extra_len


def open_memmap_column(path: Union[str, Path],
                       column: str) -> np.ndarray:
    """Memory-map one array out of an uncompressed ``.npz`` file.

    ``np.load(mmap_mode=...)`` silently ignores mmap for npz archives;
    this helper does what it cannot: locate the raw ``.npy`` member
    inside the (STORED, hence contiguous) zip, parse its header, and
    hand back a read-only :class:`numpy.memmap` onto the data bytes.
    """
    path = Path(path)
    member = column + ".npy"
    start = _local_header_data_offset(path, member)
    with open(path, "rb") as handle:
        handle.seek(start)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = \
                np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = \
                np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(f"unsupported npy version {version}")
        if dtype.hasobject:
            raise ValueError("object arrays cannot be memory-mapped")
        data_offset = handle.tell()
    return np.memmap(path, dtype=dtype, mode="r",
                     offset=data_offset, shape=shape,
                     order="F" if fortran else "C")
