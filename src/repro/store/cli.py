"""``repro snapshot`` — save, load and inspect service state snapshots.

The subcommand exercises the persistence boundary end to end without a
long-lived deployment:

* ``save`` builds a synthetic scenario, ingests a window of telemetry
  into :class:`~repro.core.service.TipsyService`, and snapshots the
  service into a :class:`SegmentStore` directory.  The scenario recipe
  (size, seed, days) is recorded in the manifest so a later ``load
  --verify`` can rebuild the exact reference.
* ``load`` restores a service from a snapshot directory and reports
  what survived (days restored/lost, models resumed or rebuilt).  With
  ``--verify`` it also rebuilds an uninterrupted reference service from
  the recorded recipe and asserts the restored service's predictions
  are byte-identical — the restart guarantee, checked for real.
* ``inspect`` verifies every segment against the manifest (checksum,
  format version) and prints a per-segment status table.

Corrupt or missing segments never abort a ``load``; they surface in the
restore report as lost days or a model rebuild, per the store's
degrade-to-rebuild contract (``docs/storage.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Optional, Tuple

from .segments import SegmentStore

if TYPE_CHECKING:
    from ..core.service import TipsyService
    from ..experiments.scenario import Scenario

ACTIONS = ("save", "load", "inspect")

#: manifest meta keys recording the scenario recipe behind a snapshot
_RECIPE_KEYS = ("scenario_size", "scenario_seed", "scenario_days",
                "scenario_window")


def add_snapshot_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("action", choices=ACTIONS,
                        help="save a new snapshot, load (and optionally "
                             "verify) one, or inspect segment integrity")
    parser.add_argument("--dir", required=True, metavar="DIR",
                        help="snapshot directory (the SegmentStore root)")
    parser.add_argument("--size", choices=("small", "medium"),
                        default="small",
                        help="scenario scale for `save` (default: small)")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed for `save` (default: 0)")
    parser.add_argument("--days", type=int, default=9,
                        help="days of telemetry to ingest before "
                             "snapshotting (default: 9)")
    parser.add_argument("--window", type=int, default=7,
                        help="rolling training window in days (default: 7)")
    parser.add_argument("--verify", action="store_true",
                        help="after `load`, rebuild the uninterrupted "
                             "reference and check predictions are "
                             "byte-identical")
    parser.add_argument("--rebuild-models", action="store_true",
                        help="on `load`, ignore persisted model segments "
                             "and retrain from the day segments")


def _build_scenario(size: str, seed: int, days: int) -> "Scenario":
    # function-scope import: keeps the store layer free of core deps at
    # module scope (layer contract RA601); the CLI is glue
    from ..experiments.scenario import Scenario, ScenarioParams

    if size == "medium":
        params = ScenarioParams.medium(seed=seed)
    else:
        params = ScenarioParams.small(seed=seed, horizon_days=days)
    if days * 24 > params.horizon_days * 24:
        raise SystemExit(
            f"repro snapshot: --days {days} exceeds the {size} scenario "
            f"horizon ({params.horizon_days} days)")
    return Scenario(params)


def _ingest(service: "TipsyService", scenario: "Scenario",
            days: int) -> None:
    for cols in scenario.stream(0, days * 24):
        service.ingest_hour(cols.hour, scenario.agg_records_for(cols))


def _recipe_from(store: SegmentStore
                 ) -> Optional[Tuple[str, int, int, int]]:
    try:
        return (store.meta["scenario_size"],
                int(store.meta["scenario_seed"]),
                int(store.meta["scenario_days"]),
                int(store.meta["scenario_window"]))
    except (KeyError, ValueError):
        return None


def _snapshot_save(args: argparse.Namespace) -> int:
    from ..core.service import ServiceConfig, TipsyService

    scenario = _build_scenario(args.size, args.seed, args.days)
    config = ServiceConfig(training_window_days=args.window)
    service = TipsyService(scenario.wan, config)
    _ingest(service, scenario, args.days)
    store = service.snapshot(args.dir)
    store.set_meta({
        "scenario_size": args.size,
        "scenario_seed": str(args.seed),
        "scenario_days": str(args.days),
        "scenario_window": str(args.window),
    })
    n_days = sum(1 for i in store.segments() if i.kind == "day_counts")
    n_models = sum(1 for i in store.segments() if i.kind == "model_grain")
    print(f"saved {args.dir}: {n_days} day segments, "
          f"{n_models} model segments, {store.total_bytes()} bytes")
    return 0


def _snapshot_load(args: argparse.Namespace) -> int:
    from ..core.service import ServiceConfig, SnapshotError, TipsyService

    probe = SegmentStore(args.dir)
    recipe = _recipe_from(probe)
    if recipe is None:
        # the WAN is topology, not model state: restoring needs the
        # scenario recipe the manifest records at save time
        print("repro snapshot: no scenario recipe in the manifest "
              "(snapshots written by `repro snapshot save` record one)",
              file=sys.stderr)
        return 1
    scenario = _build_scenario(*recipe[:3])
    try:
        service = TipsyService.restore(
            args.dir, wan=scenario.wan,
            rebuild_models=args.rebuild_models)
    except SnapshotError as error:
        print(f"repro snapshot: {error}", file=sys.stderr)
        return 1
    report = service.restore_report
    assert report is not None
    print(f"restored {args.dir}: days {list(report.days_restored)}, "
          f"lost {list(report.days_lost)}, "
          f"models {'rebuilt' if report.models_rebuilt else 'resumed'}")
    for name, reason in report.degraded:
        print(f"  degraded: {name}: {reason}")
    if not args.verify:
        return 0
    size, seed, days, window = recipe
    reference = TipsyService(
        scenario.wan, ServiceConfig(training_window_days=window))
    _ingest(reference, scenario, days)
    contexts = scenario.flow_contexts
    expected = reference.predict_batch(contexts)
    actual = service.predict_batch(contexts)
    if expected != actual:
        mismatches = sum(1 for e, a in zip(expected, actual) if e != a)
        print(f"repro snapshot: VERIFY FAILED — {mismatches}/"
              f"{len(contexts)} predictions differ from the "
              f"uninterrupted reference", file=sys.stderr)
        return 1
    print(f"verify OK: {len(contexts)} predictions byte-identical to "
          f"the uninterrupted reference")
    return 0


def _snapshot_inspect(args: argparse.Namespace) -> int:
    store = SegmentStore(args.dir)
    rows: List[Tuple[str, str, str, str, str]] = [
        ("segment", "kind", "rows", "bytes", "status")]
    worst = 0
    for info, status in store.inspect():
        rows.append((info.name, info.kind, str(info.rows),
                     str(info.nbytes), status))
        if status != "ok":
            worst = 1
    manifest_issues = [reason for name, reason in store.degraded
                       if name == "<manifest>"]
    widths = [max(len(row[i]) for row in rows) for i in range(5)]
    for row in rows:
        print("  ".join(cell.ljust(width)
                        for cell, width in zip(row, widths)).rstrip())
    for reason in manifest_issues:
        print(f"manifest: {reason}")
        worst = 1
    if not store.segments() and not manifest_issues:
        print(f"{args.dir}: empty store")
    return worst


def run_snapshot(args: argparse.Namespace) -> int:
    if args.action == "save":
        return _snapshot_save(args)
    if args.action == "load":
        return _snapshot_load(args)
    return _snapshot_inspect(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro snapshot",
        description="save, load and inspect service state snapshots")
    add_snapshot_arguments(parser)
    return run_snapshot(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
