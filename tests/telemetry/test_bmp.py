"""Tests for the BMP feed and AS-distance inference."""

import pytest

from repro.telemetry import BmpFeed
from repro.topology import (
    ASGraph,
    ASNode,
    ASRole,
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
    Relationship,
)
from repro.traffic import PrefixUniverse


@pytest.fixture()
def world():
    metros = MetroCatalog()
    g = ASGraph(metros)
    g.add_as(ASNode(1, ASRole.TIER1, ("sea", "lon")))
    g.add_as(ASNode(2, ASRole.TRANSIT, ("sea",)))
    g.add_as(ASNode(3, ASRole.STUB, ("sea",)))
    g.add_as(ASNode(4, ASRole.STUB, ("lon",)))  # isolated: no providers
    g.add_link(2, 1, Relationship.PROVIDER)
    g.add_link(3, 2, Relationship.PROVIDER)
    links = [
        PeeringLink(0, 1, "sea", "sea-er1", 100.0),
        PeeringLink(1, 1, "lon", "lon-er1", 100.0),
        PeeringLink(2, 2, "sea", "sea-er2", 100.0),
    ]
    wan = CloudWAN(8075, links, [Region("sea-region", "sea")],
                   [DestPrefix(0, "100.64.0.0/24", "sea-region", "web")],
                   metros)
    return g, wan


class TestAdvertisementPaths:
    def test_direct_peer_path(self, world):
        g, wan = world
        feed = BmpFeed(g, wan)
        assert feed.advertisement_path(1) == (1,)
        assert feed.advertisement_path(2) == (2,)

    def test_chain_path(self, world):
        g, wan = world
        feed = BmpFeed(g, wan)
        path = feed.advertisement_path(3)
        assert path[-1] == 3          # origin last
        assert path[0] in (1, 2)      # tops at a direct peer
        assert len(path) == 2         # via transit 2 (shortest)

    def test_unreachable_origin(self, world):
        g, wan = world
        feed = BmpFeed(g, wan)
        assert feed.advertisement_path(4) is None
        assert feed.as_distance(4) is None

    def test_unknown_asn(self, world):
        g, wan = world
        feed = BmpFeed(g, wan)
        assert feed.advertisement_path(999) is None

    def test_as_distance(self, world):
        g, wan = world
        feed = BmpFeed(g, wan)
        assert feed.as_distance(1) == 1
        assert feed.as_distance(3) == 2


class TestMessages:
    def test_messages_cover_reachable_prefixes(self, world):
        g, wan = world
        universe = PrefixUniverse(g, seed=1)
        feed = BmpFeed(g, wan)
        messages = feed.messages_for(universe)
        reachable = [p for p in universe
                     if feed.advertisement_path(p.asn) is not None]
        # each reachable prefix produces one message per link of its peer
        origins = {m.route.prefix for m in messages}
        assert origins == {p.cidr for p in reachable}

    def test_message_paths_end_at_origin(self, world):
        g, wan = world
        universe = PrefixUniverse(g, seed=1)
        feed = BmpFeed(g, wan)
        for message in feed.messages_for(universe)[:50]:
            assert message.peer_asn == message.route.as_path[0]
            assert message.link_id in wan.link_ids
