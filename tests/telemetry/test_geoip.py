"""Tests for the synthetic Geo-IP database."""

import pytest

from repro.telemetry import GeoIPDatabase
from repro.topology import MetroCatalog, TopologyParams, generate_as_graph
from repro.traffic import PrefixUniverse


@pytest.fixture(scope="module")
def world():
    metros = MetroCatalog()
    graph = generate_as_graph(metros, TopologyParams(
        n_tier1=3, n_transit=6, n_access=10, n_cdn=2, n_stub=30), seed=2)
    return metros, PrefixUniverse(graph, seed=2)


class TestGeoIP:
    def test_covers_all_prefixes(self, world):
        metros, universe = world
        db = GeoIPDatabase(universe, metros, seed=2)
        assert len(db) == len(universe)
        for prefix in universe:
            assert db.lookup(prefix.prefix_id) in metros

    def test_unknown_prefix_none(self, world):
        metros, universe = world
        db = GeoIPDatabase(universe, metros, seed=2)
        assert db.lookup(10**9) is None

    def test_error_rate_zero_is_exact(self, world):
        metros, universe = world
        db = GeoIPDatabase(universe, metros, error_rate=0.0, seed=2)
        assert db.error_count(universe) == 0

    def test_error_rate_applied(self, world):
        metros, universe = world
        db = GeoIPDatabase(universe, metros, error_rate=0.2, seed=2)
        errors = db.error_count(universe)
        assert 0.1 < errors / len(universe) < 0.3

    def test_errors_prefer_same_country(self, world):
        metros, universe = world
        db = GeoIPDatabase(universe, metros, error_rate=0.5, seed=2)
        same_country = 0
        wrong = 0
        for prefix in universe:
            looked = db.lookup(prefix.prefix_id)
            if looked != prefix.metro:
                wrong += 1
                truth_country = metros.get(prefix.metro).country
                if metros.get(looked).country == truth_country:
                    same_country += 1
        assert wrong > 0
        # metros in single-metro countries can't stay in-country; among
        # multi-metro-country sources the bias should be visible
        multi = [p for p in universe
                 if len(metros.in_country(metros.get(p.metro).country)) > 1]
        assert same_country > 0 or not multi

    def test_invalid_error_rate(self, world):
        metros, universe = world
        with pytest.raises(ValueError):
            GeoIPDatabase(universe, metros, error_rate=1.0)

    def test_deterministic(self, world):
        metros, universe = world
        a = GeoIPDatabase(universe, metros, error_rate=0.1, seed=7)
        b = GeoIPDatabase(universe, metros, error_rate=0.1, seed=7)
        for prefix in universe:
            assert a.lookup(prefix.prefix_id) == b.lookup(prefix.prefix_id)
